//! Fixed-width histograms.
//!
//! Used by the experiment harness to summarize robustness distributions over
//! the 1000-mapping sweeps in console output and `EXPERIMENTS.md`.

/// A histogram over `[lo, hi)` with equal-width bins. Values outside the
/// range are counted in saturating edge bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over
    /// `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "invalid histogram range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Builds a histogram spanning the data range of `xs`.
    pub fn of(xs: &[f64], bins: usize) -> Self {
        assert!(!xs.is_empty(), "histogram of empty sample");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let mut h = Histogram::new(lo, hi * (1.0 + 1e-12) + 1e-300, bins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `[start, end)` interval of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// A compact ASCII rendering (one line per bin), for console summaries.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (a, b) = self.bin_range(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{a:>10.2}, {b:>10.2}) {c:>6} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fill() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for i in 0..10 {
            h.add(i as f64);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2, 2]);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn out_of_range_saturates() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(7.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn of_spans_data() {
        let h = Histogram::of(&[1.0, 2.0, 3.0, 4.0], 4);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
        // max value must land in the last bin, not overflow
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn of_constant_sample() {
        let h = Histogram::of(&[2.0, 2.0, 2.0], 3);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_ranges_partition() {
        let h = Histogram::new(0.0, 9.0, 3);
        assert_eq!(h.bin_range(0), (0.0, 3.0));
        assert_eq!(h.bin_range(2), (6.0, 9.0));
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        h.add(1.5);
        h.add(1.6);
        let r = h.render(10);
        assert!(r.contains('#'));
        assert_eq!(r.lines().count(), 2);
    }
}
