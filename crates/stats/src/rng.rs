//! Deterministic RNG sub-seeding.
//!
//! The 1000-mapping sweeps of §4 are embarrassingly parallel. To keep them
//! **bitwise reproducible regardless of thread count**, each work item `i`
//! derives its own RNG from `(master_seed, i)` through a SplitMix64-style
//! mixer instead of sharing one sequential stream. `fepia-par` relies on
//! this: `par_map` with [`rng_for`] produces exactly the same results as a
//! sequential loop.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a master seed and a stream index into an independent 64-bit
/// sub-seed (SplitMix64 finalizer; avalanche-quality mixing so consecutive
/// indices give uncorrelated streams).
pub fn subseed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded [`StdRng`] for work item `index` of the experiment stream
/// `master`.
pub fn rng_for(master: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(subseed(master, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(subseed(42, 7), subseed(42, 7));
        let a: f64 = rng_for(42, 7).gen();
        let b: f64 = rng_for(42, 7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_across_indices() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| subseed(1, i)).collect();
        assert_eq!(seeds.len(), 10_000, "collision among sub-seeds");
    }

    #[test]
    fn distinct_across_masters() {
        assert_ne!(subseed(1, 0), subseed(2, 0));
    }

    #[test]
    fn streams_are_uncorrelated_enough() {
        // Crude avalanche check: first draws from consecutive indices spread
        // over [0,1) rather than clustering.
        let xs: Vec<f64> = (0..1_000).map(|i| rng_for(99, i).gen::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean of first draws {mean}");
    }
}
