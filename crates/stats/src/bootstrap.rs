//! Percentile bootstrap confidence intervals.
//!
//! Heuristic comparisons over random instances ("robust-greedy beats random
//! by X on average") need uncertainty estimates; the percentile bootstrap
//! is the standard distribution-free tool. Used by the
//! `heuristics_table` experiment binary to decide which differences in mean
//! robustness are statistically meaningful.

use rand::Rng;

/// A two-sided confidence interval for a statistic of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (statistic of the original sample).
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
}

impl BootstrapCi {
    /// Whether the interval excludes `value` (a crude significance check).
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }
}

/// Percentile bootstrap CI for an arbitrary statistic.
///
/// # Panics
/// Panics on an empty sample, `resamples == 0`, or a level outside (0, 1).
pub fn bootstrap_ci<R, S>(
    xs: &[f64],
    statistic: S,
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> BootstrapCi
where
    R: Rng + ?Sized,
    S: Fn(&[f64]) -> f64,
{
    assert!(!xs.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "bad level {level}"
    );

    let estimate = statistic(xs);
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = xs[rng.gen_range(0..xs.len())];
        }
        stats.push(statistic(&scratch));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("statistic is never NaN"));
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| {
        let pos = q * (stats.len() - 1) as f64;
        stats[pos.round() as usize]
    };
    BootstrapCi {
        estimate,
        lo: idx(alpha),
        hi: idx(1.0 - alpha),
        level,
    }
}

/// Convenience: bootstrap CI for the sample mean.
pub fn bootstrap_mean_ci<R: Rng + ?Sized>(
    xs: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> BootstrapCi {
    bootstrap_ci(
        xs,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        resamples,
        level,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ci_brackets_true_mean_of_normal_sample() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..400).map(|_| 5.0 + standard_normal(&mut rng)).collect();
        let ci = bootstrap_mean_ci(&xs, 2_000, 0.95, &mut rng);
        assert!(
            ci.lo <= 5.0 && 5.0 <= ci.hi,
            "{ci:?} misses the true mean 5"
        );
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        // Width ≈ 2·1.96/√400 ≈ 0.2.
        assert!(ci.hi - ci.lo < 0.4, "implausibly wide: {ci:?}");
    }

    #[test]
    fn clear_shift_is_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..200).map(|_| 10.0 + standard_normal(&mut rng)).collect();
        let ci = bootstrap_mean_ci(&xs, 1_000, 0.99, &mut rng);
        assert!(ci.excludes(0.0));
        assert!(!ci.excludes(10.0));
    }

    #[test]
    fn constant_sample_collapses() {
        let mut rng = StdRng::seed_from_u64(3);
        let ci = bootstrap_mean_ci(&[7.0; 20], 200, 0.9, &mut rng);
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
        assert_eq!(ci.estimate, 7.0);
    }

    #[test]
    fn arbitrary_statistic() {
        // Bootstrap the max: estimate is the sample max, CI upper = max.
        let mut rng = StdRng::seed_from_u64(4);
        let xs = [1.0, 2.0, 9.0, 4.0];
        let ci = bootstrap_ci(
            &xs,
            |s| s.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            500,
            0.9,
            &mut rng,
        );
        assert_eq!(ci.estimate, 9.0);
        assert!(ci.hi <= 9.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        bootstrap_mean_ci(&[], 10, 0.9, &mut rng);
    }

    #[test]
    #[should_panic(expected = "bad level")]
    fn level_validated() {
        let mut rng = StdRng::seed_from_u64(6);
        bootstrap_mean_ci(&[1.0], 10, 1.5, &mut rng);
    }
}
