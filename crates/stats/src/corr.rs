//! Correlation coefficients.
//!
//! Used by the experiment harness to quantify the paper's qualitative claims
//! that robustness is "generally correlated" with makespan (Fig. 3) and slack
//! (Fig. 4) while still differing sharply between individual mappings.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` when either sample has (numerically) zero variance, where
/// the coefficient is undefined.
///
/// # Panics
/// Panics if the slices have different lengths or fewer than two points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    assert!(xs.len() >= 2, "pearson: need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank over the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson correlation of the fractional ranks).
/// Ties receive average ranks. Returns `None` for constant samples.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_linear_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_is_undefined() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), None);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // A monotone nonlinear transform leaves Spearman at 1 while Pearson
        // drops below 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        let p = pearson(&xs, &ys).unwrap();
        let s = spearman(&xs, &ys).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p < 1.0 - 1e-6);
    }

    #[test]
    fn tie_handling_uses_average_ranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn known_pearson_value() {
        // Hand-computed: xs = [1,2,3], ys = [1,2,2].
        let p = pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0, 2.0]).unwrap();
        assert!((p - 0.866_025_403_78).abs() < 1e-9);
    }

    proptest! {
        /// |r| ≤ 1 and r is symmetric in its arguments.
        #[test]
        fn pearson_bounds(pairs in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..60)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(r) = pearson(&xs, &ys) {
                prop_assert!(r.abs() <= 1.0 + 1e-9);
                let r2 = pearson(&ys, &xs).unwrap();
                prop_assert!((r - r2).abs() < 1e-9);
            }
        }

        /// Correlation is invariant under positive affine transforms.
        #[test]
        fn pearson_affine_invariance(pairs in prop::collection::vec((-1e2..1e2f64, -1e2..1e2f64), 3..40), a in 0.1..10.0f64, b in -5.0..5.0f64) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let xt: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
            if let (Some(r1), Some(r2)) = (pearson(&xs, &ys), pearson(&xt, &ys)) {
                prop_assert!((r1 - r2).abs() < 1e-6);
            }
        }
    }
}
