//! Descriptive statistics.

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min,
            max,
        }
    }

    /// The *heterogeneity* of the sample — standard deviation divided by
    /// mean. This is exactly the definition used in the paper's §4.2 ("the
    /// heterogeneity of a set of numbers is the standard deviation divided
    /// by the mean").
    pub fn heterogeneity(&self) -> f64 {
        self.std / self.mean
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation between
/// order statistics. The input need not be sorted.
///
/// # Panics
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// The median of a sample (see [`quantile`]).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // sample variance with n-1: 32/7
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn heterogeneity_definition() {
        let s = Summary::of(&[1.0, 3.0]);
        // mean 2, std sqrt(2); heterogeneity = sqrt(2)/2
        assert!((s.heterogeneity() - 2f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 1.0 / 3.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_range_checked() {
        quantile(&[1.0], 1.5);
    }

    proptest! {
        /// min ≤ mean ≤ max, and std is translation-invariant.
        #[test]
        fn summary_invariants(mut xs in prop::collection::vec(-1e6..1e6f64, 1..50), shift in -100.0..100.0f64) {
            let s = Summary::of(&xs);
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
            for x in xs.iter_mut() { *x += shift; }
            let s2 = Summary::of(&xs);
            prop_assert!((s.std - s2.std).abs() < 1e-6 * (1.0 + s.std));
        }

        /// Quantile is monotone in q and bounded by min/max.
        #[test]
        fn quantile_monotone(xs in prop::collection::vec(-1e3..1e3f64, 1..40), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
            let s = Summary::of(&xs);
            prop_assert!(quantile(&xs, lo) >= s.min - 1e-12);
            prop_assert!(quantile(&xs, hi) <= s.max + 1e-12);
        }
    }
}
