//! Random distributions.
//!
//! Only `rand`'s uniform primitives are taken as given; the Gamma and normal
//! samplers are implemented here because the experiments' ETC and load
//! coefficients are Gamma-distributed (paper §4.2–§4.3) and no distribution
//! crate is in the allowed dependency set.

use rand::Rng;

/// Standard normal sampler (Marsaglia polar method).
///
/// Used internally by the Gamma sampler; also handy for synthetic error
/// vectors in the Monte-Carlo validation experiments.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A Gamma(shape `k`, scale `θ`) distribution: mean `kθ`, variance `kθ²`,
/// coefficient of variation `1/√k`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma distribution with the given shape `k > 0` and scale
    /// `θ > 0`.
    ///
    /// # Panics
    /// Panics if either parameter is not strictly positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "gamma shape must be positive, got {shape}"
        );
        assert!(
            scale > 0.0 && scale.is_finite(),
            "gamma scale must be positive, got {scale}"
        );
        Gamma { shape, scale }
    }

    /// Creates the Gamma distribution with the given `mean` and
    /// `heterogeneity` (std-dev / mean, called *V* in Ali et al. 2000):
    /// shape `1/V²`, scale `mean·V²`.
    ///
    /// This is the parameterization the paper's experiments use (mean 10,
    /// heterogeneity 0.7).
    pub fn from_mean_heterogeneity(mean: f64, heterogeneity: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        assert!(
            heterogeneity > 0.0,
            "heterogeneity must be positive, got {heterogeneity}"
        );
        let v2 = heterogeneity * heterogeneity;
        Gamma::new(1.0 / v2, mean * v2)
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The distribution mean `kθ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// The distribution variance `kθ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Draws one sample (Marsaglia–Tsang method; the `k < 1` case uses the
    /// standard boost `Gamma(k+1)·U^{1/k}`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Boost: X ~ Gamma(k+1), then X·U^{1/k} ~ Gamma(k).
            let boosted = Gamma::new(self.shape + 1.0, self.scale);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u: f64 = rng.gen_range(0.0..1.0);
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 || u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }

    /// Draws `n` samples into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn rejects_bad_shape() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn rejects_bad_scale() {
        Gamma::new(1.0, -1.0);
    }

    #[test]
    fn mean_het_parameterization() {
        let g = Gamma::from_mean_heterogeneity(10.0, 0.7);
        assert!((g.mean() - 10.0).abs() < 1e-12);
        // CV = 1/sqrt(shape) = 0.7
        assert!((1.0 / g.shape().sqrt() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn samples_are_positive() {
        let g = Gamma::from_mean_heterogeneity(10.0, 0.7);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn sample_moments_match_parameters() {
        // The paper's experimental distribution: mean 10, heterogeneity 0.7.
        let g = Gamma::from_mean_heterogeneity(10.0, 0.7);
        let mut rng = StdRng::seed_from_u64(42);
        let xs = g.sample_n(&mut rng, 200_000);
        let s = Summary::of(&xs);
        assert!((s.mean - 10.0).abs() < 0.1, "mean {}", s.mean);
        assert!(
            (s.heterogeneity() - 0.7).abs() < 0.02,
            "heterogeneity {}",
            s.heterogeneity()
        );
    }

    #[test]
    fn small_shape_branch_moments() {
        // shape < 1 exercises the boost branch: heterogeneity 2 → shape 0.25.
        let g = Gamma::from_mean_heterogeneity(4.0, 2.0);
        assert!(g.shape() < 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let xs = g.sample_n(&mut rng, 400_000);
        let s = Summary::of(&xs);
        assert!((s.mean - 4.0).abs() < 0.08, "mean {}", s.mean);
        assert!((s.heterogeneity() - 2.0).abs() < 0.1);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let s = Summary::of(&xs);
        assert!(s.mean.abs() < 0.01, "mean {}", s.mean);
        assert!((s.std - 1.0).abs() < 0.01, "std {}", s.std);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Gamma::from_mean_heterogeneity(10.0, 0.7);
        let a = g.sample_n(&mut StdRng::seed_from_u64(9), 32);
        let b = g.sample_n(&mut StdRng::seed_from_u64(9), 32);
        assert_eq!(a, b);
    }
}
