//! Simple linear regression.
//!
//! The Fig. 3 analysis groups mappings by the occupancy of the machine that
//! determines the makespan and fits a straight line per group: the paper
//! predicts robustness `= (τ−1)·M_orig/√x + slope corrections` to be linear
//! in the makespan within each group `S₁(x)`. The experiment harness uses
//! [`linear_fit`] to measure those slopes and R².

/// An ordinary-least-squares line `y = intercept + slope·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² (1 for a perfect fit; 0 when the
    /// model explains nothing beyond the mean).
    pub r2: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Residual `y − prediction` for an observation.
    pub fn residual(&self, x: f64, y: f64) -> f64 {
        y - self.predict(x)
    }
}

/// Fits `y = a + b·x` by least squares.
///
/// Returns `None` when `x` has zero variance (vertical line) or fewer than
/// two points are supplied.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "linear_fit: length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy <= 0.0 {
        1.0 // y is constant and perfectly fit by the horizontal line
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.5).abs() < 1e-12);
        assert!((f.intercept + 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn constant_y_has_zero_slope_full_r2() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn vertical_data_rejected() {
        assert_eq!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]), None);
        assert_eq!(linear_fit(&[1.0], &[1.0]), None);
    }

    #[test]
    fn residuals_sum_to_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.2, 1.9, 3.3, 3.8, 5.1];
        let f = linear_fit(&xs, &ys).unwrap();
        let sum: f64 = xs
            .iter()
            .zip(ys.iter())
            .map(|(&x, &y)| f.residual(x, y))
            .sum();
        assert!(sum.abs() < 1e-9);
    }

    proptest! {
        /// R² ∈ [0,1]; fitting noise-free affine data recovers it.
        #[test]
        fn recovers_affine(a in -10.0..10.0f64, b in -10.0..10.0f64, xs in prop::collection::vec(-100.0..100.0f64, 2..30)) {
            let ys: Vec<f64> = xs.iter().map(|x| a + b * x).collect();
            if let Some(f) = linear_fit(&xs, &ys) {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&f.r2));
                prop_assert!((f.slope - b).abs() < 1e-5 * (1.0 + b.abs()));
                prop_assert!((f.intercept - a).abs() < 1e-4 * (1.0 + a.abs()));
            }
        }
    }
}
