//! `fepia-stats` — statistics substrate for the FePIA experiments.
//!
//! The paper's experiments (§4) need:
//!
//! * Gamma-distributed random numbers with a given **mean** and
//!   **heterogeneity** (standard deviation divided by mean) — the
//!   coefficient-of-variation-based (CVB) method of Ali, Siegel, Maheswaran,
//!   Hensgen & Sedigh-Ali (2000), the paper's reference \[3\]. Implemented in
//!   [`dist`] (Marsaglia–Tsang sampling) and [`cvb`].
//! * Descriptive statistics, correlation and simple linear regression to
//!   verify the qualitative claims of Figs. 3–4 ("robustness and makespan
//!   are generally correlated", the straight-line clusters `S₁(x)`).
//!   Implemented in [`summary`], [`corr`], [`regress`] and [`histogram`].
//! * Deterministic RNG sub-seeding so parallel experiment sweeps are exactly
//!   reproducible regardless of thread count. Implemented in [`rng`].

pub mod bootstrap;
pub mod corr;
pub mod cvb;
pub mod dist;
pub mod histogram;
pub mod regress;
pub mod rng;
pub mod summary;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, BootstrapCi};
pub use corr::{pearson, spearman};
pub use cvb::CvbGenerator;
pub use dist::Gamma;
pub use histogram::Histogram;
pub use regress::{linear_fit, LinearFit};
pub use rng::{rng_for, subseed};
pub use summary::Summary;
