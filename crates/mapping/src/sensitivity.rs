//! Sensitivity of the robustness metric to individual ETC estimates.
//!
//! Eq. 6 makes ρ a simple function of the finishing times, so its partial
//! derivatives with respect to each estimated time `C_i` are available in
//! closed form:
//!
//! ```text
//! ρ = (τ·M − F_b) / √n_b           (b = binding machine, M = makespan)
//! ∂ρ/∂C_i = ( τ·[i on makespan machine] − [i on b] ) / √n_b
//! ```
//!
//! A *negative* derivative means growth in that estimate erodes the
//! robustness guarantee; a *positive* one means growth helps (it raises the
//! makespan bound faster than the binding machine's finishing time). The
//! ranking tells a practitioner **which execution-time estimates are worth
//! refining** before trusting a mapping — exactly the question the paper's
//! uncertainty framing raises.
//!
//! The derivatives hold wherever the binding and makespan machines don't
//! change (ρ is piecewise smooth); [`etc_sensitivity`] reports the active
//! piece and verifies it against central differences in tests.

use crate::mapping::Mapping;
use crate::robustness::makespan_robustness;
use fepia_core::CoreError;
use fepia_etc::EtcMatrix;

/// Sensitivity report for one mapping.
#[derive(Clone, Debug)]
pub struct EtcSensitivity {
    /// `∂ρ/∂C_i` for every application, at the current estimates.
    pub gradients: Vec<f64>,
    /// Applications ranked most-eroding first (ties by index).
    pub most_critical: Vec<usize>,
    /// The binding machine the derivatives refer to.
    pub binding_machine: usize,
    /// The makespan machine the derivatives refer to.
    pub makespan_machine: usize,
    /// ρ at the current estimates.
    pub metric: f64,
}

/// Computes the closed-form ETC sensitivities of ρ (Eq. 6 differentiated).
///
/// Degenerate cases (infinite metric — e.g. a single machine with every
/// feature unbounded) return zero gradients.
pub fn etc_sensitivity(
    mapping: &Mapping,
    etc: &EtcMatrix,
    tau: f64,
) -> Result<EtcSensitivity, CoreError> {
    let rob = makespan_robustness(mapping, etc, tau)?;
    let b = rob.binding_machine;
    let mm = mapping.makespan_machine(etc);
    let n_b = mapping.occupancy()[b] as f64;

    let mut gradients = vec![0.0; mapping.apps()];
    if rob.metric.is_finite() {
        let scale = 1.0 / n_b.sqrt();
        for (i, g) in gradients.iter_mut().enumerate() {
            let on_makespan = mapping.machine_of(i) == mm;
            let on_binding = mapping.machine_of(i) == b;
            *g = (tau * f64::from(u8::from(on_makespan)) - f64::from(u8::from(on_binding))) * scale;
        }
    }

    let mut most_critical: Vec<usize> = (0..mapping.apps()).collect();
    most_critical.sort_by(|&a, &c| {
        gradients[a]
            .partial_cmp(&gradients[c])
            .expect("gradient is never NaN")
            .then(a.cmp(&c))
    });

    Ok(EtcSensitivity {
        gradients,
        most_critical,
        binding_machine: b,
        makespan_machine: mm,
        metric: rob.metric,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fepia_etc::{generate_cvb, EtcParams};
    use fepia_stats::rng_for;

    /// Central-difference check of the analytic gradient (stepping the ETC
    /// entry of the assigned machine).
    fn fd_gradient(mapping: &Mapping, etc: &EtcMatrix, tau: f64, app: usize) -> f64 {
        let h = 1e-5;
        let perturbed = |delta: f64| {
            let rows: Vec<Vec<f64>> = (0..etc.apps())
                .map(|i| {
                    etc.row(i)
                        .iter()
                        .enumerate()
                        .map(|(j, &v)| {
                            if i == app && j == mapping.machine_of(app) {
                                v + delta
                            } else {
                                v
                            }
                        })
                        .collect()
                })
                .collect();
            let m = EtcMatrix::from_rows(rows);
            makespan_robustness(mapping, &m, tau).unwrap().metric
        };
        (perturbed(h) - perturbed(-h)) / (2.0 * h)
    }

    #[test]
    fn gradients_match_finite_differences() {
        for seed in 0..10u64 {
            let etc = generate_cvb(&mut rng_for(seed, 0), &EtcParams::paper_section_4_2());
            let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
            let s = etc_sensitivity(&mapping, &etc, 1.2).unwrap();
            for app in 0..20 {
                let fd = fd_gradient(&mapping, &etc, 1.2, app);
                // Skip points sitting on a piece boundary (makespan or
                // binding machine about to switch): there FD straddles two
                // pieces and neither one-sided derivative matches.
                if (s.gradients[app] - fd).abs() > 1e-6 {
                    let f = mapping.finishing_times(&etc);
                    let mut sorted = f.clone();
                    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
                    let near_tie = sorted.len() > 1 && (sorted[0] - sorted[1]).abs() < 1e-3;
                    assert!(
                        near_tie,
                        "seed {seed} app {app}: analytic {} vs FD {fd}",
                        s.gradients[app]
                    );
                }
            }
        }
    }

    #[test]
    fn signs_follow_the_formula() {
        // Construct: m0 binding AND makespan machine (2 apps, F=40),
        // m1 light (1 app, F=10). τ = 1.2.
        let etc = EtcMatrix::from_rows(vec![vec![20.0, 99.0], vec![20.0, 99.0], vec![99.0, 10.0]]);
        let mapping = Mapping::new(vec![0, 0, 1], 2);
        let s = etc_sensitivity(&mapping, &etc, 1.2).unwrap();
        assert_eq!(s.binding_machine, 0);
        assert_eq!(s.makespan_machine, 0);
        // Apps on the binding+makespan machine: (τ − 1)/√2 > 0.
        assert!((s.gradients[0] - 0.2 / 2f64.sqrt()).abs() < 1e-12);
        // App on the other machine: 0 (affects neither M nor F_b).
        assert_eq!(s.gradients[2], 0.0);
    }

    #[test]
    fn binding_not_makespan_gives_negative_gradient() {
        // m0: 3 apps F=30 (binding: radius (36−30)/√3 ≈ 3.46);
        // m1: 1 app F=30 (makespan tie broken to m0... make m1 strictly
        // the makespan machine with F=31: r_1 = (37.2−31)/1 = 6.2).
        let etc = EtcMatrix::from_rows(vec![
            vec![10.0, 99.0],
            vec![10.0, 99.0],
            vec![10.0, 99.0],
            vec![99.0, 31.0],
        ]);
        let mapping = Mapping::new(vec![0, 0, 0, 1], 2);
        let s = etc_sensitivity(&mapping, &etc, 1.2).unwrap();
        assert_eq!(s.makespan_machine, 1);
        assert_eq!(s.binding_machine, 0);
        // Apps on binding machine only: −1/√3.
        assert!((s.gradients[0] + 1.0 / 3f64.sqrt()).abs() < 1e-12);
        // App on makespan machine only: +τ/√3.
        assert!((s.gradients[3] - 1.2 / 3f64.sqrt()).abs() < 1e-12);
        // Ranking: binding-machine apps are the most critical.
        assert!(s.most_critical[..3].iter().all(|&i| i < 3));
    }

    #[test]
    fn single_machine_metric() {
        // One machine: binding = makespan; gradient (τ−1)/√n for all.
        let etc = EtcMatrix::uniform(4, 1, 5.0);
        let mapping = Mapping::new(vec![0; 4], 1);
        let s = etc_sensitivity(&mapping, &etc, 1.5).unwrap();
        for g in &s.gradients {
            assert!((g - 0.5 / 2.0).abs() < 1e-12);
        }
    }
}
