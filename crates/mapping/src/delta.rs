//! Incremental §3.1 robustness evaluation (`DeltaEval`).
//!
//! The local-search heuristics move one application at a time. Re-running
//! the full analysis after each move costs O(|A| + |M|) plus several
//! allocations ([`Mapping::finishing_times`] builds a fresh vector, Eq. 6
//! another); but a single move only changes the finishing times of the two
//! affected machines. [`DeltaEval`] keeps the per-machine loads, occupancies,
//! makespan, Eq. 6 radii and the Eq. 7 running minimum as live state, and
//! updates them in O(2) machines per move (falling back to an O(|M|) rescan
//! only when the makespan — and with it the tolerance bound `τ·M` — moves).
//!
//! **Bitwise discipline.** Every number `DeltaEval` reports is bitwise
//! identical to what the legacy full recompute
//! ([`crate::robustness::makespan_robustness`] / [`Mapping::makespan`])
//! would produce on the same mapping. This is load-bearing: simulated
//! annealing's accept test short-circuits its RNG draw on the cost
//! comparison, so a 1-ulp cost difference would desynchronize the random
//! stream and change the search trajectory. The implementation therefore
//! *re-sums* an affected machine's load from scratch over its applications
//! in ascending index order — the exact accumulation order of
//! [`Mapping::finishing_times`] — instead of adding/subtracting the moved
//! application's time (floating-point `(a + x) − x ≠ a`), and maintains the
//! makespan as a value (the max of non-negative loads is order-independent)
//! with the legacy fold as the fallback. Property tests at the workspace
//! root verify bitwise agreement after random move sequences.
//!
//! When `fepia-obs` is enabled, each `DeltaEval` flushes `plan.delta.*`
//! counters on drop: `moves`, `peeks`, and how many applies took the O(2)
//! path (`radii_delta`) vs a binding rescan (`rescans`) vs a full
//! bound-change recompute (`full`).

use crate::mapping::Mapping;
use fepia_core::{Bound, FailReason, RadiusMethod, RadiusResult, RadiusVerdict};
use fepia_etc::EtcMatrix;

/// Reusable makespan scratch for population heuristics: evaluates an
/// assignment's makespan without constructing a [`Mapping`] or allocating,
/// with the exact accumulation order of [`Mapping::makespan`].
#[derive(Clone, Debug, Default)]
pub struct MakespanEvaluator {
    loads: Vec<f64>,
}

impl MakespanEvaluator {
    /// An empty evaluator; the load buffer grows on first use.
    pub fn new() -> Self {
        MakespanEvaluator::default()
    }

    /// The makespan of `assignment` under `etc` — bitwise identical to
    /// `Mapping::new(assignment.to_vec(), etc.machines()).makespan(etc)`.
    pub fn eval(&mut self, assignment: &[usize], etc: &EtcMatrix) -> f64 {
        self.loads.clear();
        self.loads.resize(etc.machines(), 0.0);
        for (i, &j) in assignment.iter().enumerate() {
            self.loads[j] += etc.get(i, j);
        }
        self.loads.iter().cloned().fold(0.0, f64::max)
    }
}

/// Live incremental state of the §3.1 analysis for one mapping under one
/// tolerance factor τ. See the module docs for the update strategy and the
/// bitwise guarantees.
pub struct DeltaEval<'a> {
    etc: &'a EtcMatrix,
    tau: f64,
    /// `assignment[i] = Some(j)` — `None` while an application is not yet
    /// committed (partial mappings, e.g. during greedy construction).
    assignment: Vec<Option<usize>>,
    /// Applications on each machine, ascending (the legacy summation order).
    apps_on: Vec<Vec<usize>>,
    loads: Vec<f64>,
    occupancy: Vec<usize>,
    makespan: f64,
    radii: Vec<f64>,
    metric: f64,
    binding: usize,
    /// Upper bound on any physically possible machine load under this ETC
    /// (with headroom): no finite cached value above it can be legitimate,
    /// so the sanity scan catches huge-but-finite corruption, not just
    /// NaN/∞.
    load_ceiling: f64,
    // plan.delta.* counters, flushed on drop.
    moves: u64,
    peeks: u64,
    delta_radii: u64,
    rescans: u64,
    full: u64,
    heals: u64,
}

impl<'a> DeltaEval<'a> {
    /// Builds the state for a complete `mapping`.
    ///
    /// # Panics
    /// Panics if `tau < 1` or on ETC/mapping shape mismatch.
    pub fn new(etc: &'a EtcMatrix, mapping: &Mapping, tau: f64) -> Self {
        assert_eq!(
            etc.apps(),
            mapping.apps(),
            "ETC/mapping application mismatch"
        );
        assert_eq!(
            etc.machines(),
            mapping.machines(),
            "ETC/mapping machine mismatch"
        );
        let mut de = DeltaEval::empty(etc, etc.machines(), tau);
        for (i, &j) in mapping.assignment().iter().enumerate() {
            de.assignment[i] = Some(j);
            de.apps_on[j].push(i); // ascending by construction
            de.occupancy[j] += 1;
        }
        for j in 0..de.machines() {
            de.loads[j] = de.resum(j);
        }
        de.makespan = de.loads.iter().cloned().fold(0.0, f64::max);
        de.recompute_radii();
        de
    }

    /// State for an empty partial mapping over `machines` machines: all
    /// loads 0, every radius `+∞`.
    ///
    /// # Panics
    /// Panics if `tau < 1` or `machines` disagrees with the ETC.
    pub fn empty(etc: &'a EtcMatrix, machines: usize, tau: f64) -> Self {
        assert!(tau >= 1.0, "tolerance factor τ must be ≥ 1, got {tau}");
        assert_eq!(etc.machines(), machines, "ETC/machine-count mismatch");
        // Every application contributes to exactly one machine, so no load
        // can exceed the sum of per-application row maxima; 4× headroom
        // keeps the bound far from legitimate values while still rejecting
        // absurd cached numbers (e.g. an injected 1e308).
        let max_total: f64 = (0..etc.apps())
            .map(|i| etc.row(i).iter().cloned().fold(0.0, f64::max))
            .sum();
        let load_ceiling = 4.0 * max_total.max(1.0);
        DeltaEval {
            etc,
            tau,
            assignment: vec![None; etc.apps()],
            apps_on: vec![Vec::new(); machines],
            loads: vec![0.0; machines],
            occupancy: vec![0; machines],
            makespan: 0.0,
            radii: vec![f64::INFINITY; machines],
            metric: f64::INFINITY,
            binding: 0,
            load_ceiling,
            moves: 0,
            peeks: 0,
            delta_radii: 0,
            rescans: 0,
            full: 0,
            heals: 0,
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.loads.len()
    }

    /// The current makespan `max_j F_j` (bitwise = [`Mapping::makespan`]).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// The Eq. 7 metric of the current (possibly partial) mapping.
    pub fn metric(&self) -> f64 {
        self.metric
    }

    /// The binding machine (first index attaining the minimum radius).
    pub fn binding_machine(&self) -> usize {
        self.binding
    }

    /// Per-machine Eq. 6 radii; `+∞` for empty machines.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// Per-machine finishing times.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Per-machine application counts.
    pub fn occupancy(&self) -> &[usize] {
        &self.occupancy
    }

    /// Where `app` currently runs (`None` if uncommitted).
    pub fn machine_of(&self, app: usize) -> Option<usize> {
        self.assignment[app]
    }

    /// Materializes the current assignment as a [`Mapping`].
    ///
    /// # Panics
    /// Panics if any application is still uncommitted.
    pub fn mapping(&self) -> Mapping {
        let assignment = self
            .assignment
            .iter()
            .map(|a| a.expect("partial mapping cannot be materialized"))
            .collect();
        Mapping::new(assignment, self.machines())
    }

    /// Rebuilds the state for a different complete mapping (same ETC and τ),
    /// e.g. after a tabu restart from the incumbent.
    pub fn reset(&mut self, mapping: &Mapping) {
        assert_eq!(mapping.apps(), self.assignment.len());
        assert_eq!(mapping.machines(), self.machines());
        for list in &mut self.apps_on {
            list.clear();
        }
        for (i, &j) in mapping.assignment().iter().enumerate() {
            self.assignment[i] = Some(j);
            self.apps_on[j].push(i);
        }
        for j in 0..self.machines() {
            self.occupancy[j] = self.apps_on[j].len();
            self.loads[j] = self.resum(j);
        }
        self.makespan = self.loads.iter().cloned().fold(0.0, f64::max);
        self.recompute_radii();
    }

    /// The load of machine `j`, re-summed from scratch in ascending
    /// application order — the accumulation order of
    /// [`Mapping::finishing_times`], hence bitwise identical to it.
    fn resum(&self, j: usize) -> f64 {
        let mut s = 0.0;
        for &i in &self.apps_on[j] {
            s += self.etc.get(i, j);
        }
        s
    }

    /// Sum of machine `dst`'s load with `app` inserted at its sorted
    /// position (ascending order preserved).
    fn resum_with(&self, dst: usize, app: usize) -> f64 {
        let mut s = 0.0;
        let mut inserted = false;
        for &i in &self.apps_on[dst] {
            if !inserted && app < i {
                s += self.etc.get(app, dst);
                inserted = true;
            }
            s += self.etc.get(i, dst);
        }
        if !inserted {
            s += self.etc.get(app, dst);
        }
        s
    }

    /// Sum of machine `src`'s load with `app` removed.
    fn resum_without(&self, src: usize, app: usize) -> f64 {
        let mut s = 0.0;
        for &i in &self.apps_on[src] {
            if i != app {
                s += self.etc.get(i, src);
            }
        }
        s
    }

    fn radius_of(bound: f64, load: f64, occ: usize) -> f64 {
        if occ == 0 {
            f64::INFINITY
        } else {
            (bound - load) / (occ as f64).sqrt()
        }
    }

    fn recompute_radii(&mut self) {
        let bound = self.tau * self.makespan;
        for j in 0..self.machines() {
            self.radii[j] = Self::radius_of(bound, self.loads[j], self.occupancy[j]);
        }
        self.rescan_binding();
    }

    /// Legacy binding selection: `min_by` keeps the *first* minimum.
    /// `total_cmp` is selection-identical to the historical
    /// `partial_cmp().expect(..)` for the finite, never-`-0.0` radii this
    /// state holds, but stays total under fault injection: a NaN radius
    /// sorts after `+∞` instead of aborting the comparison.
    fn rescan_binding(&mut self) {
        let binding = self
            .radii
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .expect("at least one machine");
        self.binding = binding;
        self.metric = self.radii[binding];
    }

    /// True when every cached quantity is finite or a legitimate `+∞`
    /// (empty-machine radii) **and physically plausible**: loads and the
    /// makespan must stay below [`Self::empty`]'s `load_ceiling`, because a
    /// corrupted value can be huge yet finite (fault injection cycles
    /// through 1e308 as well as NaN/±∞) and would otherwise poison radii
    /// silently.
    fn state_is_sane(&self) -> bool {
        self.makespan.is_finite()
            && self.makespan <= self.load_ceiling
            && !self.metric.is_nan()
            && self
                .loads
                .iter()
                .all(|l| l.is_finite() && *l <= self.load_ceiling)
            && !self.radii.iter().any(|r| r.is_nan())
    }

    /// Self-heal: rebuild every cached quantity from the ground truth (the
    /// ETC matrix and the assignment lists). Poisoned cached values cannot
    /// survive this — the ETC itself is validated finite at construction.
    fn heal(&mut self) {
        self.heals += 1;
        for j in 0..self.machines() {
            self.loads[j] = self.resum(j);
        }
        self.makespan = self.loads.iter().cloned().fold(0.0, f64::max);
        self.recompute_radii();
    }

    /// Classified state of the incremental analysis: [`RadiusVerdict::Exact`]
    /// carrying the Eq. 7 metric in the healthy case,
    /// [`RadiusVerdict::Infeasible`] when some machine already exceeds the
    /// tolerance bound, [`RadiusVerdict::Failed`] if cached state is
    /// corrupted (only reachable when self-healing is bypassed).
    pub fn verdict(&self) -> RadiusVerdict {
        if !self.state_is_sane() {
            return RadiusVerdict::Failed(FailReason::NonFiniteImpact);
        }
        if self.metric < 0.0 {
            return RadiusVerdict::Infeasible;
        }
        RadiusVerdict::Exact(RadiusResult {
            radius: self.metric,
            boundary_point: None,
            bound: Some(Bound::Max),
            violated: false,
            method: RadiusMethod::Analytic,
            iterations: 0,
            f_evals: 0,
        })
    }

    /// The makespan if `app` (currently assigned) moved to `dst`, without
    /// committing — bitwise identical to reassigning and calling
    /// [`Mapping::makespan`], with no allocation and no mutation.
    pub fn peek_makespan(&mut self, app: usize, dst: usize) -> f64 {
        self.peeks += 1;
        let src = self.assignment[app].expect("peek_makespan needs an assigned app");
        if src == dst {
            return self.makespan;
        }
        let ns = self.resum_without(src, app);
        let nd = self.resum_with(dst, app);
        let mut mk = 0.0f64;
        for j in 0..self.machines() {
            let v = if j == src {
                ns
            } else if j == dst {
                nd
            } else {
                self.loads[j]
            };
            mk = mk.max(v);
        }
        mk
    }

    /// The Eq. 7 metric and `dst`'s new load if the *uncommitted* `app` were
    /// assigned to `dst` — the greedy-construction probe. Matches the shape
    /// of the legacy `partial_metric` (empty machines excluded).
    pub fn peek_assign(&mut self, app: usize, dst: usize) -> (f64, f64) {
        self.peeks += 1;
        assert!(
            self.assignment[app].is_none(),
            "peek_assign needs an uncommitted app"
        );
        let nd = self.resum_with(dst, app);
        let mut mk = 0.0f64;
        for j in 0..self.machines() {
            let v = if j == dst { nd } else { self.loads[j] };
            mk = mk.max(v);
        }
        let bound = self.tau * mk;
        let mut metric = f64::INFINITY;
        for j in 0..self.machines() {
            let (load, occ) = if j == dst {
                (nd, self.occupancy[j] + 1)
            } else {
                (self.loads[j], self.occupancy[j])
            };
            if occ == 0 {
                continue;
            }
            metric = metric.min((bound - load) / (occ as f64).sqrt());
        }
        (metric, nd)
    }

    /// Commits `app` to `dst` (an assignment if previously uncommitted, a
    /// move otherwise) and updates loads, makespan, radii and the running
    /// minimum. O(2) machines when the makespan — and hence the tolerance
    /// bound — is unchanged; O(|M|) otherwise.
    pub fn apply(&mut self, app: usize, dst: usize) {
        let src = self.assignment[app];
        if src == Some(dst) {
            return;
        }
        self.moves += 1;
        let old_src_load = src.map(|s| self.loads[s]);
        if let Some(s) = src {
            let pos = self.apps_on[s]
                .iter()
                .position(|&i| i == app)
                .expect("assignment/apps_on out of sync");
            self.apps_on[s].remove(pos);
            self.occupancy[s] -= 1;
            self.loads[s] = self.resum(s);
        }
        let pos = self.apps_on[dst].partition_point(|&i| i < app);
        self.apps_on[dst].insert(pos, app);
        self.occupancy[dst] += 1;
        self.loads[dst] = self.resum(dst);
        self.assignment[app] = Some(dst);

        // Fault injection: one relaxed load when disabled; when enabled,
        // chaos may corrupt the freshly cached dst load, exercising the
        // self-heal path below.
        let chaos = fepia_chaos::enabled();
        if chaos {
            self.loads[dst] = fepia_chaos::poison_f64("mapping.delta.load", self.loads[dst]);
        }

        // Makespan as a value: the max of non-negative loads does not depend
        // on fold order, so these shortcuts reproduce the legacy fold bit
        // for bit (loads are never −0.0).
        let new_dst = self.loads[dst];
        let mk = if new_dst >= self.makespan {
            // dst grew past (or to) the old max; src only shrank.
            new_dst
        } else if old_src_load.is_some_and(|l| l == self.makespan) {
            // The old max machine lost an application: full fold.
            self.loads.iter().cloned().fold(0.0, f64::max)
        } else {
            self.makespan
        };

        if mk.to_bits() == self.makespan.to_bits() {
            // Bound unchanged: only the two affected machines' radii move.
            let bound = self.tau * mk;
            if let Some(s) = src {
                self.radii[s] = Self::radius_of(bound, self.loads[s], self.occupancy[s]);
            }
            self.radii[dst] = Self::radius_of(bound, self.loads[dst], self.occupancy[dst]);
            if src == Some(self.binding) || dst == self.binding {
                // The old minimum itself moved: order vs the field unknown.
                self.rescans += 1;
                self.rescan_binding();
            } else {
                // First-min over {old binding, src, dst} suffices: every
                // other machine's radius is unchanged and was ≥ the old
                // metric (strictly, for indices below the old binding).
                self.delta_radii += 1;
                let mut cands = [0usize; 3];
                let mut n = 0;
                if let Some(s) = src {
                    cands[n] = s;
                    n += 1;
                }
                cands[n] = dst;
                n += 1;
                cands[n] = self.binding;
                n += 1;
                cands[..n].sort_unstable();
                let mut best = cands[0];
                for &j in &cands[1..n] {
                    if self.radii[j] < self.radii[best] {
                        best = j;
                    }
                }
                self.binding = best;
                self.metric = self.radii[best];
            }
        } else {
            // Bound moved: every radius shifts.
            self.full += 1;
            self.makespan = mk;
            self.recompute_radii();
        }

        if chaos && !self.state_is_sane() {
            self.heal();
        }
    }
}

impl Drop for DeltaEval<'_> {
    fn drop(&mut self) {
        if !fepia_obs::enabled() {
            return;
        }
        let reg = fepia_obs::global();
        reg.counter("plan.delta.moves").add(self.moves);
        reg.counter("plan.delta.peeks").add(self.peeks);
        reg.counter("plan.delta.radii_delta").add(self.delta_radii);
        reg.counter("plan.delta.rescans").add(self.rescans);
        reg.counter("plan.delta.full").add(self.full);
        reg.counter("chaos.healed").add(self.heals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robustness::makespan_robustness;
    use fepia_etc::{generate_cvb, EtcParams};
    use fepia_stats::rng_for;
    use rand::Rng;

    fn instance(seed: u64) -> (Mapping, EtcMatrix) {
        let etc = generate_cvb(&mut rng_for(seed, 0), &EtcParams::paper_section_4_2());
        let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
        (mapping, etc)
    }

    fn assert_state_bitwise(de: &DeltaEval<'_>, mapping: &Mapping, etc: &EtcMatrix, tau: f64) {
        let fresh = makespan_robustness(mapping, etc, tau).unwrap();
        assert_eq!(de.makespan().to_bits(), fresh.makespan.to_bits());
        assert_eq!(de.metric().to_bits(), fresh.metric.to_bits());
        assert_eq!(de.binding_machine(), fresh.binding_machine);
        for (a, b) in de.radii().iter().zip(fresh.radii.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in de.loads().iter().zip(mapping.finishing_times(etc).iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn construction_matches_full_analysis_bitwise() {
        for seed in 0..10u64 {
            let (m, etc) = instance(seed);
            let de = DeltaEval::new(&etc, &m, 1.2);
            assert_state_bitwise(&de, &m, &etc, 1.2);
        }
    }

    #[test]
    fn move_sequence_stays_bitwise_identical() {
        for seed in 0..6u64 {
            let (mut m, etc) = instance(seed);
            let mut de = DeltaEval::new(&etc, &m, 1.2);
            let mut rng = rng_for(seed, 99);
            for _ in 0..300 {
                let app = rng.gen_range(0..m.apps());
                let dst = rng.gen_range(0..m.machines());
                de.apply(app, dst);
                m.reassign(app, dst);
                assert_state_bitwise(&de, &m, &etc, 1.2);
            }
        }
    }

    #[test]
    fn peek_makespan_matches_reassign_and_does_not_mutate() {
        let (mut m, etc) = instance(3);
        let mut de = DeltaEval::new(&etc, &m, 1.2);
        let mut rng = rng_for(3, 7);
        for _ in 0..100 {
            let app = rng.gen_range(0..m.apps());
            let dst = rng.gen_range(0..m.machines());
            let old = m.machine_of(app);
            m.reassign(app, dst);
            let expected = m.makespan(&etc);
            m.reassign(app, old);
            assert_eq!(de.peek_makespan(app, dst).to_bits(), expected.to_bits());
            assert_state_bitwise(&de, &m, &etc, 1.2);
        }
    }

    #[test]
    fn empty_state_and_greedy_assignment() {
        let (_, etc) = instance(1);
        let mut de = DeltaEval::empty(&etc, etc.machines(), 1.2);
        assert_eq!(de.metric(), f64::INFINITY);
        assert_eq!(de.makespan(), 0.0);
        // Commit every app to machine i mod machines; compare to the full
        // analysis at the end.
        for app in 0..etc.apps() {
            let (metric, load) = de.peek_assign(app, app % etc.machines());
            assert!(metric.is_finite() || de.occupancy().iter().all(|&n| n == 0));
            assert!(load > 0.0);
            de.apply(app, app % etc.machines());
        }
        let m = de.mapping();
        assert_state_bitwise(&de, &m, &etc, 1.2);
    }

    #[test]
    fn reset_rebuilds_state() {
        let (m1, etc) = instance(5);
        let m2 = Mapping::random(&mut rng_for(55, 1), 20, 5);
        let mut de = DeltaEval::new(&etc, &m1, 1.2);
        de.apply(0, (de.machine_of(0).unwrap() + 1) % de.machines());
        de.reset(&m2);
        assert_state_bitwise(&de, &m2, &etc, 1.2);
    }

    #[test]
    fn noop_move_is_ignored() {
        let (m, etc) = instance(2);
        let mut de = DeltaEval::new(&etc, &m, 1.2);
        let before = de.metric().to_bits();
        de.apply(4, m.machine_of(4));
        assert_eq!(de.metric().to_bits(), before);
        assert_state_bitwise(&de, &m, &etc, 1.2);
    }

    #[test]
    fn heal_restores_corrupted_state_bitwise() {
        let (m, etc) = instance(4);
        let mut de = DeltaEval::new(&etc, &m, 1.2);
        // Corrupt cached values directly (what chaos poisoning does through
        // `apply`), then verify the verdict flags it and healing restores
        // the exact legacy state.
        de.loads[2] = f64::NAN;
        de.radii[1] = f64::NAN;
        de.makespan = f64::INFINITY;
        assert!(!de.state_is_sane());
        assert!(matches!(de.verdict(), RadiusVerdict::Failed(_)));
        de.heal();
        assert_state_bitwise(&de, &m, &etc, 1.2);
        assert!(matches!(de.verdict(), RadiusVerdict::Exact(_)));
    }

    #[test]
    fn huge_finite_corruption_is_detected_and_healed() {
        // The chaos poison cycle includes 1e308: finite, so a pure
        // NaN/∞ scan would accept it and radii would go silently wrong.
        // The load-ceiling invariant must flag it.
        let (m, etc) = instance(9);
        let mut de = DeltaEval::new(&etc, &m, 1.2);
        de.loads[1] = 1e308;
        assert!(!de.state_is_sane());
        assert!(matches!(de.verdict(), RadiusVerdict::Failed(_)));
        de.heal();
        assert_state_bitwise(&de, &m, &etc, 1.2);

        // Same for a corrupted cached makespan alone.
        de.makespan = 1e308;
        assert!(!de.state_is_sane());
        de.heal();
        assert_state_bitwise(&de, &m, &etc, 1.2);
    }

    #[test]
    fn verdict_reports_exact_metric() {
        let (m, etc) = instance(6);
        let de = DeltaEval::new(&etc, &m, 1.2);
        match de.verdict() {
            RadiusVerdict::Exact(r) => assert_eq!(r.radius.to_bits(), de.metric().to_bits()),
            other => panic!("expected Exact, got {other:?}"),
        }
    }

    #[test]
    fn rescan_binding_survives_nan_radius() {
        let (m, etc) = instance(7);
        let mut de = DeltaEval::new(&etc, &m, 1.2);
        let clean_binding = de.binding_machine();
        // A NaN radius must sort last, never becoming the binding machine
        // (and never panicking the comparison).
        let victim = (clean_binding + 1) % de.machines();
        de.radii[victim] = f64::NAN;
        de.rescan_binding();
        assert_eq!(de.binding_machine(), clean_binding);
        assert!(!de.metric().is_nan());
        de.heal();
        assert_state_bitwise(&de, &m, &etc, 1.2);
    }

    #[test]
    fn makespan_evaluator_matches_mapping() {
        let (m, etc) = instance(8);
        let mut ev = MakespanEvaluator::new();
        assert_eq!(
            ev.eval(m.assignment(), &etc).to_bits(),
            m.makespan(&etc).to_bits()
        );
        // Reuse across different assignments.
        let m2 = Mapping::random(&mut rng_for(8, 2), 20, 5);
        assert_eq!(
            ev.eval(m2.assignment(), &etc).to_bits(),
            m2.makespan(&etc).to_bits()
        );
    }
}
