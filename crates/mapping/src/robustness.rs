//! Makespan robustness against ETC errors (Eqs. 5–7).
//!
//! [`makespan_robustness`] is the exact analytic path: Eq. 6 per machine,
//! Eq. 7 for the metric. [`makespan_robustness_generic`] builds the same
//! analysis through the generic `fepia-core` machinery (one
//! [`SumSelected`] feature per machine); the two
//! must agree to solver precision, which the tests and the workspace
//! integration tests verify. The generic path also unlocks non-ℓ₂ norms for
//! the ablation bench.

use crate::mapping::Mapping;
use fepia_core::{
    CoreError, FeatureSpec, FepiaAnalysis, Perturbation, RadiusOptions, RobustnessReport,
    SumSelected, Tolerance,
};
use fepia_etc::EtcMatrix;
use fepia_optim::VecN;

/// The result of the analytic §3.1 robustness analysis.
#[derive(Clone, Debug)]
pub struct MakespanRobustness {
    /// Per-machine robustness radii `r_μ(F_j, C)` (Eq. 6); `+∞` for
    /// machines with no applications (their finishing time cannot move).
    pub radii: Vec<f64>,
    /// The robustness metric `ρ_μ(Φ, C)` (Eq. 7).
    pub metric: f64,
    /// The machine attaining the minimum radius.
    pub binding_machine: usize,
    /// The predicted makespan `M_orig`.
    pub makespan: f64,
    /// The closest boundary point `C*` — actual execution times at which the
    /// binding machine exactly hits `τ·M_orig`. Per the paper's
    /// observations (1)–(2), only the binding machine's applications differ
    /// from `C_orig`, all by the same amount.
    pub boundary_etc: VecN,
}

/// Computes the §3.1 robustness analytically (Eqs. 6–7).
///
/// `tau` is the makespan tolerance factor (`1.2` in the paper's §4.2: "the
/// actual makespan could be no more than 1.2 times the predicted value").
///
/// # Panics
/// Panics if `tau < 1` (the predicted makespan itself would violate the
/// requirement) or on ETC/mapping shape mismatch.
pub fn makespan_robustness(
    mapping: &Mapping,
    etc: &EtcMatrix,
    tau: f64,
) -> Result<MakespanRobustness, CoreError> {
    assert!(tau >= 1.0, "tolerance factor τ must be ≥ 1, got {tau}");
    let _span = fepia_obs::span!("mapping.makespan_robustness");
    let finish = mapping.finishing_times(etc);
    let occupancy = mapping.occupancy();
    let makespan = finish.iter().cloned().fold(0.0, f64::max);
    let bound = tau * makespan;

    let mut radii = Vec::with_capacity(finish.len());
    for (j, (&f_j, &n_j)) in finish.iter().zip(occupancy.iter()).enumerate() {
        if n_j == 0 {
            radii.push(f64::INFINITY);
            continue;
        }
        // Eq. 6: perpendicular distance from C_orig to the hyperplane
        // F_j(C) = τ·M_orig.
        let r = (bound - f_j) / (n_j as f64).sqrt();
        debug_assert!(r >= 0.0, "machine {j} above the makespan bound");
        radii.push(r);
    }

    let binding_machine = radii
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("radius is never NaN"))
        .map(|(j, _)| j)
        .expect("at least one machine");
    let metric = radii[binding_machine];

    // Paper observations (1)-(2): at C*, only the binding machine's
    // applications change, each by (τM − F_b)/n_b.
    let mut boundary = VecN::new(mapping.assigned_times(etc));
    if metric.is_finite() {
        let n_b = occupancy[binding_machine] as f64;
        let delta = (bound - finish[binding_machine]) / n_b;
        for i in mapping.apps_on(binding_machine) {
            boundary[i] += delta;
        }
    }

    if fepia_obs::enabled() {
        fepia_obs::global()
            .counter("mapping.closed_form.calls")
            .inc();
        fepia_obs::Event::new("mapping.makespan_robustness")
            .field("metric", metric)
            .field("makespan", makespan)
            .field("binding_machine", binding_machine)
            .emit();
    }

    Ok(MakespanRobustness {
        radii,
        metric,
        binding_machine,
        makespan,
        boundary_etc: boundary,
    })
}

/// Builds the same analysis through the generic FePIA machinery: the
/// perturbation is the assigned-time vector `C`, and each machine
/// contributes one feature `F_j` with tolerance `⟨−∞, τ·M_orig⟩` and impact
/// [`SumSelected`] (Eq. 4).
///
/// Used for cross-validation of the closed form and for non-ℓ₂ norms.
pub fn makespan_robustness_generic(
    mapping: &Mapping,
    etc: &EtcMatrix,
    tau: f64,
    opts: &RadiusOptions,
) -> Result<RobustnessReport, CoreError> {
    assert!(tau >= 1.0, "tolerance factor τ must be ≥ 1, got {tau}");
    let makespan = mapping.makespan(etc);
    let bound = tau * makespan;
    let c_orig = VecN::new(mapping.assigned_times(etc));
    let apps = mapping.apps();

    let mut analysis = FepiaAnalysis::new(Perturbation::continuous("ETC vector C", c_orig));
    for j in 0..mapping.machines() {
        let on_j = mapping.apps_on(j);
        if on_j.is_empty() {
            continue; // F_j ≡ 0: unaffected by C, infinite radius.
        }
        analysis.add_feature(
            FeatureSpec::new(format!("finish-time m_{j}"), Tolerance::upper(bound)),
            SumSelected::new(on_j, apps),
        );
    }
    analysis.run(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fepia_etc::{generate_cvb, EtcParams};
    use fepia_optim::Norm;
    use fepia_stats::rng_for;
    use proptest::prelude::*;

    fn paper_like_instance(seed: u64) -> (Mapping, EtcMatrix) {
        let etc = generate_cvb(&mut rng_for(seed, 0), &EtcParams::paper_section_4_2());
        let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
        (mapping, etc)
    }

    #[test]
    fn eq6_hand_computed() {
        // 3 apps, 2 machines: m0 ← {0, 1} (F_0 = 30), m1 ← {2} (F_1 = 30).
        // M = 30, τ = 1.2 ⇒ bound 36: r_0 = 6/√2, r_1 = 6; ρ = 6/√2.
        let etc = EtcMatrix::from_rows(vec![vec![10.0, 1.0], vec![20.0, 1.0], vec![1.0, 30.0]]);
        let m = Mapping::new(vec![0, 0, 1], 2);
        let r = makespan_robustness(&m, &etc, 1.2).unwrap();
        assert!((r.radii[0] - 6.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((r.radii[1] - 6.0).abs() < 1e-12);
        assert!((r.metric - 6.0 / 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(r.binding_machine, 0);
        assert_eq!(r.makespan, 30.0);
    }

    #[test]
    fn boundary_point_observations() {
        // Paper §3.1 observations: at C*, only apps on the binding machine
        // change, all by the same amount, and F_binding(C*) = τM.
        let (m, etc) = paper_like_instance(7);
        let r = makespan_robustness(&m, &etc, 1.2).unwrap();
        let c_orig = m.assigned_times(&etc);
        let binding_apps = m.apps_on(r.binding_machine);
        let mut deltas = Vec::new();
        for (i, &c) in c_orig.iter().enumerate() {
            let d = r.boundary_etc[i] - c;
            if binding_apps.contains(&i) {
                deltas.push(d);
            } else {
                assert!(d.abs() < 1e-12, "non-binding app {i} moved by {d}");
            }
        }
        let first = deltas[0];
        assert!(deltas.iter().all(|d| (d - first).abs() < 1e-9));
        let f_star: f64 = binding_apps.iter().map(|&i| r.boundary_etc[i]).sum();
        assert!((f_star - 1.2 * r.makespan).abs() < 1e-9);
        // And ‖C* − C_orig‖₂ = ρ.
        let dist = (deltas.iter().map(|d| d * d).sum::<f64>()).sqrt();
        assert!((dist - r.metric).abs() < 1e-9);
    }

    #[test]
    fn empty_machine_infinite_radius() {
        let etc = EtcMatrix::uniform(2, 3, 10.0);
        let m = Mapping::new(vec![0, 1], 3);
        let r = makespan_robustness(&m, &etc, 1.5).unwrap();
        assert_eq!(r.radii[2], f64::INFINITY);
        assert!(r.metric.is_finite());
    }

    #[test]
    fn tau_one_gives_zero_metric() {
        // τ = 1: the makespan machine is already on the boundary.
        let etc = EtcMatrix::uniform(4, 2, 10.0);
        let m = Mapping::new(vec![0, 0, 0, 1], 2);
        let r = makespan_robustness(&m, &etc, 1.0).unwrap();
        assert_eq!(r.metric, 0.0);
        assert_eq!(r.binding_machine, 0);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn tau_below_one_rejected() {
        let etc = EtcMatrix::uniform(1, 1, 1.0);
        let _ = makespan_robustness(&Mapping::new(vec![0], 1), &etc, 0.9);
    }

    #[test]
    fn generic_path_matches_analytic() {
        for seed in 0..20u64 {
            let (m, etc) = paper_like_instance(seed);
            let analytic = makespan_robustness(&m, &etc, 1.2).unwrap();
            let generic =
                makespan_robustness_generic(&m, &etc, 1.2, &RadiusOptions::default()).unwrap();
            assert!(
                (analytic.metric - generic.metric).abs() < 1e-9,
                "seed {seed}: analytic {} vs generic {}",
                analytic.metric,
                generic.metric
            );
        }
    }

    #[test]
    fn generic_path_norm_ordering() {
        // For the same mapping, l∞-radius ≤ l2-radius ≤ l1-radius (dual-norm
        // distances with ‖a‖₁ ≥ ‖a‖₂ ≥ ‖a‖∞ for 0/1 coefficient vectors).
        let (m, etc) = paper_like_instance(3);
        let radius = |norm: Norm| {
            makespan_robustness_generic(
                &m,
                &etc,
                1.2,
                &RadiusOptions {
                    norm,
                    solver: Default::default(),
                },
            )
            .unwrap()
            .metric
        };
        let (r1, r2, rinf) = (radius(Norm::L1), radius(Norm::L2), radius(Norm::LInf));
        assert!(rinf <= r2 + 1e-12 && r2 <= r1 + 1e-12, "{rinf} {r2} {r1}");
    }

    #[test]
    fn s1_linearity_from_section_4_2() {
        // Within the set S₁(x) of mappings whose makespan machine also has
        // the max occupancy x, robustness = (τ−1)·M_orig/√x is linear in
        // M_orig: verify the formula directly on constructed mappings.
        let etc = EtcMatrix::uniform(8, 2, 10.0);
        // m0 gets 6 apps (F=60, occupancy max), m1 gets 2 (F=20).
        let m = Mapping::new(vec![0, 0, 0, 0, 0, 0, 1, 1], 2);
        let r = makespan_robustness(&m, &etc, 1.2).unwrap();
        assert_eq!(r.binding_machine, 0);
        let expected = (1.2 - 1.0) * 60.0 / (6f64).sqrt();
        assert!((r.metric - expected).abs() < 1e-9);
    }

    proptest! {
        /// The metric is the min over per-machine radii; all radii are
        /// non-negative; loosening τ never decreases the metric.
        #[test]
        fn metric_invariants(seed in 0u64..300, tau_step in 0.0..1.0f64) {
            let (m, etc) = paper_like_instance(seed);
            let tau1 = 1.0 + tau_step;
            let tau2 = tau1 + 0.25;
            let r1 = makespan_robustness(&m, &etc, tau1).unwrap();
            let r2 = makespan_robustness(&m, &etc, tau2).unwrap();
            prop_assert!(r1.radii.iter().all(|&r| r >= 0.0));
            let min = r1.radii.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!((min - r1.metric).abs() < 1e-12);
            prop_assert!(r2.metric >= r1.metric - 1e-12);
        }
    }
}
