//! Monte-Carlo validation of the robustness guarantee (failure injection).
//!
//! The paper's interpretation of Eq. 7: "if the Euclidean distance between
//! any vector of the actual execution times and the vector of the estimated
//! execution times is no larger than `ρ_μ(Φ, C)`, then the actual makespan
//! will be at most `τ` times the predicted makespan value."
//!
//! [`validate_radius_guarantee`] injects random ETC error vectors and checks
//! exactly that: errors with `‖e‖₂ ≤ ρ` must never cause a violation, and a
//! probe **just past** the binding boundary point must cause one. This is
//! the empirical safety net behind the analytic formula.

use crate::mapping::Mapping;
use crate::robustness::makespan_robustness;
use fepia_core::CoreError;
use fepia_etc::EtcMatrix;
use fepia_stats::dist::standard_normal;
use rand::Rng;

/// Result of a validation run.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationOutcome {
    /// Random inside-radius error vectors tried.
    pub trials: usize,
    /// Inside-radius trials that (incorrectly) violated the makespan bound —
    /// must be 0 for the guarantee to hold.
    pub false_violations: usize,
    /// Whether the beyond-boundary probe produced the expected violation.
    pub boundary_probe_violates: bool,
    /// The robustness metric used.
    pub metric: f64,
}

impl ValidationOutcome {
    /// True when the guarantee held on every trial and the boundary probe
    /// confirmed tightness.
    pub fn holds(&self) -> bool {
        self.false_violations == 0 && self.boundary_probe_violates
    }
}

/// Makespan when each application's actual time is `C_orig[i] + e[i]`
/// (actual times clamped to ≥ 0: execution times cannot be negative; the
/// guarantee is only strengthened by the clamp).
fn perturbed_makespan(mapping: &Mapping, c_orig: &[f64], errors: &[f64]) -> f64 {
    let mut finish = vec![0.0; mapping.machines()];
    for (i, &j) in mapping.assignment().iter().enumerate() {
        finish[j] += (c_orig[i] + errors[i]).max(0.0);
    }
    finish.into_iter().fold(0.0, f64::max)
}

/// Samples a uniformly random direction, scales it to norm `radius`.
fn random_error<R: Rng + ?Sized>(rng: &mut R, dim: usize, radius: f64) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..dim).map(|_| standard_normal(rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            return v.into_iter().map(|x| x * radius / norm).collect();
        }
    }
}

/// Injects `trials` random error vectors with `‖e‖₂` uniform in `[0, ρ]`
/// (every direction allowed, as in the paper's "any combination of ETC
/// errors") and verifies the makespan bound; then probes a point just beyond
/// the binding boundary and verifies the bound breaks there.
pub fn validate_radius_guarantee<R: Rng + ?Sized>(
    mapping: &Mapping,
    etc: &EtcMatrix,
    tau: f64,
    trials: usize,
    rng: &mut R,
) -> Result<ValidationOutcome, CoreError> {
    let rob = makespan_robustness(mapping, etc, tau)?;
    let c_orig = mapping.assigned_times(etc);
    let bound = tau * rob.makespan;
    let dim = mapping.apps();

    let mut false_violations = 0;
    if rob.metric.is_finite() && rob.metric > 0.0 {
        for _ in 0..trials {
            let scale: f64 = rng.gen_range(0.0..1.0);
            let e = random_error(rng, dim, scale * rob.metric);
            // Tiny slack absorbs floating-point roundoff at the boundary.
            if perturbed_makespan(mapping, &c_orig, &e) > bound * (1.0 + 1e-9) {
                false_violations += 1;
            }
        }
    }

    // Push the boundary point 0.1% further along its own direction: the
    // binding machine must then exceed τ·M_orig.
    let boundary_probe_violates = if rob.metric.is_finite() && rob.metric > 0.0 {
        let e: Vec<f64> = rob
            .boundary_etc
            .as_slice()
            .iter()
            .zip(c_orig.iter())
            .map(|(b, c)| (b - c) * 1.001)
            .collect();
        perturbed_makespan(mapping, &c_orig, &e) > bound
    } else {
        // Degenerate metric (0 or ∞): nothing to probe; report success.
        true
    };

    Ok(ValidationOutcome {
        trials,
        false_violations,
        boundary_probe_violates,
        metric: rob.metric,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fepia_etc::{generate_cvb, EtcParams};
    use fepia_stats::rng_for;

    #[test]
    fn guarantee_holds_on_paper_scale_instances() {
        for seed in 0..10u64 {
            let etc = generate_cvb(&mut rng_for(seed, 0), &EtcParams::paper_section_4_2());
            let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
            let out =
                validate_radius_guarantee(&mapping, &etc, 1.2, 500, &mut rng_for(seed, 2)).unwrap();
            assert!(
                out.holds(),
                "seed {seed}: {out:?} — the Eq. 7 guarantee failed"
            );
        }
    }

    #[test]
    fn zero_metric_short_circuits() {
        // τ = 1 gives metric 0: no inside-radius sampling possible.
        let etc = EtcMatrix::uniform(4, 2, 10.0);
        let mapping = Mapping::new(vec![0, 0, 1, 1], 2);
        let out = validate_radius_guarantee(&mapping, &etc, 1.0, 100, &mut rng_for(0, 0)).unwrap();
        assert_eq!(out.metric, 0.0);
        assert_eq!(out.false_violations, 0);
        assert!(out.holds());
    }

    #[test]
    fn perturbed_makespan_clamps_negative_times() {
        let mapping = Mapping::new(vec![0, 1], 2);
        let c = [10.0, 10.0];
        // Error pushes app 0's time to -5: clamped to 0.
        let e = [-15.0, 0.0];
        assert_eq!(perturbed_makespan(&mapping, &c, &e), 10.0);
    }

    #[test]
    fn random_error_has_requested_norm() {
        let mut rng = rng_for(1, 1);
        let e = random_error(&mut rng, 20, 3.5);
        let n = e.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((n - 3.5).abs() < 1e-9);
    }
}
