//! `fepia-mapping` — the paper's §3.1 system: independent applications on
//! heterogeneous machines.
//!
//! A mapping `μ` assigns each application in `A` to one machine in `M`
//! (no multitasking; machines run their queues back-to-back, so ordering
//! does not change finishing times). Given an ETC matrix:
//!
//! * the **finishing time** of machine `m_j` is
//!   `F_j(C) = Σ_{i : a_i → m_j} C_i` (Eq. 4);
//! * the **makespan** is `max_j F_j`;
//! * the **robustness radius** of `F_j` against ETC errors is
//!   `r_μ(F_j, C) = (τ·M_orig − F_j(C_orig)) / √(#apps on m_j)` (Eq. 6);
//! * the **robustness metric** is `ρ_μ(Φ, C) = min_j r_μ(F_j, C)` (Eq. 7).
//!
//! Modules:
//!
//! * [`mapping`] — the [`Mapping`] type and the performance measures of
//!   §4.2 (makespan, load-balance index).
//! * [`robustness`] — the analytic Eq. 6/Eq. 7 implementation plus a
//!   generic-path construction through `fepia-core` used for
//!   cross-validation and the norm ablation.
//! * [`delta`] — incremental move evaluation: [`DeltaEval`] keeps loads,
//!   makespan, Eq. 6 radii and the Eq. 7 minimum live across single-app
//!   moves (O(2) machines per move, bitwise identical to a full recompute);
//!   the local-search heuristics run on it.
//! * [`front`] — makespan × robustness Pareto fronts: incremental
//!   dominance maintenance over candidate streams ([`ParetoFront`]) plus
//!   the brute-force reference filter the property suite checks it
//!   against.
//! * [`validate`] — Monte-Carlo validation of the radius guarantee
//!   (failure injection).
//! * [`heuristics`] — baseline mapping heuristics from the literature the
//!   paper builds on (OLB, MET, MCT, Min-Min, Max-Min, Duplex, Sufferage,
//!   round-robin, simulated annealing, tabu search, a simple GA) plus a
//!   robustness-greedy heuristic for the paper's motivating problem of
//!   *maximizing* robustness.

pub mod delta;
pub mod front;
pub mod heuristics;
pub mod mapping;
pub mod robustness;
pub mod sensitivity;
pub mod validate;

pub use delta::{DeltaEval, MakespanEvaluator};
pub use fepia_etc::EtcMatrix;
pub use front::{dominates, pareto_filter, FrontPoint, ParetoFront};
pub use heuristics::{HeuristicBudgets, MappingHeuristic};
pub use mapping::Mapping;
pub use robustness::{makespan_robustness, makespan_robustness_generic, MakespanRobustness};
pub use sensitivity::{etc_sensitivity, EtcSensitivity};
pub use validate::{validate_radius_guarantee, ValidationOutcome};
