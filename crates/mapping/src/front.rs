//! Makespan × robustness Pareto fronts.
//!
//! The paper's §4 point is that makespan and the Eq. 7 robustness metric
//! *disagree*: the most robust mapping is rarely the fastest. An optimizer
//! job therefore does not return one mapping but the tradeoff **front**:
//! every candidate that no other candidate beats on both axes (lower
//! makespan *and* higher metric).
//!
//! [`ParetoFront`] maintains that set incrementally as candidates arrive.
//! Determinism discipline, like everywhere else in the workspace:
//!
//! * every candidate is a pure function of `(seed, index)` — the driver
//!   evaluates candidates in parallel but **offers them in index order**,
//!   so the front after `k` offers is a pure function of the candidate
//!   stream prefix, independent of thread count;
//! * ties are broken canonically: a candidate whose `(makespan, metric)`
//!   bits equal an incumbent's is rejected, so the surviving point is
//!   always the one with the lowest index;
//! * comparisons are plain IEEE `f64` comparisons on values that are
//!   themselves bitwise-reproducible, so the front is too.
//!
//! [`pareto_filter`] is the brute-force reference — a quadratic dominance
//! filter over the full candidate list — used by the workspace property
//! suite to hold the incremental maintenance to the same answer, bitwise,
//! on any input.

use crate::mapping::Mapping;
use crate::DeltaEval;
use fepia_etc::EtcMatrix;

/// One point on (or offered to) the front: a concrete mapping with its
/// two objective values and its provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontPoint {
    /// Candidate index in the population stream (pure in `(seed, index)`).
    pub index: u64,
    /// The mapping's makespan `max_j F_j` (minimize).
    pub makespan: f64,
    /// The Eq. 7 robustness metric `min_j r_j` (maximize).
    pub metric: f64,
    /// Name of the heuristic that produced the mapping.
    pub heuristic: String,
    /// The assignment vector (`assignment[i]` = machine of app `i`).
    pub assignment: Vec<usize>,
}

impl FrontPoint {
    /// Evaluates a mapping into a front point via [`DeltaEval`] — the
    /// same arithmetic every other consumer of the Eq. 6/7 values uses,
    /// so the coordinates are bitwise identical to a full
    /// [`crate::makespan_robustness`] recompute.
    pub fn evaluate(
        etc: &EtcMatrix,
        mapping: &Mapping,
        tau: f64,
        heuristic: &str,
        index: u64,
    ) -> FrontPoint {
        let de = DeltaEval::new(etc, mapping, tau);
        FrontPoint {
            index,
            makespan: de.makespan(),
            metric: de.metric(),
            heuristic: heuristic.to_string(),
            assignment: mapping.assignment().to_vec(),
        }
    }

    /// The mapping this point carries.
    pub fn mapping(&self, machines: usize) -> Mapping {
        Mapping::new(self.assignment.clone(), machines)
    }
}

/// `a` strictly dominates `b`: at least as good on both axes, strictly
/// better on one. Lower makespan is better; higher metric is better.
pub fn dominates(a: &FrontPoint, b: &FrontPoint) -> bool {
    a.makespan <= b.makespan
        && a.metric >= b.metric
        && (a.makespan < b.makespan || a.metric > b.metric)
}

/// Bitwise coordinate identity (the canonical tie: first index wins).
fn same_coords(a: &FrontPoint, b: &FrontPoint) -> bool {
    a.makespan.to_bits() == b.makespan.to_bits() && a.metric.to_bits() == b.metric.to_bits()
}

/// An incrementally maintained Pareto front, sorted by ascending makespan.
/// The sort invariant implies strictly ascending metric as well: a point
/// with a higher makespan only survives if it buys strictly more
/// robustness.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParetoFront {
    points: Vec<FrontPoint>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> ParetoFront {
        ParetoFront { points: Vec::new() }
    }

    /// The current non-dominated set, makespan-ascending.
    pub fn points(&self) -> &[FrontPoint] {
        &self.points
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Consumes the front, yielding its points makespan-ascending.
    pub fn into_points(self) -> Vec<FrontPoint> {
        self.points
    }

    /// Rebuilds a front from points already known to be mutually
    /// non-dominated (e.g. decoded off the wire). Points are offered in
    /// the given order, so a hostile list degrades to a valid front
    /// rather than breaking the invariant.
    pub fn from_points(points: Vec<FrontPoint>) -> ParetoFront {
        let mut front = ParetoFront::new();
        for p in points {
            front.offer(p);
        }
        front
    }

    /// Offers a candidate: inserts it and evicts every point it dominates,
    /// unless an incumbent dominates it or holds the same coordinate bits
    /// (first index wins). Returns whether the front changed.
    pub fn offer(&mut self, p: FrontPoint) -> bool {
        if self
            .points
            .iter()
            .any(|q| dominates(q, &p) || same_coords(q, &p))
        {
            return false;
        }
        self.points.retain(|q| !dominates(&p, q));
        let at = self.points.partition_point(|q| q.makespan < p.makespan);
        self.points.insert(at, p);
        true
    }

    /// Order-independent-looking but order-*defined* digest: FNV-1a over
    /// every point's coordinate bits, index and assignment, in front
    /// order. Two bitwise-identical fronts — the reproducibility claim
    /// the job tests assert — hash equal.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut word = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        word(self.points.len() as u64);
        for p in &self.points {
            word(p.index);
            word(p.makespan.to_bits());
            word(p.metric.to_bits());
            word(p.assignment.len() as u64);
            for &j in &p.assignment {
                word(j as u64);
            }
        }
        h
    }
}

/// Brute-force reference: the non-dominated subset of `candidates` under
/// the same tie rule the incremental front applies (equal-coordinate
/// candidates keep only the earliest in list order), sorted by ascending
/// makespan. Quadratic; exists to hold [`ParetoFront::offer`] to the same
/// answer in the property suite.
pub fn pareto_filter(candidates: &[FrontPoint]) -> Vec<FrontPoint> {
    let mut kept: Vec<FrontPoint> = Vec::new();
    for (i, c) in candidates.iter().enumerate() {
        let beaten = candidates
            .iter()
            .enumerate()
            .any(|(j, d)| dominates(d, c) || (j < i && same_coords(d, c)));
        if !beaten {
            kept.push(c.clone());
        }
    }
    kept.sort_by(|a, b| {
        a.makespan
            .partial_cmp(&b.makespan)
            .expect("front coordinates are never NaN")
    });
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(index: u64, makespan: f64, metric: f64) -> FrontPoint {
        FrontPoint {
            index,
            makespan,
            metric,
            heuristic: "test".to_string(),
            assignment: vec![index as usize % 3],
        }
    }

    #[test]
    fn dominated_points_are_evicted_and_rejected() {
        let mut f = ParetoFront::new();
        assert!(f.offer(pt(0, 10.0, 1.0)));
        // Strictly worse on both axes: rejected.
        assert!(!f.offer(pt(1, 11.0, 0.5)));
        // Strictly better on both axes: evicts the incumbent.
        assert!(f.offer(pt(2, 9.0, 2.0)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].index, 2);
        // Tradeoff point: coexists.
        assert!(f.offer(pt(3, 12.0, 3.0)));
        assert_eq!(f.len(), 2);
        assert!(f.points()[0].makespan < f.points()[1].makespan);
        assert!(f.points()[0].metric < f.points()[1].metric);
    }

    #[test]
    fn equal_coordinates_keep_the_first_index() {
        let mut f = ParetoFront::new();
        assert!(f.offer(pt(5, 10.0, 1.0)));
        assert!(!f.offer(pt(9, 10.0, 1.0)));
        assert_eq!(f.points()[0].index, 5);
    }

    #[test]
    fn equal_makespan_keeps_only_the_higher_metric() {
        let mut f = ParetoFront::new();
        f.offer(pt(0, 10.0, 1.0));
        assert!(f.offer(pt(1, 10.0, 2.0)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].index, 1);
    }

    #[test]
    fn incremental_front_matches_brute_force_on_a_fixed_stream() {
        use rand::Rng;
        let mut rng = fepia_stats::rng_for(7, 0);
        let candidates: Vec<FrontPoint> = (0..200)
            .map(|i| {
                // Coarse grid forces plenty of exact ties.
                let mk = (rng.gen_range(0..20) as f64) * 0.5 + 5.0;
                let m = (rng.gen_range(0..20) as f64) * 0.25;
                pt(i, mk, m)
            })
            .collect();
        let mut inc = ParetoFront::new();
        for c in &candidates {
            inc.offer(c.clone());
        }
        let brute = pareto_filter(&candidates);
        assert_eq!(inc.points(), &brute[..]);
    }

    #[test]
    fn digest_tracks_content() {
        let mut a = ParetoFront::new();
        let mut b = ParetoFront::new();
        for f in [&mut a, &mut b] {
            f.offer(pt(0, 10.0, 1.0));
            f.offer(pt(1, 12.0, 2.0));
        }
        assert_eq!(a.digest(), b.digest());
        b.offer(pt(2, 9.0, 0.5));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn evaluate_matches_closed_form_bitwise() {
        let etc = crate::heuristics::test_support::instance(3);
        let mut rng = fepia_stats::rng_for(3, 1);
        let mapping = Mapping::random(&mut rng, etc.apps(), etc.machines());
        let p = FrontPoint::evaluate(&etc, &mapping, 1.3, "random", 0);
        let oracle = crate::makespan_robustness(&mapping, &etc, 1.3).unwrap();
        assert_eq!(p.metric.to_bits(), oracle.metric.to_bits());
        assert_eq!(p.makespan.to_bits(), mapping.makespan(&etc).to_bits());
    }
}
