//! Single-pass heuristics: OLB, MET, MCT, round-robin, random.

use super::{best_completion, MappingHeuristic};
use crate::mapping::Mapping;
use fepia_etc::EtcMatrix;
use rand::{Rng, RngCore};

/// **Opportunistic Load Balancing**: each application (in index order) goes
/// to the machine that becomes available earliest, without looking at its
/// ETC there. Balances occupancy, often at a large makespan cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct Olb;

impl MappingHeuristic for Olb {
    fn name(&self) -> &'static str {
        "olb"
    }

    fn map(&self, etc: &EtcMatrix, _rng: &mut dyn RngCore) -> Mapping {
        let mut loads = vec![0.0f64; etc.machines()];
        let mut assignment = Vec::with_capacity(etc.apps());
        for i in 0..etc.apps() {
            let j = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("load is never NaN"))
                .map(|(j, _)| j)
                .expect("at least one machine");
            loads[j] += etc.get(i, j);
            assignment.push(j);
        }
        Mapping::new(assignment, etc.machines())
    }
}

/// **Minimum Execution Time**: each application goes to its fastest machine,
/// ignoring machine loads. Can badly overload a universally fast machine on
/// consistent ETCs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Met;

impl MappingHeuristic for Met {
    fn name(&self) -> &'static str {
        "met"
    }

    fn map(&self, etc: &EtcMatrix, _rng: &mut dyn RngCore) -> Mapping {
        let assignment = (0..etc.apps()).map(|i| etc.best_machine(i)).collect();
        Mapping::new(assignment, etc.machines())
    }
}

/// **Minimum Completion Time**: each application (in index order) goes to
/// the machine minimizing `current load + ETC`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mct;

impl MappingHeuristic for Mct {
    fn name(&self) -> &'static str {
        "mct"
    }

    fn map(&self, etc: &EtcMatrix, _rng: &mut dyn RngCore) -> Mapping {
        let mut loads = vec![0.0f64; etc.machines()];
        let mut assignment = Vec::with_capacity(etc.apps());
        for i in 0..etc.apps() {
            let (j, _) = best_completion(&loads, etc, i);
            loads[j] += etc.get(i, j);
            assignment.push(j);
        }
        Mapping::new(assignment, etc.machines())
    }
}

/// Cyclic assignment `a_i → m_{i mod |M|}`; the occupancy-balanced but
/// ETC-oblivious baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl MappingHeuristic for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn map(&self, etc: &EtcMatrix, _rng: &mut dyn RngCore) -> Mapping {
        let m = etc.machines();
        Mapping::new((0..etc.apps()).map(|i| i % m).collect(), m)
    }
}

/// Uniform random assignment — exactly the generator used for the 1000
/// mappings of the paper's §4 experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomMap;

impl MappingHeuristic for RandomMap {
    fn name(&self) -> &'static str {
        "random"
    }

    fn map(&self, etc: &EtcMatrix, rng: &mut dyn RngCore) -> Mapping {
        let m = etc.machines();
        Mapping::new((0..etc.apps()).map(|_| rng.gen_range(0..m)).collect(), m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::test_support::*;
    use fepia_stats::rng_for;

    #[test]
    fn met_picks_row_minima() {
        let etc = EtcMatrix::from_rows(vec![vec![5.0, 1.0], vec![2.0, 9.0]]);
        let m = Met.map(&etc, &mut rng_for(0, 0));
        assert_eq!(m.assignment(), &[1, 0]);
    }

    #[test]
    fn mct_beats_met_on_consistent_matrix() {
        // Machine 0 fastest for everything: MET piles all apps onto it,
        // MCT spills to machine 1 once machine 0 is loaded.
        let etc = EtcMatrix::from_rows(vec![
            vec![10.0, 11.0],
            vec![10.0, 11.0],
            vec![10.0, 11.0],
            vec![10.0, 11.0],
        ]);
        let mut rng = rng_for(0, 0);
        let met = Met.map(&etc, &mut rng);
        let mct = Mct.map(&etc, &mut rng);
        assert!(mct.makespan(&etc) < met.makespan(&etc));
        assert_eq!(met.makespan(&etc), 40.0);
        assert_eq!(mct.makespan(&etc), 22.0);
    }

    #[test]
    fn olb_balances_occupancy() {
        let etc = EtcMatrix::uniform(10, 5, 1.0);
        let m = Olb.map(&etc, &mut rng_for(0, 0));
        assert!(m.occupancy().iter().all(|&n| n == 2));
    }

    #[test]
    fn round_robin_cycles() {
        let etc = EtcMatrix::uniform(5, 2, 1.0);
        let m = RoundRobin.map(&etc, &mut rng_for(0, 0));
        assert_eq!(m.assignment(), &[0, 1, 0, 1, 0]);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let etc = instance(2);
        let a = RandomMap.map(&etc, &mut rng_for(5, 0));
        let b = RandomMap.map(&etc, &mut rng_for(5, 0));
        assert_eq!(a, b);
        assert_valid(&a, &etc);
    }

    #[test]
    fn mct_on_paper_instance_beats_random_typically() {
        let etc = instance(3);
        let mct = Mct.map(&etc, &mut rng_for(3, 0));
        let rnd = RandomMap.map(&etc, &mut rng_for(3, 1));
        assert!(mct.makespan(&etc) <= rnd.makespan(&etc));
    }
}
