//! Tabu search over the mapping space.

use super::{MappingHeuristic, Mct};
use crate::delta::DeltaEval;
use crate::mapping::Mapping;
use fepia_etc::EtcMatrix;
use rand::RngCore;
use std::collections::VecDeque;

/// Steepest-descent tabu search: each iteration scans every (application,
/// machine) reassignment, applies the best non-tabu move (aspiration: tabu
/// moves are allowed when they beat the global best), and records the
/// *reverse* move on a fixed-length tabu list.
#[derive(Clone, Copy, Debug)]
pub struct TabuSearch {
    /// Number of moves to apply.
    pub iterations: usize,
    /// Length of the tabu list (recent reverse-moves barred).
    pub tabu_len: usize,
}

impl Default for TabuSearch {
    fn default() -> Self {
        TabuSearch {
            iterations: 200,
            tabu_len: 16,
        }
    }
}

impl MappingHeuristic for TabuSearch {
    fn name(&self) -> &'static str {
        "tabu"
    }

    fn map(&self, etc: &EtcMatrix, rng: &mut dyn RngCore) -> Mapping {
        let mut current = Mct.map(etc, rng);
        let mut best = current.clone();
        let mut best_cost = best.makespan(etc);
        // Neighborhood scans probe |A|·(|M|−1) moves per iteration; the
        // incremental evaluator prices each without reassigning or
        // allocating, bitwise identical to the legacy recompute.
        let mut delta = DeltaEval::new(etc, &current, 1.0);
        let mut tabu: VecDeque<(usize, usize)> = VecDeque::with_capacity(self.tabu_len);

        for _ in 0..self.iterations {
            let mut move_best: Option<(usize, usize, f64)> = None;
            let cur_cost = delta.makespan();
            for app in 0..current.apps() {
                let old = current.machine_of(app);
                for machine in 0..current.machines() {
                    if machine == old {
                        continue;
                    }
                    let cost = delta.peek_makespan(app, machine);
                    let is_tabu = tabu.contains(&(app, machine));
                    // Aspiration: accept a tabu move only if it sets a new
                    // global best.
                    if is_tabu && cost >= best_cost {
                        continue;
                    }
                    if move_best.is_none_or(|(_, _, c)| cost < c) {
                        move_best = Some((app, machine, cost));
                    }
                }
            }
            let Some((app, machine, cost)) = move_best else {
                break; // every move tabu and non-aspiring
            };
            let old = current.machine_of(app);
            current.reassign(app, machine);
            delta.apply(app, machine);
            // Bar the reverse move.
            if self.tabu_len > 0 {
                if tabu.len() == self.tabu_len {
                    tabu.pop_front();
                }
                tabu.push_back((app, old));
            }
            if cost < best_cost {
                best_cost = cost;
                best = current.clone();
            } else if cost > cur_cost * 1.5 {
                // Runaway uphill drift: restart from the incumbent.
                current = best.clone();
                delta.reset(&current);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::test_support::*;
    use fepia_stats::rng_for;

    #[test]
    fn improves_or_matches_mct() {
        for seed in 0..4u64 {
            let etc = instance(seed);
            let mct = Mct.map(&etc, &mut rng_for(seed, 0)).makespan(&etc);
            let tabu = TabuSearch::default()
                .map(&etc, &mut rng_for(seed, 0))
                .makespan(&etc);
            assert!(tabu <= mct + 1e-12, "seed {seed}: tabu {tabu} vs MCT {mct}");
        }
    }

    #[test]
    fn escapes_local_minimum_of_mct() {
        // A matrix where MCT's greedy order is provably suboptimal:
        // apps (in order) 0..3, machines 2. MCT: app0→m0(4), app1→m1(5),
        // app2→m0(4+6=10)... tabu should shuffle to something ≤ MCT.
        let etc = EtcMatrix::from_rows(vec![
            vec![4.0, 5.0],
            vec![6.0, 5.0],
            vec![6.0, 7.0],
            vec![4.0, 8.0],
        ]);
        let mut rng = rng_for(0, 0);
        let mct_cost = Mct.map(&etc, &mut rng).makespan(&etc);
        let tabu_cost = TabuSearch::default().map(&etc, &mut rng).makespan(&etc);
        assert!(tabu_cost <= mct_cost);
    }

    #[test]
    fn deterministic() {
        let etc = instance(2);
        let a = TabuSearch::default().map(&etc, &mut rng_for(1, 0));
        let b = TabuSearch::default().map(&etc, &mut rng_for(1, 0));
        assert_eq!(a, b);
        assert_valid(&a, &etc);
    }

    #[test]
    fn zero_iterations_returns_mct() {
        let etc = instance(3);
        let t = TabuSearch {
            iterations: 0,
            tabu_len: 4,
        }
        .map(&etc, &mut rng_for(0, 0));
        let mct = Mct.map(&etc, &mut rng_for(0, 0));
        assert_eq!(t, mct);
    }
}
