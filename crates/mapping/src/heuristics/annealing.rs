//! Simulated annealing over the mapping space.

use super::{MappingHeuristic, Mct};
use crate::delta::DeltaEval;
use crate::mapping::Mapping;
use fepia_etc::EtcMatrix;
use rand::{Rng, RngCore};

/// Simulated annealing: starts from the MCT mapping, proposes single-app
/// reassignments, accepts worse moves with Boltzmann probability under a
/// geometric cooling schedule. Objective: makespan (normalized by the
/// initial makespan so `initial_temperature` is scale-free).
#[derive(Clone, Copy, Debug)]
pub struct SimulatedAnnealing {
    /// Proposal count.
    pub iterations: usize,
    /// Initial temperature (relative to the starting makespan).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration, in (0, 1).
    pub cooling: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iterations: 2_000,
            initial_temperature: 0.1,
            cooling: 0.995,
        }
    }
}

impl MappingHeuristic for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn map(&self, etc: &EtcMatrix, rng: &mut dyn RngCore) -> Mapping {
        assert!(
            (0.0..1.0).contains(&self.cooling) && self.initial_temperature > 0.0,
            "invalid annealing schedule"
        );
        let mut current = Mct.map(etc, rng);
        let scale = current.makespan(etc).max(f64::MIN_POSITIVE);
        // Incremental move evaluation: `peek_makespan` is bitwise identical
        // to reassign-and-recompute, so the normalized costs — and with them
        // the short-circuited RNG stream of the accept test — are unchanged.
        let mut delta = DeltaEval::new(etc, &current, 1.0);
        let mut cur_cost = 1.0; // normalized
        let mut best = current.clone();
        let mut best_cost = cur_cost;
        let mut temp = self.initial_temperature;

        for _ in 0..self.iterations {
            let app = rng.gen_range(0..current.apps());
            let old_machine = current.machine_of(app);
            let new_machine = rng.gen_range(0..current.machines());
            if new_machine == old_machine {
                temp *= self.cooling;
                continue;
            }
            let cost = delta.peek_makespan(app, new_machine) / scale;
            let accept =
                cost <= cur_cost || rng.gen_range(0.0..1.0f64) < ((cur_cost - cost) / temp).exp();
            if accept {
                delta.apply(app, new_machine);
                current.reassign(app, new_machine);
                cur_cost = cost;
                if cost < best_cost {
                    best_cost = cost;
                    best = current.clone();
                }
            }
            temp *= self.cooling;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::test_support::*;
    use fepia_stats::rng_for;

    #[test]
    fn improves_or_matches_mct() {
        for seed in 0..4u64 {
            let etc = instance(seed);
            let mct = Mct.map(&etc, &mut rng_for(seed, 0)).makespan(&etc);
            let sa = SimulatedAnnealing::default()
                .map(&etc, &mut rng_for(seed, 1))
                .makespan(&etc);
            assert!(
                sa <= mct + 1e-12,
                "seed {seed}: SA {sa} worse than MCT {mct}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let etc = instance(9);
        let a = SimulatedAnnealing::default().map(&etc, &mut rng_for(1, 0));
        let b = SimulatedAnnealing::default().map(&etc, &mut rng_for(1, 0));
        assert_eq!(a, b);
        assert_valid(&a, &etc);
    }

    #[test]
    #[should_panic(expected = "invalid annealing schedule")]
    fn rejects_bad_schedule() {
        let etc = instance(0);
        let _ = SimulatedAnnealing {
            iterations: 1,
            initial_temperature: 0.1,
            cooling: 1.5,
        }
        .map(&etc, &mut rng_for(0, 0));
    }
}
