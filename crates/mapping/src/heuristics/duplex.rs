//! Duplex: the better of Min-Min and Max-Min.

use super::{MappingHeuristic, MaxMin, MinMin};
use crate::mapping::Mapping;
use fepia_etc::EtcMatrix;
use rand::RngCore;

/// Runs [`MinMin`] and [`MaxMin`] and keeps the mapping with the smaller
/// makespan (tie → Min-Min). Exploits that the two excel on complementary
/// workload shapes.
#[derive(Clone, Copy, Debug, Default)]
pub struct Duplex;

impl MappingHeuristic for Duplex {
    fn name(&self) -> &'static str {
        "duplex"
    }

    fn map(&self, etc: &EtcMatrix, rng: &mut dyn RngCore) -> Mapping {
        let a = MinMin.map(etc, rng);
        let b = MaxMin.map(etc, rng);
        if a.makespan(etc) <= b.makespan(etc) {
            a
        } else {
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::test_support::*;
    use fepia_stats::rng_for;

    #[test]
    fn duplex_is_min_of_both() {
        for seed in 0..8u64 {
            let etc = instance(seed);
            let mut rng = rng_for(seed, 0);
            let d = Duplex.map(&etc, &mut rng).makespan(&etc);
            let a = MinMin.map(&etc, &mut rng_for(seed, 0)).makespan(&etc);
            let b = MaxMin.map(&etc, &mut rng_for(seed, 0)).makespan(&etc);
            assert!(
                (d - a.min(b)).abs() < 1e-12,
                "duplex {d}, minmin {a}, maxmin {b}"
            );
        }
    }

    #[test]
    fn tie_prefers_minmin() {
        let etc = EtcMatrix::uniform(2, 2, 5.0);
        let mut rng = rng_for(0, 0);
        let d = Duplex.map(&etc, &mut rng);
        let a = MinMin.map(&etc, &mut rng);
        assert_eq!(d, a);
    }
}
