//! A simple genetic algorithm over the mapping space.

use super::{MappingHeuristic, Mct, MinMin};
use crate::delta::MakespanEvaluator;
use crate::mapping::Mapping;
use fepia_etc::EtcMatrix;
use rand::{Rng, RngCore};

/// Generational GA: tournament selection, uniform crossover, per-gene
/// mutation, elitism of one. The population is seeded with MCT and Min-Min
/// mappings (plus random fill), the standard construction in the heuristic
/// literature the paper builds on.
#[derive(Clone, Copy, Debug)]
pub struct Genetic {
    /// Population size (≥ 2).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
}

impl Default for Genetic {
    fn default() -> Self {
        Genetic {
            population: 32,
            generations: 100,
            mutation_rate: 0.05,
        }
    }
}

fn tournament<'a, R: Rng + ?Sized>(pop: &'a [(Mapping, f64)], rng: &mut R) -> &'a Mapping {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if pop[a].1 <= pop[b].1 {
        &pop[a].0
    } else {
        &pop[b].0
    }
}

impl MappingHeuristic for Genetic {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn map(&self, etc: &EtcMatrix, rng: &mut dyn RngCore) -> Mapping {
        assert!(self.population >= 2, "population must be at least 2");
        assert!(
            (0.0..=1.0).contains(&self.mutation_rate),
            "mutation rate must lie in [0, 1]"
        );
        let apps = etc.apps();
        let machines = etc.machines();
        // One load buffer for every fitness evaluation in the run (bitwise
        // identical to `Mapping::makespan`, without its per-call allocation).
        let mut fitness = MakespanEvaluator::new();

        let mut pop: Vec<(Mapping, f64)> = Vec::with_capacity(self.population);
        for seed in [Mct.map(etc, rng), MinMin.map(etc, rng)] {
            let cost = fitness.eval(seed.assignment(), etc);
            pop.push((seed, cost));
        }
        while pop.len() < self.population {
            let m = Mapping::random(rng, apps, machines);
            let cost = fitness.eval(m.assignment(), etc);
            pop.push((m, cost));
        }

        for _ in 0..self.generations {
            let elite = pop
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("cost is never NaN"))
                .expect("non-empty population")
                .clone();
            let mut next = Vec::with_capacity(self.population);
            next.push(elite);
            while next.len() < self.population {
                let p1 = tournament(&pop, rng);
                let p2 = tournament(&pop, rng);
                // Uniform crossover + mutation.
                let genes: Vec<usize> = (0..apps)
                    .map(|i| {
                        let base = if rng.gen_bool(0.5) {
                            p1.machine_of(i)
                        } else {
                            p2.machine_of(i)
                        };
                        if rng.gen_range(0.0..1.0f64) < self.mutation_rate {
                            rng.gen_range(0..machines)
                        } else {
                            base
                        }
                    })
                    .collect();
                let cost = fitness.eval(&genes, etc);
                next.push((Mapping::new(genes, machines), cost));
            }
            pop = next;
        }
        pop.into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("cost is never NaN"))
            .expect("non-empty population")
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::test_support::*;
    use fepia_stats::rng_for;

    #[test]
    fn never_worse_than_seeds() {
        // Elitism + seeded population: the GA result can't be worse than
        // the better of MCT and Min-Min.
        for seed in 0..3u64 {
            let etc = instance(seed);
            let mct = Mct.map(&etc, &mut rng_for(seed, 0)).makespan(&etc);
            let mm = MinMin.map(&etc, &mut rng_for(seed, 0)).makespan(&etc);
            let ga = Genetic {
                population: 16,
                generations: 30,
                mutation_rate: 0.05,
            }
            .map(&etc, &mut rng_for(seed, 1))
            .makespan(&etc);
            assert!(
                ga <= mct.min(mm) + 1e-12,
                "seed {seed}: GA {ga} vs {mct}/{mm}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let etc = instance(5);
        let g = Genetic {
            population: 8,
            generations: 10,
            mutation_rate: 0.1,
        };
        let a = g.map(&etc, &mut rng_for(2, 0));
        let b = g.map(&etc, &mut rng_for(2, 0));
        assert_eq!(a, b);
        assert_valid(&a, &etc);
    }

    #[test]
    #[should_panic(expected = "population must be at least 2")]
    fn rejects_tiny_population() {
        let etc = instance(0);
        let _ = Genetic {
            population: 1,
            generations: 1,
            mutation_rate: 0.0,
        }
        .map(&etc, &mut rng_for(0, 0));
    }
}
