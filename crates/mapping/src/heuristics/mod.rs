//! Mapping heuristics.
//!
//! The paper frames the research problem as "how to determine a mapping …
//! so as to maximize robustness of desired system features" (§1) and builds
//! on the heuristic literature of its references \[7\] (Braun et al.'s
//! comparison of static heuristics) and \[21\] (dynamic mapping). This module
//! implements the classical baselines so robustness can be studied across
//! mapping strategies, plus a robustness-greedy heuristic that targets the
//! paper's motivating objective directly:
//!
//! | heuristic | idea |
//! |---|---|
//! | [`Olb`] | earliest-available machine, ignores ETCs |
//! | [`Met`] | minimum execution time, ignores loads |
//! | [`Mct`] | minimum completion time |
//! | [`MinMin`] | repeatedly map the task with the smallest best-completion |
//! | [`MaxMin`] | repeatedly map the task with the largest best-completion |
//! | [`Duplex`] | better of Min-Min / Max-Min |
//! | [`Sufferage`] | map the task that would suffer most otherwise |
//! | [`RoundRobin`] | cyclic assignment |
//! | [`RandomMap`] | uniform random (the paper's §4 generator) |
//! | [`RobustGreedy`] | greedily maximize the partial Eq. 7 metric |
//! | [`SimulatedAnnealing`] | random-restart local search with cooling |
//! | [`TabuSearch`] | steepest-descent with a tabu list |
//! | [`Genetic`] | population search with crossover/mutation |

mod annealing;
mod duplex;
mod genetic;
mod list_based;
mod robust_greedy;
mod simple;
mod tabu;

pub use annealing::SimulatedAnnealing;
pub use duplex::Duplex;
pub use genetic::Genetic;
pub use list_based::{MaxMin, MinMin, Sufferage};
pub use robust_greedy::{partial_metric, RobustGreedy};
pub use simple::{Mct, Met, Olb, RandomMap, RoundRobin};
pub use tabu::TabuSearch;

use crate::mapping::Mapping;
use fepia_etc::EtcMatrix;
use rand::RngCore;

/// A static mapping heuristic: given the ETC matrix, produce a mapping.
///
/// Deterministic heuristics ignore `rng`; stochastic ones (random, SA, GA)
/// must draw all randomness from it so experiments stay reproducible.
///
/// `Send + Sync` so sweep drivers can share one heuristic across worker
/// threads (every implementation is a plain value type).
pub trait MappingHeuristic: Send + Sync {
    /// A short stable name for reports and bench labels.
    fn name(&self) -> &'static str;

    /// Produces a mapping for `etc`.
    fn map(&self, etc: &EtcMatrix, rng: &mut dyn RngCore) -> Mapping;
}

/// The machine minimizing `load[j] + ETC(app, j)` and that completion time.
pub(crate) fn best_completion(loads: &[f64], etc: &EtcMatrix, app: usize) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (j, &load) in loads.iter().enumerate() {
        let ct = load + etc.get(app, j);
        if ct < best.1 {
            best = (j, ct);
        }
    }
    best
}

/// Per-heuristic iteration budgets for the seeded (stochastic / search)
/// heuristics, plus their shape parameters.
///
/// The old `all_heuristics(seeded_iters)` handed every search heuristic
/// one number and derived the rest by fixed ratios — the optimizer-job
/// layer needs to budget annealing, tabu and the GA independently without
/// re-plumbing construction, so the knobs live here. Every heuristic is a
/// plain value type (config fields only; all randomness comes through the
/// caller's `RngCore`), so one budget set can be shared across concurrent
/// jobs with no hidden state.
#[derive(Clone, Debug, PartialEq)]
pub struct HeuristicBudgets {
    /// [`SimulatedAnnealing::iterations`].
    pub annealing_iters: usize,
    /// [`SimulatedAnnealing::initial_temperature`].
    pub annealing_temperature: f64,
    /// [`SimulatedAnnealing::cooling`].
    pub annealing_cooling: f64,
    /// [`TabuSearch::iterations`].
    pub tabu_iters: usize,
    /// [`TabuSearch::tabu_len`].
    pub tabu_len: usize,
    /// [`Genetic::population`].
    pub genetic_population: usize,
    /// [`Genetic::generations`].
    pub genetic_generations: usize,
    /// [`Genetic::mutation_rate`].
    pub genetic_mutation_rate: f64,
    /// [`RobustGreedy::tau`].
    pub robust_greedy_tau: f64,
}

impl HeuristicBudgets {
    /// The legacy budget shape: one `seeded_iters` knob, tabu and GA
    /// generations at a tenth of it. Exactly what
    /// `all_heuristics(seeded_iters)` always built.
    pub fn uniform(seeded_iters: usize) -> HeuristicBudgets {
        HeuristicBudgets {
            annealing_iters: seeded_iters,
            annealing_temperature: 0.1,
            annealing_cooling: 0.995,
            tabu_iters: seeded_iters / 10,
            tabu_len: 16,
            genetic_population: 32,
            genetic_generations: seeded_iters / 10,
            genetic_mutation_rate: 0.05,
            robust_greedy_tau: 1.2,
        }
    }
}

/// The seeded search heuristics only (the ones an optimizer job runs),
/// constructed from explicit per-heuristic budgets.
pub fn seeded_heuristics_with(b: &HeuristicBudgets) -> Vec<Box<dyn MappingHeuristic>> {
    vec![
        Box::new(RobustGreedy {
            tau: b.robust_greedy_tau,
        }),
        Box::new(SimulatedAnnealing {
            iterations: b.annealing_iters,
            initial_temperature: b.annealing_temperature,
            cooling: b.annealing_cooling,
        }),
        Box::new(TabuSearch {
            iterations: b.tabu_iters,
            tabu_len: b.tabu_len,
        }),
        Box::new(Genetic {
            population: b.genetic_population,
            generations: b.genetic_generations,
            mutation_rate: b.genetic_mutation_rate,
        }),
    ]
}

/// Every heuristic in this module, boxed, with explicit seeded budgets.
pub fn all_heuristics_with(b: &HeuristicBudgets) -> Vec<Box<dyn MappingHeuristic>> {
    let mut hs: Vec<Box<dyn MappingHeuristic>> = vec![
        Box::new(Olb),
        Box::new(Met),
        Box::new(Mct),
        Box::new(MinMin),
        Box::new(MaxMin),
        Box::new(Duplex),
        Box::new(Sufferage),
        Box::new(RoundRobin),
        Box::new(RandomMap),
    ];
    hs.extend(seeded_heuristics_with(b));
    hs
}

/// Every heuristic in this module, boxed, for sweep-style experiments.
/// Legacy entry point: one shared iteration knob
/// ([`HeuristicBudgets::uniform`]).
pub fn all_heuristics(seeded_iters: usize) -> Vec<Box<dyn MappingHeuristic>> {
    all_heuristics_with(&HeuristicBudgets::uniform(seeded_iters))
}

#[cfg(test)]
pub(crate) mod test_support {
    use fepia_etc::{generate_cvb, EtcMatrix, EtcParams};
    use fepia_stats::rng_for;

    /// A paper-scale instance (20 apps × 5 machines, CVB 10/0.7/0.7).
    pub fn instance(seed: u64) -> EtcMatrix {
        generate_cvb(&mut rng_for(seed, 0), &EtcParams::paper_section_4_2())
    }

    /// Asserts a mapping is structurally valid for the given ETC matrix.
    pub fn assert_valid(mapping: &crate::Mapping, etc: &EtcMatrix) {
        assert_eq!(mapping.apps(), etc.apps());
        assert_eq!(mapping.machines(), etc.machines());
        assert!(mapping.assignment().iter().all(|&j| j < etc.machines()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::*;

    #[test]
    fn best_completion_accounts_for_load() {
        let etc = EtcMatrix::from_rows(vec![vec![10.0, 12.0]]);
        // Machine 0 is faster but busy: completion 30 vs 12.
        let (j, ct) = best_completion(&[20.0, 0.0], &etc, 0);
        assert_eq!(j, 1);
        assert_eq!(ct, 12.0);
    }

    #[test]
    fn all_heuristics_produce_valid_mappings() {
        let etc = instance(1);
        let mut rng = fepia_stats::rng_for(1, 99);
        for h in all_heuristics(200) {
            let m = h.map(&etc, &mut rng);
            assert_valid(&m, &etc);
            assert!(!h.name().is_empty());
        }
    }

    #[test]
    fn budgets_are_applied_per_heuristic() {
        let b = HeuristicBudgets {
            annealing_iters: 7,
            tabu_iters: 3,
            genetic_generations: 2,
            ..HeuristicBudgets::uniform(100)
        };
        let etc = instance(2);
        let mut rng = fepia_stats::rng_for(2, 0);
        // Uneven budgets construct and run; legacy uniform() reproduces the
        // old derivation exactly.
        for h in seeded_heuristics_with(&b) {
            assert_valid(&h.map(&etc, &mut rng), &etc);
        }
        let legacy = HeuristicBudgets::uniform(200);
        assert_eq!(legacy.annealing_iters, 200);
        assert_eq!(legacy.tabu_iters, 20);
        assert_eq!(legacy.genetic_generations, 20);
    }

    #[test]
    fn heuristic_names_are_unique() {
        let hs = all_heuristics(10);
        let mut names: Vec<&str> = hs.iter().map(|h| h.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), hs.len());
    }
}
