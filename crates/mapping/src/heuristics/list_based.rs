//! List-based batch heuristics: Min-Min, Max-Min, Sufferage.
//!
//! All three keep the full set of unmapped applications and repeatedly pick
//! one to commit, recomputing completion times each round — the classical
//! O(|A|²·|M|) scheme from the heuristic-comparison literature the paper
//! cites (its reference [7]).

use super::{best_completion, MappingHeuristic};
use crate::mapping::Mapping;
use fepia_etc::EtcMatrix;
use rand::RngCore;

fn list_based_map<F>(etc: &EtcMatrix, mut pick: F) -> Mapping
where
    // Picks the next application from (app, best machine, best completion,
    // second-best completion) tuples of the still-unmapped applications.
    F: FnMut(&[(usize, usize, f64, f64)]) -> usize,
{
    let apps = etc.apps();
    let mut loads = vec![0.0f64; etc.machines()];
    let mut assignment = vec![usize::MAX; apps];
    let mut unmapped: Vec<usize> = (0..apps).collect();

    while !unmapped.is_empty() {
        let candidates: Vec<(usize, usize, f64, f64)> = unmapped
            .iter()
            .map(|&i| {
                let (j, ct) = best_completion(&loads, etc, i);
                // Second-best completion time (∞ on single-machine systems).
                let second = loads
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != j)
                    .map(|(k, &load)| load + etc.get(i, k))
                    .fold(f64::INFINITY, f64::min);
                (i, j, ct, second)
            })
            .collect();
        let chosen = pick(&candidates);
        let (i, j, _, _) = candidates[chosen];
        loads[j] += etc.get(i, j);
        assignment[i] = j;
        unmapped.retain(|&u| u != i);
    }
    Mapping::new(assignment, etc.machines())
}

/// **Min-Min**: each round, commit the application whose best completion
/// time is smallest. Tends to produce short makespans by keeping machines
/// free for the expensive tail.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinMin;

impl MappingHeuristic for MinMin {
    fn name(&self) -> &'static str {
        "min-min"
    }

    fn map(&self, etc: &EtcMatrix, _rng: &mut dyn RngCore) -> Mapping {
        list_based_map(etc, |cands| {
            cands
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .2.partial_cmp(&b.1 .2).expect("CT is never NaN"))
                .map(|(idx, _)| idx)
                .expect("non-empty candidates")
        })
    }
}

/// **Max-Min**: each round, commit the application whose best completion
/// time is largest — front-loads the expensive applications.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxMin;

impl MappingHeuristic for MaxMin {
    fn name(&self) -> &'static str {
        "max-min"
    }

    fn map(&self, etc: &EtcMatrix, _rng: &mut dyn RngCore) -> Mapping {
        list_based_map(etc, |cands| {
            cands
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .2.partial_cmp(&b.1 .2).expect("CT is never NaN"))
                .map(|(idx, _)| idx)
                .expect("non-empty candidates")
        })
    }
}

/// **Sufferage**: each round, commit the application with the largest
/// *sufferage* — the gap between its second-best and best completion times,
/// i.e. how much it would suffer if denied its best machine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sufferage;

impl MappingHeuristic for Sufferage {
    fn name(&self) -> &'static str {
        "sufferage"
    }

    fn map(&self, etc: &EtcMatrix, _rng: &mut dyn RngCore) -> Mapping {
        list_based_map(etc, |cands| {
            cands
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    let sa = a.1 .3 - a.1 .2;
                    let sb = b.1 .3 - b.1 .2;
                    sa.partial_cmp(&sb).expect("sufferage is never NaN")
                })
                .map(|(idx, _)| idx)
                .expect("non-empty candidates")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::test_support::*;
    use crate::heuristics::{Mct, RandomMap};
    use fepia_stats::rng_for;

    #[test]
    fn minmin_hand_example() {
        // Two apps, two machines. App 0: (2, 10); app 1: (3, 4).
        // Min-Min commits app 0 → m0 (CT 2), then app 1: CTs (5, 4) → m1.
        let etc = EtcMatrix::from_rows(vec![vec![2.0, 10.0], vec![3.0, 4.0]]);
        let m = MinMin.map(&etc, &mut rng_for(0, 0));
        assert_eq!(m.assignment(), &[0, 1]);
        assert_eq!(m.makespan(&etc), 4.0);
    }

    #[test]
    fn maxmin_front_loads_expensive_app() {
        // App 1 is huge: Max-Min commits it first to the fast machine.
        let etc = EtcMatrix::from_rows(vec![vec![1.0, 1.5], vec![50.0, 80.0], vec![1.0, 1.5]]);
        let m = MaxMin.map(&etc, &mut rng_for(0, 0));
        assert_eq!(m.machine_of(1), 0);
        // Small apps spill to machine 1.
        assert_eq!(m.machine_of(0), 1);
        assert_eq!(m.machine_of(2), 1);
    }

    #[test]
    fn sufferage_prioritizes_high_stakes_app() {
        // App 0 suffers hugely without machine 0 (2 vs 100); app 1 barely
        // cares (3 vs 4). Sufferage must give machine 0 to app 0 first.
        let etc = EtcMatrix::from_rows(vec![vec![2.0, 100.0], vec![3.0, 4.0]]);
        let m = Sufferage.map(&etc, &mut rng_for(0, 0));
        assert_eq!(m.machine_of(0), 0);
    }

    #[test]
    fn batch_heuristics_beat_random_on_makespan() {
        // Not a theorem, but on CVB instances with 4× more apps than
        // machines it holds with overwhelming margin.
        for seed in 0..5u64 {
            let etc = instance(seed);
            let rnd = RandomMap.map(&etc, &mut rng_for(seed, 9)).makespan(&etc);
            for h in [&MinMin as &dyn MappingHeuristic, &MaxMin, &Sufferage] {
                let m = h.map(&etc, &mut rng_for(seed, 1));
                assert_valid(&m, &etc);
                assert!(
                    m.makespan(&etc) <= rnd * 1.05,
                    "{} lost badly to random on seed {seed}",
                    h.name()
                );
            }
        }
    }

    #[test]
    fn minmin_no_worse_than_mct_usually() {
        // Min-Min refines MCT's greedy order; check it is competitive.
        let etc = instance(11);
        let mm = MinMin.map(&etc, &mut rng_for(0, 0)).makespan(&etc);
        let mct = Mct.map(&etc, &mut rng_for(0, 0)).makespan(&etc);
        assert!(mm <= mct * 1.1, "min-min {mm} vs mct {mct}");
    }
}
