//! Robustness-greedy mapping.
//!
//! The paper's §1 motivates the whole metric with the problem of
//! "determin[ing] a mapping … so as to maximize robustness". This heuristic
//! attacks that objective directly: applications are committed in
//! decreasing order of their mean ETC, each to the machine that maximizes
//! the Eq. 7 metric of the *partial* mapping (with the partial makespan as
//! `M_orig`). Ties and the early all-empty rounds degrade gracefully to
//! minimum-completion-time behaviour.

use super::MappingHeuristic;
use crate::delta::DeltaEval;
use crate::mapping::Mapping;
use fepia_etc::EtcMatrix;
use rand::RngCore;

/// Greedy robustness maximizer (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct RobustGreedy {
    /// The makespan tolerance factor τ the final mapping will be judged
    /// with (1.2 in the paper's experiments).
    pub tau: f64,
}

impl Default for RobustGreedy {
    fn default() -> Self {
        RobustGreedy { tau: 1.2 }
    }
}

/// The Eq. 7 metric of a partial assignment described by per-machine loads
/// and occupancies, with `M_orig` the current partial makespan.
///
/// Kept as the closed-form reference for [`DeltaEval::peek_assign`], which
/// the heuristic now probes with (same shape, incremental bookkeeping).
pub fn partial_metric(loads: &[f64], occupancy: &[usize], tau: f64) -> f64 {
    let makespan = loads.iter().cloned().fold(0.0, f64::max);
    let bound = tau * makespan;
    loads
        .iter()
        .zip(occupancy.iter())
        .filter(|&(_, &n)| n > 0)
        .map(|(&f, &n)| (bound - f) / (n as f64).sqrt())
        .fold(f64::INFINITY, f64::min)
}

impl MappingHeuristic for RobustGreedy {
    fn name(&self) -> &'static str {
        "robust-greedy"
    }

    fn map(&self, etc: &EtcMatrix, _rng: &mut dyn RngCore) -> Mapping {
        assert!(self.tau >= 1.0, "tolerance factor τ must be ≥ 1");
        let apps = etc.apps();
        let machines = etc.machines();

        // Commit big applications first: they constrain the layout most.
        let mut order: Vec<usize> = (0..apps).collect();
        let mean_etc: Vec<f64> = (0..apps)
            .map(|i| etc.row(i).iter().sum::<f64>() / machines as f64)
            .collect();
        order.sort_by(|&a, &b| {
            mean_etc[b]
                .partial_cmp(&mean_etc[a])
                .expect("ETC is never NaN")
        });

        let mut delta = DeltaEval::empty(etc, machines, self.tau);
        for &i in &order {
            let mut best_j = 0;
            let mut best_score = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for j in 0..machines {
                // Primary: partial robustness; secondary: shorter completion
                // (breaks the all-equal early rounds toward MCT behaviour).
                let (metric, load) = delta.peek_assign(i, j);
                let score = (metric, -load);
                if score > best_score {
                    best_score = score;
                    best_j = j;
                }
            }
            delta.apply(i, best_j);
        }
        delta.mapping()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::test_support::*;
    use crate::heuristics::RandomMap;
    use crate::robustness::makespan_robustness;
    use fepia_stats::rng_for;

    #[test]
    fn partial_metric_matches_eq7_shape() {
        // loads (30, 20), occupancy (2, 1), τ=1.2: bound 36,
        // radii 6/√2 and 16 → metric 6/√2.
        let m = partial_metric(&[30.0, 20.0], &[2, 1], 1.2);
        assert!((m - 6.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn beats_random_mappings_on_robustness() {
        for seed in 0..6u64 {
            let etc = instance(seed);
            let greedy = RobustGreedy::default().map(&etc, &mut rng_for(seed, 0));
            assert_valid(&greedy, &etc);
            let rg = makespan_robustness(&greedy, &etc, 1.2).unwrap().metric;
            // A greedy heuristic carries no optimality guarantee, but it
            // must clearly beat the *average* random mapping.
            let metrics: Vec<f64> = (0..20)
                .map(|k| {
                    let m = RandomMap.map(&etc, &mut rng_for(seed, 100 + k));
                    makespan_robustness(&m, &etc, 1.2).unwrap().metric
                })
                .collect();
            let mean_random = metrics.iter().sum::<f64>() / metrics.len() as f64;
            assert!(
                rg >= mean_random,
                "seed {seed}: greedy {rg} < mean-of-20-random {mean_random}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let etc = instance(4);
        let a = RobustGreedy::default().map(&etc, &mut rng_for(0, 0));
        let b = RobustGreedy::default().map(&etc, &mut rng_for(1, 1));
        assert_eq!(a, b, "robust-greedy must not consume randomness");
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn rejects_bad_tau() {
        let etc = instance(0);
        let _ = RobustGreedy { tau: 0.5 }.map(&etc, &mut rng_for(0, 0));
    }
}
