//! Compile-once analysis plans.
//!
//! [`FepiaAnalysis::run`](crate::analysis::FepiaAnalysis::run) resolves every
//! feature through trait objects on each call: `as_affine()` clones
//! coefficient vectors, the numeric solver rebuilds its probe directions,
//! and the report allocates per feature. The paper's experiments (§4)
//! evaluate the metric over 1000 random mappings per system and the search
//! heuristics call it once per candidate move, so that per-call work
//! dominates. [`AnalysisPlan`] moves it to compile time:
//!
//! * **Affine features** are packed into one contiguous structure-of-arrays
//!   block ([`CompiledAffine`]): coefficients row-major, constants and
//!   pre-computed dual norms alongside. Evaluating a block row is a dot
//!   product, a residual and a division — no allocation, no virtual call.
//! * **Numeric features** ([`CompiledNumeric`]) keep their impact behind an
//!   `Arc<dyn Impact>` and run through the same
//!   [`radius_inner`](crate::radius) code path as the legacy API, with a
//!   reusable [`fepia_optim::SolverWorkspace`] so repeated solves skip the
//!   probe-direction setup.
//!
//! **Invariant:** for any origin, plan evaluation is *bitwise identical* to
//! the legacy per-feature [`crate::robustness_radius`] loop — the affine
//! block performs the same float operations in the same order, and the
//! numeric entries literally share the legacy code. Property tests in the
//! workspace root pin this.
//!
//! The plan is immutable, `Send + Sync`, and shared via `Arc`, so parallel
//! sweeps ([`AnalysisPlan::evaluate_batch_par`]) compile once and evaluate
//! everywhere; per-worker mutable scratch lives in [`PlanWorkspace`].

use crate::analysis::{FeatureRadius, RobustnessReport};
use crate::error::CoreError;
use crate::feature::{FeatureSpec, Tolerance};
use crate::impact::Impact;
use crate::perturbation::{Domain, Perturbation};
use crate::radius::{
    affine_bound_radius, dual_norm, radius_inner, record_radius, Bound, RadiusMethod,
    RadiusOptions, RadiusResult,
};
use crate::verdict::{
    DegradeReason, FailReason, PlanVerdict, RadiusVerdict, ResiliencePolicy, VerdictKind,
};
use fepia_optim::{
    certified_level_interval, min_norm_to_level_set_resilient, LevelSetProblem, Norm, OptimError,
    SolverOptions, SolverWorkspace, VecN,
};
use fepia_par::{
    par_map_dynamic_catch_with, par_map_dynamic_with, CatchConfig, ParConfig, TaskError,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Where a feature landed after compilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// Row index into the [`CompiledAffine`] block.
    Affine(usize),
    /// Index into the [`CompiledNumeric`] entries.
    Numeric(usize),
}

/// One compiled feature: its spec plus the slot holding its evaluator.
struct PlanFeature {
    spec: FeatureSpec,
    slot: Slot,
}

/// All affine features of a plan, packed as a structure-of-arrays: row `r`
/// is `f(π) = coeffs[r·dim .. (r+1)·dim] · π + constants[r]`, with the dual
/// norm `‖a_r‖_*` (under the plan's norm) pre-computed in `duals[r]` by a
/// single pass at compile time.
struct CompiledAffine {
    dim: usize,
    coeffs: Vec<f64>,
    constants: Vec<f64>,
    duals: Vec<f64>,
}

impl CompiledAffine {
    fn rows(&self) -> usize {
        self.constants.len()
    }

    fn row(&self, r: usize) -> &[f64] {
        &self.coeffs[r * self.dim..(r + 1) * self.dim]
    }

    /// `a_r · π + c_r`, with the multiply/add order of [`VecN::dot`] so the
    /// result is bitwise identical to the legacy `LinearImpact::eval`.
    fn eval(&self, r: usize, origin: &VecN) -> f64 {
        let dot: f64 = self
            .row(r)
            .iter()
            .zip(origin.as_slice().iter())
            .map(|(a, b)| a * b)
            .sum();
        dot + self.constants[r]
    }
}

/// One non-affine feature: the impact function and its pre-built problem
/// context (level-set problems are constructed per evaluation because they
/// borrow the origin, but the solver workspace is reused).
struct CompiledNumeric {
    impact: Arc<dyn Impact>,
}

/// A deterministic work budget for brownout evaluation.
///
/// The budget is expressed in *evaluation units* — full numeric solves
/// allowed — rather than wall time, so a budgeted verdict is a pure
/// function of `(plan, origin, budget)` and bitwise-reproducible
/// regardless of machine load. Affine features cost nothing: the Eq. 6
/// closed form always runs exactly. Each numeric feature consumes one
/// unit for its full §3.2 solve; once the budget is spent, remaining
/// numeric features are truncated to the certified axis-probe interval
/// ([`fepia_optim::certified_level_interval`]) and come back as
/// [`RadiusVerdict::Bounded`] with [`DegradeReason::BudgetExhausted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalBudget {
    /// Full numeric solves allowed before truncation.
    pub numeric_solves: u32,
}

impl EvalBudget {
    /// No truncation: every feature gets its full solve (the default path).
    pub const UNLIMITED: EvalBudget = EvalBudget {
        numeric_solves: u32::MAX,
    };
    /// Brownout: affine features only; every numeric feature truncates to
    /// its certified interval.
    pub const BROWNOUT: EvalBudget = EvalBudget { numeric_solves: 0 };

    /// Whether this budget can never truncate.
    pub fn is_unlimited(self) -> bool {
        self.numeric_solves == u32::MAX
    }
}

/// Mutable per-evaluation-context scratch for plan evaluation. One per
/// thread; create with [`AnalysisPlan::workspace`] (or `Default`).
#[derive(Default)]
pub struct PlanWorkspace {
    solver: SolverWorkspace,
}

impl PlanWorkspace {
    /// An empty workspace; buffers grow lazily on first use.
    pub fn new() -> Self {
        PlanWorkspace::default()
    }
}

/// The metric-level result of one plan evaluation (no per-feature allocation
/// beyond the radii vector).
#[derive(Clone, Debug)]
pub struct PlanEvaluation {
    /// Per-feature robustness radii, in feature insertion order.
    pub radii: Vec<f64>,
    /// `ρ_μ(Φ, πⱼ) = min_i r_μ(φᵢ, πⱼ)`.
    pub metric: f64,
    /// Index of the binding (first minimal) feature.
    pub binding: usize,
    /// Floored metric for discrete perturbation domains, `None` otherwise.
    pub floored_metric: Option<f64>,
    /// True if any feature violates its tolerance at the evaluated origin.
    pub any_violated: bool,
}

impl PlanEvaluation {
    /// The metric to quote: floored for discrete parameters, raw otherwise.
    pub fn effective_metric(&self) -> f64 {
        self.floored_metric.unwrap_or(self.metric)
    }
}

/// A compiled, immutable, shareable FePIA analysis: compile once with
/// [`crate::FepiaAnalysis::compile`], evaluate at any number of origins.
pub struct AnalysisPlan {
    perturbation: Perturbation,
    features: Vec<PlanFeature>,
    affine: CompiledAffine,
    numeric: Vec<CompiledNumeric>,
    opts: RadiusOptions,
}

impl std::fmt::Debug for AnalysisPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisPlan")
            .field("perturbation", &self.perturbation.name)
            .field("features", &self.features.len())
            .field("affine", &self.affine.rows())
            .field("numeric", &self.numeric.len())
            .finish()
    }
}

impl AnalysisPlan {
    /// Compiles `features` against `perturbation` under `opts`.
    ///
    /// Fails fast on conditions the legacy path would only hit at run time:
    /// an empty feature set, impact/perturbation dimension mismatches, and
    /// non-affine impacts under a non-ℓ₂ norm (which the numeric solver
    /// cannot handle).
    pub(crate) fn compile(
        perturbation: &Perturbation,
        features: &[(FeatureSpec, Arc<dyn Impact>)],
        opts: &RadiusOptions,
    ) -> Result<AnalysisPlan, CoreError> {
        let _span = fepia_obs::span!("core.plan.compile");
        if features.is_empty() {
            return Err(CoreError::EmptyFeatureSet);
        }
        let dim = perturbation.origin.dim();
        let mut plan_features = Vec::with_capacity(features.len());
        let mut affine = CompiledAffine {
            dim,
            coeffs: Vec::new(),
            constants: Vec::new(),
            duals: Vec::new(),
        };
        let mut affine_rows: Vec<VecN> = Vec::new();
        let mut numeric = Vec::new();
        for (spec, impact) in features {
            if let Some(expected) = impact.expected_dim() {
                if expected != dim {
                    return Err(CoreError::DimensionMismatch {
                        perturbation: dim,
                        expected,
                    });
                }
            }
            let slot = match impact.as_affine() {
                Some((a, c)) => {
                    if a.dim() != dim {
                        return Err(CoreError::DimensionMismatch {
                            perturbation: dim,
                            expected: a.dim(),
                        });
                    }
                    let row = affine.rows();
                    affine.coeffs.extend_from_slice(a.as_slice());
                    affine.constants.push(c);
                    affine_rows.push(a);
                    Slot::Affine(row)
                }
                None => {
                    if !matches!(opts.norm, Norm::L2) {
                        return Err(CoreError::UnsupportedNorm {
                            norm: opts.norm.name(),
                        });
                    }
                    numeric.push(CompiledNumeric {
                        impact: Arc::clone(impact),
                    });
                    Slot::Numeric(numeric.len() - 1)
                }
            };
            plan_features.push(PlanFeature {
                spec: spec.clone(),
                slot,
            });
        }
        // Single dual-norm pass over the whole block.
        affine.duals = affine_rows
            .iter()
            .map(|a| dual_norm(&opts.norm, a))
            .collect();

        if fepia_obs::enabled() {
            let reg = fepia_obs::global();
            reg.counter("plan.compiles").inc();
            reg.counter("plan.compiled.affine")
                .add(affine.rows() as u64);
            reg.counter("plan.compiled.numeric")
                .add(numeric.len() as u64);
        }
        Ok(AnalysisPlan {
            perturbation: perturbation.clone(),
            features: plan_features,
            affine,
            numeric,
            opts: opts.clone(),
        })
    }

    /// The perturbation the plan was compiled against (its origin is the
    /// default evaluation point).
    pub fn perturbation(&self) -> &Perturbation {
        &self.perturbation
    }

    /// The options the plan was compiled under.
    pub fn options(&self) -> &RadiusOptions {
        &self.opts
    }

    /// Number of features in the plan.
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// How many features compiled into the affine block.
    pub fn affine_count(&self) -> usize {
        self.affine.rows()
    }

    /// How many features require the numeric solver.
    pub fn numeric_count(&self) -> usize {
        self.numeric.len()
    }

    /// Feature names, in insertion order.
    pub fn feature_names(&self) -> impl Iterator<Item = &str> {
        self.features.iter().map(|f| f.spec.name.as_str())
    }

    /// A fresh evaluation workspace for this plan.
    pub fn workspace(&self) -> PlanWorkspace {
        PlanWorkspace::new()
    }

    /// One feature's full radius result at `origin`.
    ///
    /// This mirrors `radius_inner` branch for branch; the affine arm redoes
    /// its float operations against the packed block (bitwise identical),
    /// the numeric arm *is* `radius_inner`. `want_point` gates the only
    /// allocating step of the affine arm (the ℓ₂ boundary projection).
    fn eval_feature(
        &self,
        idx: usize,
        origin: &VecN,
        ws: &mut PlanWorkspace,
        want_point: bool,
    ) -> Result<RadiusResult, CoreError> {
        let feature = &self.features[idx];
        let tol = feature.spec.tolerance;
        match feature.slot {
            Slot::Numeric(k) => radius_inner(
                &feature.spec,
                self.numeric[k].impact.as_ref(),
                origin,
                &self.opts,
                &mut ws.solver,
            ),
            Slot::Affine(r) => self.eval_affine_tol(r, tol, origin, want_point),
        }
    }

    fn constants_at(&self, r: usize) -> f64 {
        self.affine.constants[r]
    }

    /// Evaluates the metric at `origin` with caller-provided scratch. The
    /// core fast path: one allocation (the radii vector) per call.
    pub fn evaluate_with(
        &self,
        origin: &VecN,
        ws: &mut PlanWorkspace,
    ) -> Result<PlanEvaluation, CoreError> {
        self.check_dim(origin)?;
        let mut radii = Vec::with_capacity(self.features.len());
        let mut any_violated = false;
        for idx in 0..self.features.len() {
            let r = self.eval_feature(idx, origin, ws, false)?;
            any_violated |= r.violated;
            radii.push(r.radius);
        }
        let binding = first_min_index(&radii);
        let metric = radii[binding];
        let floored_metric = floored(self.perturbation.domain, metric);
        if fepia_obs::enabled() {
            fepia_obs::global().counter("plan.eval.full").inc();
        }
        Ok(PlanEvaluation {
            radii,
            metric,
            binding,
            floored_metric,
            any_violated,
        })
    }

    /// [`Self::evaluate_with`] with a throwaway workspace.
    pub fn evaluate(&self, origin: &VecN) -> Result<PlanEvaluation, CoreError> {
        let mut ws = self.workspace();
        self.evaluate_with(origin, &mut ws)
    }

    /// Evaluates the plan at every origin, sequentially, sharing one
    /// workspace across the whole batch.
    pub fn evaluate_batch(&self, origins: &[VecN]) -> Result<Vec<PlanEvaluation>, CoreError> {
        let _span = fepia_obs::span!("core.plan.batch");
        let mut ws = self.workspace();
        let out: Result<Vec<_>, _> = origins
            .iter()
            .map(|origin| self.evaluate_with(origin, &mut ws))
            .collect();
        if fepia_obs::enabled() {
            fepia_obs::global()
                .counter("plan.eval.batch.items")
                .add(origins.len() as u64);
        }
        out
    }

    /// Parallel batch evaluation over the `fepia-par` dynamic driver: one
    /// [`PlanWorkspace`] per worker, results in input order, bitwise
    /// identical to [`Self::evaluate_batch`] for any thread count.
    pub fn evaluate_batch_par(
        &self,
        origins: &[VecN],
        cfg: &ParConfig,
    ) -> Result<Vec<PlanEvaluation>, CoreError> {
        let _span = fepia_obs::span!("core.plan.batch");
        let out: Result<Vec<_>, _> =
            par_map_dynamic_with(origins, cfg, PlanWorkspace::new, |ws, _i, origin: &VecN| {
                self.evaluate_with(origin, ws)
            })
            .into_iter()
            .collect();
        if fepia_obs::enabled() {
            fepia_obs::global()
                .counter("plan.eval.batch.items")
                .add(origins.len() as u64);
        }
        out
    }

    /// Full-report evaluation (boundary points included) — the engine behind
    /// the legacy [`crate::FepiaAnalysis::run`]. Emits the same per-feature
    /// `radius.computed` events / dispatch counters as the one-shot
    /// `robustness_radius` path (the batch/metric-only entry points stay
    /// event-free).
    pub fn evaluate_report(&self, origin: &VecN) -> Result<RobustnessReport, CoreError> {
        self.check_dim(origin)?;
        let mut ws = self.workspace();
        let mut radii = Vec::with_capacity(self.features.len());
        for (idx, feature) in self.features.iter().enumerate() {
            let result = self.eval_feature(idx, origin, &mut ws, true)?;
            if fepia_obs::enabled() {
                record_radius(&feature.spec, &result);
            }
            radii.push(FeatureRadius {
                name: feature.spec.name.clone(),
                result,
            });
        }
        let binding = first_min_index_by(&radii, |fr| fr.result.radius);
        let metric = radii[binding].result.radius;
        let floored_metric = floored(self.perturbation.domain, metric);
        Ok(RobustnessReport {
            radii,
            metric,
            binding,
            floored_metric,
            kind: VerdictKind::Exact,
        })
    }

    /// The affine arm of [`Self::eval_feature`] with the tolerance supplied
    /// by the caller instead of read from the feature spec. The float
    /// operations and branch order are *identical* to the spec-tolerance
    /// path, so evaluating with an overridden tolerance `t` is bitwise
    /// equal to evaluating a plan whose feature was compiled with `t` —
    /// the invariant the degradation-curve engine
    /// ([`crate::curve::CurvePlan`]) rests on.
    fn eval_affine_tol(
        &self,
        r: usize,
        tol: Tolerance,
        origin: &VecN,
        want_point: bool,
    ) -> Result<RadiusResult, CoreError> {
        let f_orig = self.affine.eval(r, origin);
        if !f_orig.is_finite() {
            return Err(CoreError::Optim(OptimError::NonFinite));
        }
        if !tol.contains(f_orig) {
            return Ok(RadiusResult {
                radius: 0.0,
                boundary_point: want_point.then(|| origin.clone()),
                bound: Some(if f_orig > tol.max {
                    Bound::Max
                } else {
                    Bound::Min
                }),
                violated: true,
                method: RadiusMethod::Analytic,
                iterations: 0,
                f_evals: 1,
            });
        }
        if tol.min == tol.max {
            // Degenerate tolerance: origin on the only boundary.
            return Ok(RadiusResult {
                radius: 0.0,
                boundary_point: want_point.then(|| origin.clone()),
                bound: Some(Bound::Max),
                violated: false,
                method: RadiusMethod::Analytic,
                iterations: 0,
                f_evals: 1,
            });
        }
        let dual = self.affine.duals[r];
        let mut best: Option<(f64, Bound)> = None;
        let mut consider = |radius: f64, bound: Bound| {
            if best.as_ref().is_none_or(|(b, _)| radius < *b) {
                best = Some((radius, bound));
            }
        };
        // Same residual arithmetic as `affine_bound_radius`: the legacy
        // path computes `(a·π + c) − β` left to right, and `f_orig` above
        // is `(a·π) + c` with the identical dot, so `f_orig − β` is
        // bitwise equal to the legacy residual.
        let bound_radius = |beta: f64| -> f64 {
            if dual <= f64::EPSILON {
                return f64::INFINITY;
            }
            let residual = f_orig - beta;
            residual.abs() / dual
        };
        if tol.has_upper() {
            let radius = bound_radius(tol.max);
            consider(radius, Bound::Max);
        }
        if tol.has_lower() {
            let radius = bound_radius(tol.min);
            consider(radius, Bound::Min);
        }
        Ok(match best {
            Some((radius, bound)) if radius.is_finite() => {
                let boundary_point = if want_point {
                    let beta = match bound {
                        Bound::Max => tol.max,
                        Bound::Min => tol.min,
                    };
                    let a = VecN::from(self.affine.row(r));
                    affine_bound_radius(&a, self.constants_at(r), beta, origin, &self.opts.norm).1
                } else {
                    None
                };
                RadiusResult {
                    radius,
                    boundary_point,
                    bound: Some(bound),
                    violated: false,
                    method: RadiusMethod::Analytic,
                    iterations: 0,
                    f_evals: 1,
                }
            }
            _ => RadiusResult {
                radius: f64::INFINITY,
                boundary_point: None,
                bound: None,
                violated: false,
                method: RadiusMethod::Unbounded,
                iterations: 0,
                f_evals: 1,
            },
        })
    }

    /// One feature's classified verdict at `origin` under a caller-chosen
    /// tolerance — the fault-tolerant counterpart of
    /// [`Self::eval_feature`]. Never returns an error and (with
    /// `policy.catch_panics`) never unwinds: every outcome maps onto a
    /// [`RadiusVerdict`]. The affine arm runs [`Self::eval_affine_tol`];
    /// the numeric arm already takes its tolerance as a parameter.
    fn eval_feature_verdict_tol(
        &self,
        idx: usize,
        tol: Tolerance,
        origin: &VecN,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
    ) -> RadiusVerdict {
        let feature = &self.features[idx];
        match feature.slot {
            // The affine arm is exact and infallible past the finiteness
            // check, so the legacy evaluator already covers it.
            Slot::Affine(r) => match self.eval_affine_tol(r, tol, origin, false) {
                Ok(r) if r.violated => RadiusVerdict::Infeasible,
                Ok(r) => RadiusVerdict::Exact(r),
                Err(CoreError::Optim(OptimError::NonFinite)) => {
                    RadiusVerdict::Failed(FailReason::NonFiniteImpact)
                }
                Err(e) => RadiusVerdict::Failed(FailReason::Solver(e.to_string())),
            },
            Slot::Numeric(k) => {
                let impact = self.numeric[k].impact.as_ref();
                if policy.catch_panics {
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        self.numeric_feature_verdict(tol, impact, origin, &mut ws.solver, policy)
                    }));
                    match attempt {
                        Ok(verdict) => verdict,
                        Err(payload) => {
                            // The workspace may hold partially-written
                            // buffers from the unwound solve: reinitialize
                            // (self-heal) before the next feature uses it.
                            ws.solver = SolverWorkspace::new();
                            if fepia_obs::enabled() {
                                fepia_obs::global().counter("core.verdict.panics").inc();
                            }
                            RadiusVerdict::Failed(FailReason::Panic(panic_text(payload)))
                        }
                    }
                } else {
                    self.numeric_feature_verdict(tol, impact, origin, &mut ws.solver, policy)
                }
            }
        }
    }

    /// The numeric arm of [`Self::eval_feature_verdict`]: mirrors
    /// `radius_inner`'s pre-checks, then solves each active bound with the
    /// resilient solver and combines the two outcomes.
    fn numeric_feature_verdict(
        &self,
        tol: Tolerance,
        impact: &dyn Impact,
        origin: &VecN,
        ws: &mut SolverWorkspace,
        policy: &ResiliencePolicy,
    ) -> RadiusVerdict {
        let f_orig = impact.eval(origin);
        if !f_orig.is_finite() {
            return RadiusVerdict::Failed(FailReason::NonFiniteImpact);
        }
        if !tol.contains(f_orig) {
            return RadiusVerdict::Infeasible;
        }
        if tol.min == tol.max {
            // Degenerate tolerance: origin on the only boundary (see
            // `radius_inner` for the rationale).
            return RadiusVerdict::Exact(RadiusResult {
                radius: 0.0,
                boundary_point: Some(origin.clone()),
                bound: Some(Bound::Max),
                violated: false,
                method: RadiusMethod::Analytic,
                iterations: 0,
                f_evals: 1,
            });
        }
        let mut outcomes = Vec::with_capacity(2);
        if tol.has_upper() {
            outcomes.push((
                numeric_bound_verdict(impact, tol.max, origin, 1.0, &self.opts.solver, policy, ws),
                Bound::Max,
            ));
        }
        if tol.has_lower() {
            outcomes.push((
                numeric_bound_verdict(impact, tol.min, origin, -1.0, &self.opts.solver, policy, ws),
                Bound::Min,
            ));
        }
        combine_bound_outcomes(outcomes)
    }

    /// Fault-tolerant evaluation at `origin`: classifies every feature
    /// instead of aborting, so sweeps always get an answer per origin.
    ///
    /// Under fault injection (`fepia-chaos` enabled) origin components may
    /// be poisoned before the finiteness scan, exercising the same rejection
    /// path as genuinely bad inputs.
    pub fn evaluate_verdict_with(
        &self,
        origin: &VecN,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
    ) -> PlanVerdict {
        self.evaluate_verdict_budgeted_with(origin, ws, policy, EvalBudget::UNLIMITED)
    }

    /// [`Self::evaluate_verdict_with`] under a deterministic work budget —
    /// the brownout evaluation mode.
    ///
    /// The affine SoA block always runs exactly (it is the cheap Eq. 6
    /// closed form). The first `budget.numeric_solves` numeric features get
    /// their full solve; the rest are truncated to the certified axis-probe
    /// interval and classified [`RadiusVerdict::Bounded`] with
    /// [`DegradeReason::BudgetExhausted`]. Truncated verdicts are still
    /// *sound*: the interval certifiably contains the exact radius, and the
    /// result is a pure function of `(plan, origin, budget)` — no wall
    /// clock — so it is bitwise-reproducible across runs.
    pub fn evaluate_verdict_budgeted_with(
        &self,
        origin: &VecN,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> PlanVerdict {
        self.evaluate_verdict_budgeted_inner(
            origin,
            &|idx| self.features[idx].spec.tolerance,
            ws,
            policy,
            budget,
        )
    }

    /// [`Self::evaluate_verdict_budgeted_with`] with every feature's
    /// tolerance overridden by `tols` (insertion order, one per feature).
    ///
    /// This is the level-sweep primitive behind
    /// [`crate::curve::CurvePlan`]: one compiled plan answers ρ at many
    /// tolerance levels without recompiling. For any `tols` equal to the
    /// compiled spec tolerances the result is *bitwise identical* to
    /// [`Self::evaluate_verdict_budgeted_with`] — the override threads
    /// through the same branches, float operations and (under fault
    /// injection) the same chaos draw sequence.
    ///
    /// # Panics
    /// If `tols.len() != self.feature_count()`.
    pub fn evaluate_verdict_budgeted_with_tolerances(
        &self,
        origin: &VecN,
        tols: &[Tolerance],
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> PlanVerdict {
        assert_eq!(
            tols.len(),
            self.features.len(),
            "one tolerance override per feature"
        );
        self.evaluate_verdict_budgeted_inner(origin, &|idx| tols[idx], ws, policy, budget)
    }

    /// Shared body of the budgeted verdict entry points: `tol_at` supplies
    /// each feature's tolerance (spec or override) so both paths are the
    /// same code — and therefore bitwise-coincident when the tolerances
    /// coincide.
    fn evaluate_verdict_budgeted_inner(
        &self,
        origin: &VecN,
        tol_at: &dyn Fn(usize) -> Tolerance,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> PlanVerdict {
        if origin.dim() != self.affine.dim {
            return self.record_verdict(PlanVerdict::all_failed(
                self.features.len(),
                FailReason::DimensionMismatch {
                    got: origin.dim(),
                    expected: self.affine.dim,
                },
            ));
        }
        let poisoned;
        let origin = if fepia_chaos::enabled() {
            let mut v = origin.clone();
            for i in 0..v.dim() {
                v[i] = fepia_chaos::poison_f64("core.origin", v[i]);
            }
            poisoned = v;
            &poisoned
        } else {
            origin
        };
        if let Some(index) = origin.as_slice().iter().position(|x| !x.is_finite()) {
            return self.record_verdict(PlanVerdict::all_failed(
                self.features.len(),
                FailReason::NonFiniteInput { index },
            ));
        }
        let mut solves_left = budget.numeric_solves;
        let mut truncated = 0u64;
        let mut radii = Vec::with_capacity(self.features.len());
        for idx in 0..self.features.len() {
            let tol = tol_at(idx);
            let verdict = match self.features[idx].slot {
                Slot::Affine(_) => self.eval_feature_verdict_tol(idx, tol, origin, ws, policy),
                Slot::Numeric(_) if solves_left > 0 => {
                    solves_left -= 1;
                    self.eval_feature_verdict_tol(idx, tol, origin, ws, policy)
                }
                Slot::Numeric(_) => {
                    truncated += 1;
                    self.budgeted_feature_verdict_tol(idx, tol, origin, ws, policy)
                }
            };
            radii.push(verdict);
        }
        if truncated > 0 && fepia_obs::enabled() {
            fepia_obs::global()
                .counter("brownout.truncated_features")
                .add(truncated);
        }
        self.record_verdict(PlanVerdict::from_radii(radii))
    }

    /// [`Self::evaluate_verdict_with`] with a throwaway workspace.
    pub fn evaluate_verdict(&self, origin: &VecN, policy: &ResiliencePolicy) -> PlanVerdict {
        let mut ws = self.workspace();
        self.evaluate_verdict_with(origin, &mut ws, policy)
    }

    /// [`Self::evaluate_verdict_budgeted_with`] with a throwaway workspace.
    pub fn evaluate_verdict_budgeted(
        &self,
        origin: &VecN,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> PlanVerdict {
        let mut ws = self.workspace();
        self.evaluate_verdict_budgeted_with(origin, &mut ws, policy, budget)
    }

    /// One numeric feature's *truncated* verdict: the budget is spent, so
    /// instead of solving, go straight to the certified axis-probe interval
    /// (the boundary-iterate machinery the exhausted-retry path already
    /// uses). Shares the pre-checks of [`Self::numeric_feature_verdict`]
    /// so Infeasible / non-finite classifications are identical to the
    /// unbudgeted path.
    fn budgeted_feature_verdict_tol(
        &self,
        idx: usize,
        tol: Tolerance,
        origin: &VecN,
        _ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
    ) -> RadiusVerdict {
        let feature = &self.features[idx];
        let Slot::Numeric(k) = feature.slot else {
            unreachable!("budgeted truncation only applies to numeric slots");
        };
        let impact = self.numeric[k].impact.as_ref();
        let run = || self.truncated_numeric_verdict(tol, impact, origin, policy);
        if policy.catch_panics {
            match catch_unwind(AssertUnwindSafe(run)) {
                Ok(verdict) => verdict,
                Err(payload) => {
                    if fepia_obs::enabled() {
                        fepia_obs::global().counter("core.verdict.panics").inc();
                    }
                    RadiusVerdict::Failed(FailReason::Panic(panic_text(payload)))
                }
            }
        } else {
            run()
        }
    }

    /// The solve-free numeric arm: same origin pre-checks as
    /// [`Self::numeric_feature_verdict`], then one certified interval per
    /// active bound, combined min-of-intervals.
    fn truncated_numeric_verdict(
        &self,
        tol: Tolerance,
        impact: &dyn Impact,
        origin: &VecN,
        policy: &ResiliencePolicy,
    ) -> RadiusVerdict {
        let f_orig = impact.eval(origin);
        if !f_orig.is_finite() {
            return RadiusVerdict::Failed(FailReason::NonFiniteImpact);
        }
        if !tol.contains(f_orig) {
            return RadiusVerdict::Infeasible;
        }
        if tol.min == tol.max {
            return RadiusVerdict::Exact(RadiusResult {
                radius: 0.0,
                boundary_point: Some(origin.clone()),
                bound: Some(Bound::Max),
                violated: false,
                method: RadiusMethod::Analytic,
                iterations: 0,
                f_evals: 1,
            });
        }
        let mut outcomes = Vec::with_capacity(2);
        if tol.has_upper() {
            outcomes.push((
                truncated_bound_certificate(
                    impact,
                    tol.max,
                    origin,
                    1.0,
                    &self.opts.solver,
                    policy,
                ),
                Bound::Max,
            ));
        }
        if tol.has_lower() {
            outcomes.push((
                truncated_bound_certificate(
                    impact,
                    tol.min,
                    origin,
                    -1.0,
                    &self.opts.solver,
                    policy,
                ),
                Bound::Min,
            ));
        }
        combine_bound_outcomes(outcomes)
    }

    /// Sequential fault-tolerant batch: one verdict per origin, no early
    /// abort, one shared workspace.
    pub fn evaluate_batch_verdicts(
        &self,
        origins: &[VecN],
        policy: &ResiliencePolicy,
    ) -> Vec<PlanVerdict> {
        let _span = fepia_obs::span!("core.plan.batch_verdicts");
        let mut ws = self.workspace();
        origins
            .iter()
            .map(|origin| self.evaluate_verdict_with(origin, &mut ws, policy))
            .collect()
    }

    /// Parallel fault-tolerant batch over the catching `fepia-par` driver:
    /// worker panics are isolated per origin, quarantined tasks get one
    /// bounded re-dispatch, and an origin whose task panics on every attempt
    /// still yields a verdict ([`FailReason::Panic`]) rather than killing
    /// the sweep.
    pub fn evaluate_batch_par_verdicts(
        &self,
        origins: &[VecN],
        cfg: &ParConfig,
        policy: &ResiliencePolicy,
    ) -> Vec<PlanVerdict> {
        let _span = fepia_obs::span!("core.plan.batch_verdicts");
        let catch = CatchConfig::default();
        par_map_dynamic_catch_with(origins, cfg, &catch, PlanWorkspace::new, {
            |ws: &mut PlanWorkspace, _i, origin: &VecN| {
                self.evaluate_verdict_with(origin, ws, policy)
            }
        })
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(TaskError::Panicked { message, .. }) => {
                PlanVerdict::all_failed(self.features.len(), FailReason::Panic(message))
            }
        })
        .collect()
    }

    fn record_verdict(&self, v: PlanVerdict) -> PlanVerdict {
        if fepia_obs::enabled() {
            let reg = fepia_obs::global();
            for r in &v.radii {
                reg.counter(&format!("core.verdict.{}", r.label())).inc();
            }
            if !v.is_exact() {
                reg.counter("degraded.evaluations").inc();
            }
        }
        v
    }

    fn check_dim(&self, origin: &VecN) -> Result<(), CoreError> {
        if origin.dim() != self.affine.dim {
            return Err(CoreError::DimensionMismatch {
                perturbation: origin.dim(),
                expected: self.affine.dim,
            });
        }
        Ok(())
    }
}

/// Outcome of one numeric bound solve in the verdict path: exact, certified
/// interval, or nothing.
enum BoundOutcome {
    Exact {
        radius: f64,
        point: Option<VecN>,
        iterations: usize,
        f_evals: u64,
    },
    Interval {
        lo: f64,
        hi: f64,
        reason: DegradeReason,
        restarts: usize,
    },
    Fail(FailReason),
}

/// The budget-truncated counterpart of [`numeric_bound_verdict`]: no solve
/// at all, just the certified axis-probe interval toward one tolerance
/// boundary. Deterministic — bisection only, no retries, no randomness —
/// so brownout answers are bitwise-reproducible.
fn truncated_bound_certificate(
    impact: &dyn Impact,
    beta: f64,
    origin: &VecN,
    direction: f64,
    solver: &SolverOptions,
    policy: &ResiliencePolicy,
) -> BoundOutcome {
    let f = |pi: &VecN| direction * impact.eval(pi);
    let problem = LevelSetProblem {
        f: &f,
        grad: None,
        origin,
        level: direction * beta,
    };
    match certified_level_interval(&problem, solver, policy.certify_bisections) {
        Ok(iv) => BoundOutcome::Interval {
            lo: iv.lo,
            hi: iv.hi,
            reason: DegradeReason::BudgetExhausted,
            restarts: 0,
        },
        Err(e) => BoundOutcome::Fail(FailReason::Solver(format!("budget-truncated: {e}"))),
    }
}

/// Resilient counterpart of `numeric_bound_radius`: solve toward one
/// tolerance boundary under the retry policy, degrading to the axis-probe
/// certificate instead of erroring.
fn numeric_bound_verdict(
    impact: &dyn Impact,
    beta: f64,
    origin: &VecN,
    direction: f64,
    solver: &SolverOptions,
    policy: &ResiliencePolicy,
    ws: &mut SolverWorkspace,
) -> BoundOutcome {
    let f = |pi: &VecN| direction * impact.eval(pi);
    let has_grad = impact.gradient(origin).is_some();
    let g = |pi: &VecN| {
        impact
            .gradient(pi)
            .map(|v| v.scaled(direction))
            .expect("gradient availability checked before solving")
    };
    let problem = LevelSetProblem {
        f: &f,
        grad: if has_grad { Some(&g) } else { None },
        origin,
        level: direction * beta,
    };
    match min_norm_to_level_set_resilient(&problem, solver, &policy.retry, ws) {
        Ok(res) if !res.degraded => BoundOutcome::Exact {
            radius: res.solution.radius,
            point: Some(res.solution.point),
            iterations: res.solution.iterations,
            f_evals: res.solution.f_evals,
        },
        Ok(res) => {
            // Non-converged, but every solver iterate sits on the boundary:
            // the best radius found is a certified upper bound. The axis
            // probes supply the lower certificate.
            let hi = res.solution.radius;
            let lo = match certified_level_interval(&problem, solver, policy.certify_bisections) {
                Ok(iv) => iv.lo.min(hi),
                Err(_) => 0.0,
            };
            BoundOutcome::Interval {
                lo,
                hi,
                reason: DegradeReason::IterationCap,
                restarts: res.restarts,
            }
        }
        Err(OptimError::Unreachable) => BoundOutcome::Exact {
            radius: f64::INFINITY,
            point: None,
            iterations: 0,
            f_evals: 0,
        },
        Err(e) => {
            let restarts = match &e {
                OptimError::Exhausted { restarts, .. } => *restarts,
                _ => 0,
            };
            match certified_level_interval(&problem, solver, policy.certify_bisections) {
                Ok(iv) => BoundOutcome::Interval {
                    lo: iv.lo,
                    hi: iv.hi,
                    reason: DegradeReason::BudgetExhausted,
                    restarts,
                },
                Err(ce) => BoundOutcome::Fail(FailReason::Solver(format!("{e}; fallback: {ce}"))),
            }
        }
    }
}

/// Combines the (up to two) per-bound outcomes into one feature verdict.
/// The all-exact path reproduces the legacy `consider` loop (min radius,
/// upper bound first on ties); anything else aggregates min-of-intervals,
/// a failed bound contributing the vacuous `[0, ∞)`.
fn combine_bound_outcomes(outcomes: Vec<(BoundOutcome, Bound)>) -> RadiusVerdict {
    if outcomes.is_empty() {
        // Both tolerances infinite: no boundary constrains the feature.
        return RadiusVerdict::Exact(RadiusResult {
            radius: f64::INFINITY,
            boundary_point: None,
            bound: None,
            violated: false,
            method: RadiusMethod::Unbounded,
            iterations: 0,
            f_evals: 1,
        });
    }
    if outcomes
        .iter()
        .all(|(o, _)| matches!(o, BoundOutcome::Exact { .. }))
    {
        let mut best: Option<(f64, Option<VecN>, Bound)> = None;
        let mut iterations = 0usize;
        let mut f_evals = 1u64; // the feasibility check at the origin
        for (o, bound) in outcomes {
            if let BoundOutcome::Exact {
                radius,
                point,
                iterations: it,
                f_evals: fe,
            } = o
            {
                iterations += it;
                f_evals += fe;
                if best.as_ref().is_none_or(|(r, _, _)| radius < *r) {
                    best = Some((radius, point, bound));
                }
            }
        }
        return RadiusVerdict::Exact(match best {
            Some((radius, point, bound)) if radius.is_finite() => RadiusResult {
                radius,
                boundary_point: point,
                bound: Some(bound),
                violated: false,
                method: RadiusMethod::Numeric,
                iterations,
                f_evals,
            },
            _ => RadiusResult {
                radius: f64::INFINITY,
                boundary_point: None,
                bound: None,
                violated: false,
                method: RadiusMethod::Unbounded,
                iterations,
                f_evals,
            },
        });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::INFINITY;
    let mut reason = None;
    let mut restarts_max = 0usize;
    let mut fail: Option<FailReason> = None;
    for (o, _) in outcomes {
        match o {
            BoundOutcome::Exact { radius, .. } => {
                lo = lo.min(radius);
                hi = hi.min(radius);
            }
            BoundOutcome::Interval {
                lo: l,
                hi: h,
                reason: r,
                restarts,
            } => {
                lo = lo.min(l);
                hi = hi.min(h);
                reason.get_or_insert(r);
                restarts_max = restarts_max.max(restarts);
            }
            BoundOutcome::Fail(fr) => {
                // The failed bound's radius could be anything in [0, ∞).
                lo = 0.0;
                fail.get_or_insert(fr);
            }
        }
    }
    if let Some(fr) = fail {
        if lo == 0.0 && hi.is_infinite() {
            // Nothing certified on either side.
            return RadiusVerdict::Failed(fr);
        }
    }
    RadiusVerdict::Bounded {
        lo: lo.min(hi),
        hi,
        reason: reason.unwrap_or(DegradeReason::BudgetExhausted),
        restarts: restarts_max,
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Index of the first minimum (the tie-break `Iterator::min_by` uses, which
/// the legacy binding-feature selection relies on).
fn first_min_index(radii: &[f64]) -> usize {
    first_min_index_by(radii, |r| *r)
}

/// `total_cmp` is selection-identical to the historical
/// `partial_cmp().expect(..)` here — radii are never `-0.0` (they come from
/// `abs()` / norms) — but it stays total under fault injection: a NaN radius
/// (positive bit pattern) sorts *after* `+∞` and is never picked as the
/// minimum instead of poisoning the whole comparison.
fn first_min_index_by<T>(items: &[T], key: impl Fn(&T) -> f64) -> usize {
    items
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| key(a).total_cmp(&key(b)))
        .map(|(i, _)| i)
        .expect("non-empty feature set")
}

fn floored(domain: Domain, metric: f64) -> Option<f64> {
    match domain {
        Domain::Discrete if metric.is_finite() => Some(metric.floor()),
        Domain::Discrete => Some(metric),
        Domain::Continuous => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FepiaAnalysis;
    use crate::feature::Tolerance;
    use crate::impact::{FnImpact, LinearImpact, SumSelected};
    use crate::robustness_radius;

    fn mixed_analysis() -> FepiaAnalysis {
        let pert = Perturbation::continuous("p", VecN::from([1.0, 2.0, 3.0]));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("lin", Tolerance::upper(30.0)),
            LinearImpact::new(VecN::from([2.0, 1.0, 0.5]), 1.0),
        );
        a.add_feature(
            FeatureSpec::new("sum", Tolerance::new(1.0, 40.0).unwrap()),
            SumSelected::new(vec![0, 2], 3),
        );
        a.add_feature(
            FeatureSpec::new("quad", Tolerance::upper(60.0)),
            FnImpact::new(|v: &VecN| v.dot(v)).with_dim(3),
        );
        a
    }

    #[test]
    fn plan_matches_legacy_bitwise() {
        let analysis = mixed_analysis();
        let opts = RadiusOptions::default();
        let plan = analysis.compile(&opts).unwrap();
        assert_eq!(plan.feature_count(), 3);
        assert_eq!(plan.affine_count(), 2);
        assert_eq!(plan.numeric_count(), 1);

        let origin = analysis.perturbation().origin.clone();
        let eval = plan.evaluate(&origin).unwrap();
        let report = analysis.run(&opts).unwrap();
        assert_eq!(eval.radii.len(), report.radii.len());
        for (fast, legacy) in eval.radii.iter().zip(report.radii.iter()) {
            assert_eq!(fast.to_bits(), legacy.result.radius.to_bits());
        }
        assert_eq!(eval.metric.to_bits(), report.metric.to_bits());
        assert_eq!(eval.binding, report.binding);
    }

    #[test]
    fn batch_matches_single_evaluations() {
        let analysis = mixed_analysis();
        let plan = analysis.compile(&RadiusOptions::default()).unwrap();
        let origins: Vec<VecN> = (0..8)
            .map(|i| VecN::from([1.0 + i as f64 * 0.1, 2.0, 3.0 - i as f64 * 0.05]))
            .collect();
        let batch = plan.evaluate_batch(&origins).unwrap();
        for (origin, b) in origins.iter().zip(batch.iter()) {
            let single = plan.evaluate(origin).unwrap();
            assert_eq!(b.metric.to_bits(), single.metric.to_bits());
        }
        let par = plan
            .evaluate_batch_par(&origins, &ParConfig::with_threads(2))
            .unwrap();
        for (a, b) in batch.iter().zip(par.iter()) {
            assert_eq!(a.metric.to_bits(), b.metric.to_bits());
            assert_eq!(a.binding, b.binding);
        }
    }

    #[test]
    fn report_matches_per_feature_path() {
        let analysis = mixed_analysis();
        let opts = RadiusOptions::default();
        let plan = analysis.compile(&opts).unwrap();
        let pert = analysis.perturbation().clone();
        let report = plan.evaluate_report(&pert.origin).unwrap();
        // Against the true legacy path: robustness_radius per feature.
        let legacy_lin = robustness_radius(
            &FeatureSpec::new("lin", Tolerance::upper(30.0)),
            &LinearImpact::new(VecN::from([2.0, 1.0, 0.5]), 1.0),
            &pert,
            &opts,
        )
        .unwrap();
        assert_eq!(
            report.radii[0].result.radius.to_bits(),
            legacy_lin.radius.to_bits()
        );
        assert_eq!(
            report.radii[0].result.boundary_point,
            legacy_lin.boundary_point
        );
        let legacy_quad = robustness_radius(
            &FeatureSpec::new("quad", Tolerance::upper(60.0)),
            &FnImpact::new(|v: &VecN| v.dot(v)).with_dim(3),
            &pert,
            &opts,
        )
        .unwrap();
        assert_eq!(
            report.radii[2].result.radius.to_bits(),
            legacy_quad.radius.to_bits()
        );
    }

    #[test]
    fn budgeted_brownout_is_sound_and_bitwise_reproducible() {
        let analysis = mixed_analysis();
        let plan = analysis.compile(&RadiusOptions::default()).unwrap();
        let origin = analysis.perturbation().origin.clone();
        let policy = ResiliencePolicy::default();

        let exact = plan.evaluate_verdict(&origin, &policy);
        assert_eq!(exact.kind, VerdictKind::Exact);

        // Zero budget: affine features exact, the numeric feature truncated
        // to a certified interval.
        let b1 = plan.evaluate_verdict_budgeted(&origin, &policy, EvalBudget::BROWNOUT);
        let b2 = plan.evaluate_verdict_budgeted(&origin, &policy, EvalBudget::BROWNOUT);
        assert_eq!(b1.kind, VerdictKind::Bounded);
        for (full, brown) in exact.radii.iter().zip(&b1.radii).take(2) {
            assert_eq!(
                full.exact_radius().unwrap().to_bits(),
                brown.exact_radius().unwrap().to_bits(),
                "affine features must stay exact under brownout"
            );
        }
        let exact_r = exact.radii[2].exact_radius().unwrap();
        match (&b1.radii[2], &b2.radii[2]) {
            (
                RadiusVerdict::Bounded { lo, hi, reason, .. },
                RadiusVerdict::Bounded {
                    lo: lo2, hi: hi2, ..
                },
            ) => {
                assert_eq!(*reason, DegradeReason::BudgetExhausted);
                assert!(
                    *lo <= exact_r && exact_r <= *hi,
                    "certified interval [{lo}, {hi}] must contain the exact radius {exact_r}"
                );
                assert_eq!(
                    lo.to_bits(),
                    lo2.to_bits(),
                    "brownout must be bitwise stable"
                );
                assert_eq!(
                    hi.to_bits(),
                    hi2.to_bits(),
                    "brownout must be bitwise stable"
                );
            }
            other => panic!("expected Bounded truncations, got {other:?}"),
        }
        // The metric interval is sound: it contains the exact metric.
        assert!(b1.metric_lo <= exact.metric_hi && exact.metric_hi <= b1.metric_hi);

        // A budget covering every numeric feature reproduces the full path
        // bitwise.
        let full =
            plan.evaluate_verdict_budgeted(&origin, &policy, EvalBudget { numeric_solves: 1 });
        assert_eq!(full.kind, VerdictKind::Exact);
        assert_eq!(full.metric_hi.to_bits(), exact.metric_hi.to_bits());
    }

    #[test]
    fn compile_rejects_bad_inputs() {
        let pert = Perturbation::continuous("p", VecN::zeros(2));
        let empty = FepiaAnalysis::new(pert.clone());
        assert_eq!(
            empty.compile(&RadiusOptions::default()).unwrap_err(),
            CoreError::EmptyFeatureSet
        );

        let mut wrong_dim = FepiaAnalysis::new(pert.clone());
        wrong_dim.add_feature(
            FeatureSpec::new("f", Tolerance::upper(1.0)),
            LinearImpact::homogeneous(VecN::from([1.0, 1.0, 1.0])),
        );
        assert!(matches!(
            wrong_dim.compile(&RadiusOptions::default()).unwrap_err(),
            CoreError::DimensionMismatch { .. }
        ));

        let mut nonlinear = FepiaAnalysis::new(pert);
        nonlinear.add_feature(
            FeatureSpec::new("f", Tolerance::upper(1.0)),
            FnImpact::new(|v: &VecN| v.dot(v)).with_dim(2),
        );
        let opts = RadiusOptions {
            norm: Norm::L1,
            solver: Default::default(),
        };
        assert_eq!(
            nonlinear.compile(&opts).unwrap_err(),
            CoreError::UnsupportedNorm { norm: "l1" }
        );
    }

    #[test]
    fn evaluate_checks_origin_dimension() {
        let analysis = mixed_analysis();
        let plan = analysis.compile(&RadiusOptions::default()).unwrap();
        assert!(matches!(
            plan.evaluate(&VecN::zeros(2)).unwrap_err(),
            CoreError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn degenerate_and_violated_features_in_plan() {
        let pert = Perturbation::continuous("p", VecN::from([2.0, 3.0]));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("on-boundary", Tolerance::new(5.0, 5.0).unwrap()),
            LinearImpact::new(VecN::from([1.0, 1.0]), 0.0),
        );
        a.add_feature(
            FeatureSpec::new("violated", Tolerance::upper(1.0)),
            LinearImpact::new(VecN::from([1.0, 1.0]), 0.0),
        );
        let plan = a.compile(&RadiusOptions::default()).unwrap();
        let eval = plan.evaluate(&VecN::from([2.0, 3.0])).unwrap();
        assert_eq!(eval.radii, vec![0.0, 0.0]);
        assert!(eval.any_violated);
        assert_eq!(eval.metric, 0.0);
        assert_eq!(eval.binding, 0);
    }

    #[test]
    fn infinite_radius_feature_unbounded() {
        let pert = Perturbation::continuous("p", VecN::zeros(2));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("const", Tolerance::upper(5.0)),
            LinearImpact::new(VecN::zeros(2), 1.0),
        );
        let plan = a.compile(&RadiusOptions::default()).unwrap();
        let eval = plan.evaluate(&VecN::zeros(2)).unwrap();
        assert_eq!(eval.metric, f64::INFINITY);
    }

    #[test]
    fn verdict_matches_exact_path_on_clean_problems() {
        let analysis = mixed_analysis();
        let plan = analysis.compile(&RadiusOptions::default()).unwrap();
        let origin = analysis.perturbation().origin.clone();
        let eval = plan.evaluate(&origin).unwrap();
        let verdict = plan.evaluate_verdict(&origin, &ResiliencePolicy::default());
        assert_eq!(verdict.kind, VerdictKind::Exact);
        assert!(verdict.is_exact());
        assert_eq!(verdict.metric_lo.to_bits(), eval.metric.to_bits());
        assert_eq!(verdict.metric_hi.to_bits(), eval.metric.to_bits());
        assert_eq!(verdict.binding, Some(eval.binding));
        for (v, r) in verdict.radii.iter().zip(eval.radii.iter()) {
            assert_eq!(v.exact_radius().unwrap().to_bits(), r.to_bits());
        }
    }

    #[test]
    fn verdict_classifies_poisoned_origin() {
        let analysis = mixed_analysis();
        let plan = analysis.compile(&RadiusOptions::default()).unwrap();
        let bad = VecN::from([1.0, f64::NAN, 3.0]);
        let verdict = plan.evaluate_verdict(&bad, &ResiliencePolicy::default());
        assert_eq!(verdict.kind, VerdictKind::Failed);
        assert_eq!(verdict.radii.len(), 3);
        for v in &verdict.radii {
            assert!(matches!(
                v,
                RadiusVerdict::Failed(FailReason::NonFiniteInput { index: 1 })
            ));
        }
        assert_eq!(verdict.metric_lo, 0.0);
        assert_eq!(verdict.metric_hi, f64::INFINITY);
    }

    #[test]
    fn verdict_classifies_dimension_mismatch() {
        let analysis = mixed_analysis();
        let plan = analysis.compile(&RadiusOptions::default()).unwrap();
        let verdict = plan.evaluate_verdict(&VecN::zeros(2), &ResiliencePolicy::default());
        assert_eq!(verdict.kind, VerdictKind::Failed);
        assert!(matches!(
            verdict.radii[0],
            RadiusVerdict::Failed(FailReason::DimensionMismatch {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn verdict_isolates_panicking_impact() {
        let pert = Perturbation::continuous("p", VecN::from([1.0, 1.0]));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("good", Tolerance::upper(10.0)),
            LinearImpact::new(VecN::from([1.0, 1.0]), 0.0),
        );
        a.add_feature(
            FeatureSpec::new("bomb", Tolerance::upper(10.0)),
            FnImpact::new(|v: &VecN| {
                if v.dot(v) > 2.5 {
                    panic!("impact exploded");
                }
                v.dot(v)
            })
            .with_dim(2),
        );
        let plan = a.compile(&RadiusOptions::default()).unwrap();
        let verdict = plan.evaluate_verdict(&VecN::from([1.0, 1.0]), &ResiliencePolicy::default());
        assert_eq!(verdict.kind, VerdictKind::Failed);
        assert!(matches!(
            &verdict.radii[1],
            RadiusVerdict::Failed(FailReason::Panic(msg)) if msg.contains("impact exploded")
        ));
        // The clean feature still certifies the metric's upper bound.
        let (lo, hi) = verdict.radii[0].radius_bounds().unwrap();
        assert_eq!(lo, hi);
        assert!(hi.is_finite());
        assert_eq!(verdict.metric_hi.to_bits(), hi.to_bits());
        assert_eq!(verdict.metric_lo, 0.0);
    }

    #[test]
    fn verdict_degrades_to_certified_interval_when_starved() {
        // One outer iteration and no restarts: the curved feature cannot
        // converge, so the verdict must degrade to an interval that still
        // brackets the true radius (5.0 for ‖π‖² = 25 from the origin).
        let pert = Perturbation::continuous("p", VecN::zeros(2));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("quad", Tolerance::upper(25.0)),
            FnImpact::new(|v: &VecN| v.dot(v)).with_dim(2),
        );
        let opts = RadiusOptions {
            norm: Norm::L2,
            solver: fepia_optim::SolverOptions {
                max_outer: 1,
                ..Default::default()
            },
        };
        let plan = a.compile(&opts).unwrap();
        let policy = ResiliencePolicy {
            retry: fepia_optim::RetryPolicy {
                max_restarts: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let verdict = plan.evaluate_verdict(&VecN::zeros(2), &policy);
        let (lo, hi) = verdict.radii[0]
            .radius_bounds()
            .expect("degraded verdict still has bounds");
        assert!(lo <= 5.0 + 1e-6, "lo {lo} must not exceed true radius");
        assert!(hi >= 5.0 - 1e-6, "hi {hi} must not undercut true radius");
        assert!(
            matches!(verdict.kind, VerdictKind::Bounded | VerdictKind::Exact),
            "got {:?}",
            verdict.kind
        );
    }

    #[test]
    fn batch_verdicts_cover_every_origin() {
        let analysis = mixed_analysis();
        let plan = analysis.compile(&RadiusOptions::default()).unwrap();
        let mut origins: Vec<VecN> = (0..12)
            .map(|i| VecN::from([1.0 + i as f64 * 0.1, 2.0, 3.0]))
            .collect();
        origins[5] = VecN::from([f64::INFINITY, 0.0, 0.0]); // poisoned
        origins[9] = VecN::zeros(2); // wrong dimension
        let policy = ResiliencePolicy::default();
        let seq = plan.evaluate_batch_verdicts(&origins, &policy);
        assert_eq!(seq.len(), origins.len());
        assert_eq!(seq[5].kind, VerdictKind::Failed);
        assert_eq!(seq[9].kind, VerdictKind::Failed);
        assert_eq!(seq[0].kind, VerdictKind::Exact);
        let par = plan.evaluate_batch_par_verdicts(&origins, &ParConfig::with_threads(3), &policy);
        assert_eq!(par.len(), origins.len());
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.kind, p.kind);
            assert_eq!(s.metric_lo.to_bits(), p.metric_lo.to_bits());
            assert_eq!(s.metric_hi.to_bits(), p.metric_hi.to_bits());
        }
    }

    #[test]
    fn discrete_domain_floors_plan_metric() {
        let pert = Perturbation::discrete("λ", VecN::from([0.0]));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("T", Tolerance::upper(7.5)),
            LinearImpact::homogeneous(VecN::from([2.0])),
        );
        let plan = a.compile(&RadiusOptions::default()).unwrap();
        let eval = plan.evaluate(&VecN::from([0.0])).unwrap();
        assert_eq!(eval.floored_metric, Some(3.0));
        assert_eq!(eval.effective_metric(), 3.0);
    }
}
