//! FePIA step 2 — perturbation parameters.
//!
//! "Let `Π` be the set of such system and environment parameters. It is
//! assumed that the elements of `Π` are vectors." (§2, step 2). A
//! perturbation parameter has an assumed operating value `πⱼᵒʳⁱᵍ` — the ETC
//! vector `C_orig` in §3.1, the initial sensor loads `λ_orig` in §3.2.

use crate::error::CoreError;
use fepia_optim::VecN;

/// Whether the parameter varies continuously or on an integer lattice.
///
/// §3.2 treats the (discrete) sensor load as continuous and then floors the
/// resulting metric, "because `ρ_μ(Φ, λ)` should not have fractional
/// values"; [`Domain::Discrete`] triggers exactly that floor in the
/// analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Real-valued parameter (ETC errors, rates, ...).
    Continuous,
    /// Integer-valued parameter (objects per data set, ...); the metric is
    /// floored.
    Discrete,
}

/// A perturbation parameter `πⱼ`: a named vector with an assumed value.
#[derive(Clone, Debug, PartialEq)]
pub struct Perturbation {
    /// Human-readable name (e.g. `"ETC vector C"` or `"sensor load λ"`).
    pub name: String,
    /// The assumed operating value `πⱼᵒʳⁱᵍ`.
    pub origin: VecN,
    /// Continuous or discrete (see [`Domain`]).
    pub domain: Domain,
}

impl Perturbation {
    /// Creates a continuous perturbation parameter.
    ///
    /// # Panics
    /// Panics when any origin component is NaN or infinite; use
    /// [`Perturbation::try_continuous`] for a fallible variant.
    pub fn continuous(name: impl Into<String>, origin: VecN) -> Self {
        Self::try_continuous(name, origin).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a discrete perturbation parameter (metric will be floored).
    ///
    /// # Panics
    /// Panics when any origin component is NaN or infinite; use
    /// [`Perturbation::try_discrete`] for a fallible variant.
    pub fn discrete(name: impl Into<String>, origin: VecN) -> Self {
        Self::try_discrete(name, origin).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Perturbation::continuous`]: rejects non-finite origin
    /// components with [`CoreError::NonFiniteOrigin`].
    pub fn try_continuous(name: impl Into<String>, origin: VecN) -> Result<Self, CoreError> {
        Self::validated(name.into(), origin, Domain::Continuous)
    }

    /// Fallible [`Perturbation::discrete`]: rejects non-finite origin
    /// components with [`CoreError::NonFiniteOrigin`].
    pub fn try_discrete(name: impl Into<String>, origin: VecN) -> Result<Self, CoreError> {
        Self::validated(name.into(), origin, Domain::Discrete)
    }

    fn validated(name: String, origin: VecN, domain: Domain) -> Result<Self, CoreError> {
        if let Some(index) = origin.iter().position(|v| !v.is_finite()) {
            return Err(CoreError::NonFiniteOrigin {
                value: origin[index],
                name,
                index,
            });
        }
        Ok(Perturbation {
            name,
            origin,
            domain,
        })
    }

    /// The number of elements `n_{πⱼ}` in the parameter vector.
    pub fn dim(&self) -> usize {
        self.origin.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = Perturbation::continuous("ETC vector C", VecN::from([1.0, 2.0]));
        assert_eq!(c.domain, Domain::Continuous);
        assert_eq!(c.dim(), 2);

        let d = Perturbation::discrete("sensor load λ", VecN::from([962.0, 380.0, 240.0]));
        assert_eq!(d.domain, Domain::Discrete);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.name, "sensor load λ");
    }

    #[test]
    fn rejects_non_finite_origin() {
        let err = Perturbation::try_continuous("C", VecN::from([1.0, f64::NAN])).unwrap_err();
        assert!(matches!(err, CoreError::NonFiniteOrigin { index: 1, .. }));
        assert!(Perturbation::try_discrete("λ", VecN::from([f64::INFINITY])).is_err());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn infallible_constructor_panics_on_nan_origin() {
        Perturbation::continuous("C", VecN::from([f64::NAN, 1.0]));
    }
}
