//! FePIA step 2 — perturbation parameters.
//!
//! "Let `Π` be the set of such system and environment parameters. It is
//! assumed that the elements of `Π` are vectors." (§2, step 2). A
//! perturbation parameter has an assumed operating value `πⱼᵒʳⁱᵍ` — the ETC
//! vector `C_orig` in §3.1, the initial sensor loads `λ_orig` in §3.2.

use fepia_optim::VecN;

/// Whether the parameter varies continuously or on an integer lattice.
///
/// §3.2 treats the (discrete) sensor load as continuous and then floors the
/// resulting metric, "because `ρ_μ(Φ, λ)` should not have fractional
/// values"; [`Domain::Discrete`] triggers exactly that floor in the
/// analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Real-valued parameter (ETC errors, rates, ...).
    Continuous,
    /// Integer-valued parameter (objects per data set, ...); the metric is
    /// floored.
    Discrete,
}

/// A perturbation parameter `πⱼ`: a named vector with an assumed value.
#[derive(Clone, Debug, PartialEq)]
pub struct Perturbation {
    /// Human-readable name (e.g. `"ETC vector C"` or `"sensor load λ"`).
    pub name: String,
    /// The assumed operating value `πⱼᵒʳⁱᵍ`.
    pub origin: VecN,
    /// Continuous or discrete (see [`Domain`]).
    pub domain: Domain,
}

impl Perturbation {
    /// Creates a continuous perturbation parameter.
    pub fn continuous(name: impl Into<String>, origin: VecN) -> Self {
        Perturbation {
            name: name.into(),
            origin,
            domain: Domain::Continuous,
        }
    }

    /// Creates a discrete perturbation parameter (metric will be floored).
    pub fn discrete(name: impl Into<String>, origin: VecN) -> Self {
        Perturbation {
            name: name.into(),
            origin,
            domain: Domain::Discrete,
        }
    }

    /// The number of elements `n_{πⱼ}` in the parameter vector.
    pub fn dim(&self) -> usize {
        self.origin.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = Perturbation::continuous("ETC vector C", VecN::from([1.0, 2.0]));
        assert_eq!(c.domain, Domain::Continuous);
        assert_eq!(c.dim(), 2);

        let d = Perturbation::discrete("sensor load λ", VecN::from([962.0, 380.0, 240.0]));
        assert_eq!(d.domain, Domain::Discrete);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.name, "sensor load λ");
    }
}
