//! Simultaneous perturbation parameters (extension).
//!
//! The paper analyzes one perturbation parameter at a time and defers the
//! simultaneous case to Ali's thesis (\[1\] in the paper). This module
//! implements the natural joint construction: concatenate the parameter
//! vectors into one perturbation and lift each impact function onto the
//! concatenated space.
//!
//! Because different parameters carry **different units** (seconds of ETC
//! error vs objects per data set), a raw Euclidean norm on the
//! concatenation would be meaningless. Each part therefore declares a
//! `unit` — "one unit of plausible variation" — and the joint space is
//! measured in those units: component `r` of part `z` enters the joint
//! vector as `π_r / unit_z`. The joint metric is then *the number of
//! simultaneous plausible-variation units, in any direction across all
//! parameters, that the mapping tolerates*.

use crate::analysis::FepiaAnalysis;
use crate::feature::FeatureSpec;
use crate::impact::Impact;
use crate::perturbation::Perturbation;
use fepia_optim::VecN;

/// Handle to one parameter inside a [`JointAnalysis`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartId(usize);

struct Part {
    offset: usize,
    len: usize,
    unit: f64,
}

/// An impact on one part's subspace, lifted to the joint normalized space.
struct LiftedImpact {
    inner: Box<dyn Impact>,
    offset: usize,
    len: usize,
    unit: f64,
    joint_dim: usize,
}

impl LiftedImpact {
    fn extract(&self, joint: &VecN) -> VecN {
        // De-normalize back to the part's native units.
        VecN::new(
            (0..self.len)
                .map(|r| joint[self.offset + r] * self.unit)
                .collect(),
        )
    }
}

impl Impact for LiftedImpact {
    fn eval(&self, joint: &VecN) -> f64 {
        self.inner.eval(&self.extract(joint))
    }

    fn gradient(&self, joint: &VecN) -> Option<VecN> {
        // Chain rule: ∂f/∂(normalized component) = unit · ∂f/∂(native).
        let g = self.inner.gradient(&self.extract(joint))?;
        let mut out = VecN::zeros(self.joint_dim);
        for r in 0..self.len {
            out[self.offset + r] = g[r] * self.unit;
        }
        Some(out)
    }

    fn as_affine(&self) -> Option<(VecN, f64)> {
        let (a, c) = self.inner.as_affine()?;
        let mut out = VecN::zeros(self.joint_dim);
        for r in 0..self.len {
            out[self.offset + r] = a[r] * self.unit;
        }
        Some((out, c))
    }

    fn expected_dim(&self) -> Option<usize> {
        Some(self.joint_dim)
    }
}

/// Builder for a joint analysis over several simultaneous perturbation
/// parameters.
#[derive(Default)]
pub struct JointAnalysis {
    parts: Vec<Part>,
    origin: Vec<f64>,
    names: Vec<String>,
    features: Vec<(FeatureSpec, PartId, Box<dyn Impact>)>,
}

impl JointAnalysis {
    /// Creates an empty joint analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a perturbation parameter with its assumed value and unit of
    /// plausible variation (`unit > 0`, in the parameter's native units).
    pub fn add_parameter(&mut self, name: impl Into<String>, origin: VecN, unit: f64) -> PartId {
        assert!(unit > 0.0 && unit.is_finite(), "unit must be positive");
        assert!(!origin.is_empty(), "empty parameter vector");
        let id = PartId(self.parts.len());
        self.parts.push(Part {
            offset: self.origin.len(),
            len: origin.dim(),
            unit,
        });
        // Joint origin is stored normalized.
        self.origin.extend(origin.iter().map(|&x| x / unit));
        self.names.push(name.into());
        id
    }

    /// Adds a feature whose impact reads the given parameter. (A feature
    /// depending on several parameters can be added multiple times, once
    /// per dependency, or expressed directly against the joint space via
    /// [`FepiaAnalysis`] after [`Self::build`].)
    pub fn add_feature(
        &mut self,
        spec: FeatureSpec,
        part: PartId,
        impact: impl Impact + 'static,
    ) -> &mut Self {
        assert!(part.0 < self.parts.len(), "unknown parameter handle");
        self.features.push((spec, part, Box::new(impact)));
        self
    }

    /// Finalizes into a standard [`FepiaAnalysis`] over the concatenated,
    /// unit-normalized perturbation. The resulting metric is measured in
    /// joint plausible-variation units.
    pub fn build(self) -> FepiaAnalysis {
        let joint_dim = self.origin.len();
        let perturbation = Perturbation::continuous(
            format!("joint({})", self.names.join(", ")),
            VecN::new(self.origin),
        );
        let mut analysis = FepiaAnalysis::new(perturbation);
        for (spec, part, inner) in self.features {
            let p = &self.parts[part.0];
            analysis.add_feature_boxed(
                spec,
                Box::new(LiftedImpact {
                    inner,
                    offset: p.offset,
                    len: p.len,
                    unit: p.unit,
                    joint_dim,
                }),
            );
        }
        analysis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Tolerance;
    use crate::impact::{FnImpact, LinearImpact};
    use crate::radius::RadiusOptions;

    /// Two parameters: ETC-style errors (unit 1 s) and loads (unit 100
    /// objects). One linear feature on each.
    fn two_param_analysis() -> FepiaAnalysis {
        let mut j = JointAnalysis::new();
        let etc = j.add_parameter("C", VecN::from([10.0, 20.0]), 1.0);
        let load = j.add_parameter("λ", VecN::from([500.0]), 100.0);
        j.add_feature(
            FeatureSpec::new("finish-time", Tolerance::upper(40.0)),
            etc,
            LinearImpact::homogeneous(VecN::from([1.0, 1.0])),
        );
        j.add_feature(
            FeatureSpec::new("latency", Tolerance::upper(900.0)),
            load,
            LinearImpact::homogeneous(VecN::from([1.0])),
        );
        j.build()
    }

    #[test]
    fn joint_metric_in_normalized_units() {
        let report = two_param_analysis().run(&RadiusOptions::default()).unwrap();
        // Feature 1: boundary C₁+C₂ = 40 from (10,20): native distance
        // 10/√2; unit 1 ⇒ normalized 10/√2 ≈ 7.07.
        // Feature 2: boundary λ = 900 from 500: native 400; unit 100 ⇒ 4.
        assert_eq!(report.radii.len(), 2);
        assert!((report.radii[0].result.radius - 10.0 / 2f64.sqrt()).abs() < 1e-9);
        assert!((report.radii[1].result.radius - 4.0).abs() < 1e-9);
        assert!((report.metric - 4.0).abs() < 1e-9);
        assert_eq!(report.binding_feature().name, "latency");
    }

    #[test]
    fn unit_choice_changes_the_binding_parameter() {
        // Shrinking the load unit (loads vary less) makes the load feature
        // more robust in joint units, flipping the binding feature.
        let mut j = JointAnalysis::new();
        let etc = j.add_parameter("C", VecN::from([10.0, 20.0]), 1.0);
        let load = j.add_parameter("λ", VecN::from([500.0]), 10.0);
        j.add_feature(
            FeatureSpec::new("finish-time", Tolerance::upper(40.0)),
            etc,
            LinearImpact::homogeneous(VecN::from([1.0, 1.0])),
        );
        j.add_feature(
            FeatureSpec::new("latency", Tolerance::upper(900.0)),
            load,
            LinearImpact::homogeneous(VecN::from([1.0])),
        );
        let report = j.build().run(&RadiusOptions::default()).unwrap();
        assert_eq!(report.binding_feature().name, "finish-time");
    }

    #[test]
    fn nonlinear_lifted_impact_works() {
        // A quadratic impact on the second parameter, solved numerically in
        // the joint space.
        let mut j = JointAnalysis::new();
        let _etc = j.add_parameter("C", VecN::from([0.0]), 1.0);
        let load = j.add_parameter("λ", VecN::from([0.0, 0.0]), 2.0);
        j.add_feature(
            FeatureSpec::new("power", Tolerance::upper(16.0)),
            load,
            FnImpact::new(|v: &VecN| v.dot(v)).with_dim(2),
        );
        let report = j.build().run(&RadiusOptions::default()).unwrap();
        // Native boundary: ‖λ‖ = 4; normalized by unit 2 ⇒ radius 2.
        assert!(
            (report.metric - 2.0).abs() < 1e-4,
            "metric {}",
            report.metric
        );
    }

    #[test]
    fn joint_name_mentions_all_parts() {
        let a = two_param_analysis();
        assert_eq!(a.perturbation().name, "joint(C, λ)");
        assert_eq!(a.perturbation().dim(), 3);
    }

    #[test]
    #[should_panic(expected = "unit must be positive")]
    fn rejects_bad_unit() {
        JointAnalysis::new().add_parameter("p", VecN::from([1.0]), 0.0);
    }
}
