//! The robustness metric `ρ_μ(Φ, πⱼ)` (Eq. 2) and analysis driver.
//!
//! "The metric definition can be extended easily for all `φᵢ ∈ Φ`. It is
//! simply the minimum of all robustness radii." An analysis owns the
//! perturbation parameter, the feature/impact pairs (steps 1–3 of FePIA)
//! and runs step 4 to produce a [`RobustnessReport`].

use crate::error::CoreError;
use crate::feature::FeatureSpec;
use crate::impact::Impact;
use crate::perturbation::Perturbation;
use crate::plan::AnalysisPlan;
use crate::radius::{RadiusOptions, RadiusResult};
use crate::verdict::{FailReason, PlanVerdict, ResiliencePolicy, VerdictKind};
use std::sync::{Arc, Mutex};

/// One feature's radius within a full analysis.
#[derive(Clone, Debug)]
pub struct FeatureRadius {
    /// The feature's name (from its [`FeatureSpec`]).
    pub name: String,
    /// The radius computation result.
    pub result: RadiusResult,
}

/// The outcome of a FePIA analysis: all radii and their minimum.
#[derive(Clone, Debug)]
pub struct RobustnessReport {
    /// Per-feature robustness radii `r_μ(φᵢ, πⱼ)`, in insertion order.
    pub radii: Vec<FeatureRadius>,
    /// The robustness metric `ρ_μ(Φ, πⱼ) = min_i r_μ(φᵢ, πⱼ)`.
    pub metric: f64,
    /// Index (into `radii`) of the binding feature attaining the minimum.
    pub binding: usize,
    /// For a [`Domain::Discrete`] perturbation the paper floors the metric
    /// ("ρ should not have fractional values"); `None` for continuous
    /// parameters.
    pub floored_metric: Option<f64>,
    /// Classification of the evaluation. The legacy exact path always emits
    /// [`VerdictKind::Exact`] (it aborts on failure instead of degrading);
    /// fault-tolerant consumers read it to distinguish certified-degraded
    /// reports (see [`crate::verdict`]).
    pub kind: VerdictKind,
}

impl RobustnessReport {
    /// The binding feature's entry.
    pub fn binding_feature(&self) -> &FeatureRadius {
        &self.radii[self.binding]
    }

    /// The metric to quote: floored for discrete parameters, raw otherwise.
    pub fn effective_metric(&self) -> f64 {
        self.floored_metric.unwrap_or(self.metric)
    }

    /// True if any feature already violates its tolerance at `π_orig`.
    pub fn any_violated(&self) -> bool {
        self.radii.iter().any(|r| r.result.violated)
    }

    /// Total impact-function evaluations spent across all radii.
    pub fn total_f_evals(&self) -> u64 {
        self.radii.iter().map(|r| r.result.f_evals).sum()
    }

    /// Total numeric-solver refinement iterations across all radii.
    pub fn total_iterations(&self) -> usize {
        self.radii.iter().map(|r| r.result.iterations).sum()
    }
}

/// A FePIA analysis under construction: one perturbation parameter plus the
/// feature set `Φ` with impact functions.
///
/// Since the introduction of the compiled-plan layer ([`crate::plan`]) the
/// impacts are held behind `Arc<dyn Impact>` so a compiled
/// [`AnalysisPlan`] can share them without cloning, and the most recent
/// compilation is cached per option set (invalidated whenever a feature is
/// added).
pub struct FepiaAnalysis {
    perturbation: Perturbation,
    features: Vec<(FeatureSpec, Arc<dyn Impact>)>,
    plan_cache: Mutex<Option<(RadiusOptions, Arc<AnalysisPlan>)>>,
}

impl FepiaAnalysis {
    /// Starts an analysis against `perturbation` (FePIA step 2).
    pub fn new(perturbation: Perturbation) -> Self {
        FepiaAnalysis {
            perturbation,
            features: Vec::new(),
            plan_cache: Mutex::new(None),
        }
    }

    /// Adds a feature `φᵢ` with its impact function `f_ij` (steps 1 and 3).
    pub fn add_feature(&mut self, spec: FeatureSpec, impact: impl Impact + 'static) -> &mut Self {
        self.features.push((spec, Arc::new(impact)));
        self.invalidate_cache();
        self
    }

    /// Adds a boxed impact (for heterogeneous collections built elsewhere).
    pub fn add_feature_boxed(&mut self, spec: FeatureSpec, impact: Box<dyn Impact>) -> &mut Self {
        self.features.push((spec, Arc::from(impact)));
        self.invalidate_cache();
        self
    }

    fn invalidate_cache(&mut self) {
        *self.plan_cache.get_mut().expect("plan cache poisoned") = None;
    }

    /// Number of features added so far.
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// The perturbation parameter under analysis.
    pub fn perturbation(&self) -> &Perturbation {
        &self.perturbation
    }

    /// Compiles the feature set into an [`AnalysisPlan`] (see
    /// [`crate::plan`]): affine features are packed into one contiguous
    /// block with pre-computed dual norms, numeric features get a reusable
    /// solver workspace. The result is cached — repeated `compile` (and
    /// [`run`](Self::run)) calls with equal options return the same
    /// `Arc<AnalysisPlan>` without recompiling, counted under
    /// `plan.cache.hits` / `plan.cache.misses` when `fepia-obs` is enabled.
    pub fn compile(&self, opts: &RadiusOptions) -> Result<Arc<AnalysisPlan>, CoreError> {
        {
            let cache = self.plan_cache.lock().expect("plan cache poisoned");
            if let Some((cached_opts, plan)) = cache.as_ref() {
                if cached_opts == opts {
                    if fepia_obs::enabled() {
                        fepia_obs::global().counter("plan.cache.hits").inc();
                    }
                    return Ok(Arc::clone(plan));
                }
            }
        }
        if fepia_obs::enabled() {
            fepia_obs::global().counter("plan.cache.misses").inc();
        }
        let plan = Arc::new(AnalysisPlan::compile(
            &self.perturbation,
            &self.features,
            opts,
        )?);
        *self.plan_cache.lock().expect("plan cache poisoned") =
            Some((opts.clone(), Arc::clone(&plan)));
        Ok(plan)
    }

    /// Runs step 4: computes every radius and the metric (Eq. 2).
    ///
    /// Since the compiled-plan refactor this is a thin wrapper over
    /// [`compile`](Self::compile) + [`AnalysisPlan::evaluate_report`]: the
    /// numbers are bitwise identical to the historical per-feature loop
    /// (the plan shares its code and float ordering), and repeated runs
    /// reuse the cached plan.
    ///
    /// When `fepia-obs` is enabled, each run increments `core.analysis.runs`
    /// and emits one `analysis.run` event naming the binding feature.
    pub fn run(&self, opts: &RadiusOptions) -> Result<RobustnessReport, CoreError> {
        let _span = fepia_obs::span!("core.analysis.run");
        let plan = self.compile(opts)?;
        let report = plan.evaluate_report(&self.perturbation.origin)?;
        if fepia_obs::enabled() {
            fepia_obs::global().counter("core.analysis.runs").inc();
            fepia_obs::Event::new("analysis.run")
                .field("features", report.radii.len())
                .field("metric", report.metric)
                .field("binding", report.binding_feature().name.as_str())
                .field("violated", report.any_violated())
                .field("f_evals", report.total_f_evals())
                .emit();
        }
        Ok(report)
    }

    /// Fault-tolerant analogue of [`run`](Self::run): never fails, never
    /// panics through — every outcome (including a compile error) becomes a
    /// typed [`PlanVerdict`]. The workhorse of degraded sweeps; see
    /// [`AnalysisPlan::evaluate_verdict`] for the per-origin semantics.
    pub fn run_verdict(&self, opts: &RadiusOptions, policy: &ResiliencePolicy) -> PlanVerdict {
        let _span = fepia_obs::span!("core.analysis.run_verdict");
        match self.compile(opts) {
            Ok(plan) => plan.evaluate_verdict(&self.perturbation.origin, policy),
            Err(e) => PlanVerdict::all_failed(
                self.features.len().max(1),
                FailReason::Solver(e.to_string()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Tolerance;
    use crate::impact::{LinearImpact, SumSelected};
    use fepia_optim::VecN;

    /// The paper's §3.1 system in miniature: 3 apps on 2 machines,
    /// C_orig = (10, 20, 30), machine 0 ← {0, 1}, machine 1 ← {2}.
    /// M_orig = max(30, 30) = 30; τ = 1.2 ⇒ bound 36.
    /// r(F_0) = (36 − 30)/√2, r(F_1) = (36 − 30)/√1 ⇒ ρ = 6/√2.
    fn miniature_analysis() -> FepiaAnalysis {
        let pert = Perturbation::continuous("C", VecN::from([10.0, 20.0, 30.0]));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("F_0", Tolerance::upper(36.0)),
            SumSelected::new(vec![0, 1], 3),
        );
        a.add_feature(
            FeatureSpec::new("F_1", Tolerance::upper(36.0)),
            SumSelected::new(vec![2], 3),
        );
        a
    }

    #[test]
    fn metric_is_min_of_radii() {
        let report = miniature_analysis().run(&RadiusOptions::default()).unwrap();
        assert_eq!(report.radii.len(), 2);
        let r0 = 6.0 / 2f64.sqrt();
        let r1 = 6.0;
        assert!((report.radii[0].result.radius - r0).abs() < 1e-12);
        assert!((report.radii[1].result.radius - r1).abs() < 1e-12);
        assert!((report.metric - r0).abs() < 1e-12);
        assert_eq!(report.binding, 0);
        assert_eq!(report.binding_feature().name, "F_0");
        assert_eq!(report.floored_metric, None);
        assert!(!report.any_violated());
    }

    #[test]
    fn empty_feature_set_rejected() {
        let a = FepiaAnalysis::new(Perturbation::continuous("p", VecN::zeros(1)));
        assert_eq!(
            a.run(&RadiusOptions::default()).unwrap_err(),
            CoreError::EmptyFeatureSet
        );
    }

    #[test]
    fn discrete_domain_floors_metric() {
        let pert = Perturbation::discrete("λ", VecN::from([0.0]));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("T", Tolerance::upper(7.5)),
            LinearImpact::homogeneous(VecN::from([2.0])),
        );
        let report = a.run(&RadiusOptions::default()).unwrap();
        assert!((report.metric - 3.75).abs() < 1e-12);
        assert_eq!(report.floored_metric, Some(3.0));
        assert_eq!(report.effective_metric(), 3.0);
    }

    #[test]
    fn discrete_infinite_metric_not_floored_to_nan() {
        let pert = Perturbation::discrete("λ", VecN::from([0.0]));
        let mut a = FepiaAnalysis::new(pert);
        // Feature unaffected by λ: infinite radius.
        a.add_feature(
            FeatureSpec::new("T", Tolerance::upper(7.5)),
            LinearImpact::new(VecN::zeros(1), 1.0),
        );
        let report = a.run(&RadiusOptions::default()).unwrap();
        assert_eq!(report.effective_metric(), f64::INFINITY);
    }

    #[test]
    fn violated_feature_drives_metric_to_zero() {
        let pert = Perturbation::continuous("C", VecN::from([100.0]));
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("ok", Tolerance::upper(1_000.0)),
            LinearImpact::homogeneous(VecN::from([1.0])),
        );
        a.add_feature(
            FeatureSpec::new("violated", Tolerance::upper(50.0)),
            LinearImpact::homogeneous(VecN::from([1.0])),
        );
        let report = a.run(&RadiusOptions::default()).unwrap();
        assert_eq!(report.metric, 0.0);
        assert!(report.any_violated());
        assert_eq!(report.binding_feature().name, "violated");
    }

    #[test]
    fn builder_accessors() {
        let a = miniature_analysis();
        assert_eq!(a.feature_count(), 2);
        assert_eq!(a.perturbation().name, "C");
    }
}
