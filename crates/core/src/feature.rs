//! FePIA step 1 — performance features and tolerable variation.
//!
//! "For each element `φᵢ ∈ Φ`, quantitatively describe the tolerable
//! variation in `φᵢ`. Let `⟨βᵢᵐⁱⁿ, βᵢᵐᵃˣ⟩` be a tuple that gives the bounds
//! of the tolerable variation in the system feature `φᵢ`." (§2, step 1)

use crate::error::CoreError;

/// The tolerable-variation bounds `⟨βᵢᵐⁱⁿ, βᵢᵐᵃˣ⟩` of a performance feature.
///
/// Either bound may be infinite when only one side is constrained; the
/// paper's makespan example uses `⟨0, 1.3 × predicted makespan⟩`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// `βᵢᵐⁱⁿ` — smallest tolerable feature value.
    pub min: f64,
    /// `βᵢᵐᵃˣ` — largest tolerable feature value.
    pub max: f64,
}

impl Tolerance {
    /// Creates a two-sided tolerance interval.
    ///
    /// Returns [`CoreError::InvalidTolerance`] when `min > max` or either
    /// bound is NaN.
    pub fn new(min: f64, max: f64) -> Result<Self, CoreError> {
        if min.is_nan() || max.is_nan() || min > max {
            return Err(CoreError::InvalidTolerance { min, max });
        }
        Ok(Tolerance { min, max })
    }

    /// A tolerance bounded only from above (`βᵐⁱⁿ = −∞`): the common case
    /// for completion times and latencies where only growth hurts.
    ///
    /// # Panics
    /// Panics when `max` is NaN; use [`Tolerance::try_upper`] for a fallible
    /// variant.
    pub fn upper(max: f64) -> Self {
        Self::try_upper(max).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A tolerance bounded only from below (`βᵐᵃˣ = +∞`), e.g. a minimum
    /// throughput.
    ///
    /// # Panics
    /// Panics when `min` is NaN; use [`Tolerance::try_lower`] for a fallible
    /// variant.
    pub fn lower(min: f64) -> Self {
        Self::try_lower(min).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Tolerance::upper`]: rejects a NaN bound with
    /// [`CoreError::InvalidTolerance`].
    pub fn try_upper(max: f64) -> Result<Self, CoreError> {
        Self::new(f64::NEG_INFINITY, max)
    }

    /// Fallible [`Tolerance::lower`]: rejects a NaN bound with
    /// [`CoreError::InvalidTolerance`].
    pub fn try_lower(min: f64) -> Result<Self, CoreError> {
        Self::new(min, f64::INFINITY)
    }

    /// Whether the feature value `v` lies within the tolerable variation.
    pub fn contains(&self, v: f64) -> bool {
        self.min <= v && v <= self.max
    }

    /// Whether an upper boundary relationship `f = βᵐᵃˣ` exists (finite max).
    pub fn has_upper(&self) -> bool {
        self.max.is_finite()
    }

    /// Whether a lower boundary relationship `f = βᵐⁱⁿ` exists (finite min).
    pub fn has_lower(&self) -> bool {
        self.min.is_finite()
    }
}

/// A named performance feature `φᵢ` with its tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureSpec {
    /// Human-readable name (e.g. `"finish-time m_2"` or `"latency P_7"`);
    /// appears in robustness reports to identify the binding feature.
    pub name: String,
    /// The tolerable-variation bounds.
    pub tolerance: Tolerance,
}

impl FeatureSpec {
    /// Creates a feature spec.
    pub fn new(name: impl Into<String>, tolerance: Tolerance) -> Self {
        FeatureSpec {
            name: name.into(),
            tolerance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_interval() {
        let t = Tolerance::new(0.0, 2.0).unwrap();
        assert!(t.contains(0.0) && t.contains(2.0) && t.contains(1.0));
        assert!(!t.contains(-0.1) && !t.contains(2.1));
        assert!(t.has_upper() && t.has_lower());
    }

    #[test]
    fn rejects_inverted_interval() {
        assert_eq!(
            Tolerance::new(3.0, 1.0),
            Err(CoreError::InvalidTolerance { min: 3.0, max: 1.0 })
        );
    }

    #[test]
    fn rejects_nan() {
        assert!(Tolerance::new(f64::NAN, 1.0).is_err());
        assert!(Tolerance::new(0.0, f64::NAN).is_err());
        assert!(Tolerance::try_upper(f64::NAN).is_err());
        assert!(Tolerance::try_lower(f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid tolerance")]
    fn one_sided_constructor_rejects_nan() {
        Tolerance::upper(f64::NAN);
    }

    #[test]
    fn one_sided_bounds() {
        let up = Tolerance::upper(10.0);
        assert!(up.contains(-1e300) && up.contains(10.0) && !up.contains(10.5));
        assert!(up.has_upper() && !up.has_lower());

        let lo = Tolerance::lower(1.0);
        assert!(lo.contains(1e300) && !lo.contains(0.5));
        assert!(!lo.has_upper() && lo.has_lower());
    }

    #[test]
    fn makespan_example_tuple() {
        // The paper's step-1 example: ⟨0, 1.3 × predicted makespan⟩.
        let predicted = 100.0;
        let t = Tolerance::new(0.0, 1.3 * predicted).unwrap();
        assert!(t.contains(129.9));
        assert!(!t.contains(130.1));
    }

    #[test]
    fn feature_spec_name() {
        let f = FeatureSpec::new("finish-time m_2", Tolerance::upper(5.0));
        assert_eq!(f.name, "finish-time m_2");
    }
}
