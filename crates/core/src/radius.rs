//! FePIA step 4 — the robustness radius (Eq. 1).
//!
//! `r_μ(φᵢ, πⱼ) = min { ‖π − π_orig‖₂ : f_ij(π) = βᵢᵐᵃˣ ∨ f_ij(π) = βᵢᵐⁱⁿ }`
//!
//! For affine impacts the radius is computed **exactly** with the
//! point-to-hyperplane distance (the closed form behind the paper's Eq. 6);
//! non-ℓ₂ norms use the dual-norm distance `|a·π_orig + c − β| / ‖a‖_*`.
//! Non-affine impacts are solved numerically with
//! [`fepia_optim::min_norm_to_level_set`] (ℓ₂ only, convexity assumed as in
//! the paper's §3.2).

use crate::error::CoreError;
use crate::feature::FeatureSpec;
use crate::impact::Impact;
use crate::perturbation::Perturbation;
use fepia_optim::{
    min_norm_to_level_set_with, Hyperplane, LevelSetProblem, Norm, OptimError, SolverOptions,
    SolverWorkspace, VecN,
};

/// Which boundary relationship produced the radius.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// `f_ij(π) = βᵢᵐⁱⁿ`.
    Min,
    /// `f_ij(π) = βᵢᵐᵃˣ`.
    Max,
}

/// How the radius was computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RadiusMethod {
    /// Exact point-to-hyperplane distance (affine impact).
    Analytic,
    /// Iterative min-norm level-set solver.
    Numeric,
    /// No finite boundary was reachable; the radius is `+∞`.
    Unbounded,
}

/// Options controlling the radius computation.
///
/// `PartialEq` so compiled plans can be cached per option set.
#[derive(Clone, Debug, PartialEq)]
pub struct RadiusOptions {
    /// The norm measuring perturbation size. The paper uses ℓ₂; other norms
    /// are supported for affine impacts only.
    pub norm: Norm,
    /// Numeric solver options (non-affine impacts).
    pub solver: SolverOptions,
}

impl Default for RadiusOptions {
    fn default() -> Self {
        RadiusOptions {
            norm: Norm::L2,
            solver: SolverOptions::default(),
        }
    }
}

/// The robustness radius of one feature against one perturbation parameter.
#[derive(Clone, Debug)]
pub struct RadiusResult {
    /// `r_μ(φᵢ, πⱼ)`; `+∞` when no boundary is reachable, `0` when the
    /// feature already violates its tolerance at `π_orig`.
    pub radius: f64,
    /// The closest boundary point `πⱼ*(φᵢ)` (paper Fig. 1), when the solver
    /// produces one (ℓ₂ norm and a reachable boundary).
    pub boundary_point: Option<VecN>,
    /// Which boundary binds, when one does.
    pub bound: Option<Bound>,
    /// True when `f(π_orig)` is already outside `⟨βᵐⁱⁿ, βᵐᵃˣ⟩`.
    pub violated: bool,
    /// How the radius was obtained.
    pub method: RadiusMethod,
    /// Refinement iterations spent by the numeric solver (0 on the analytic
    /// and unbounded paths).
    pub iterations: usize,
    /// Impact-function evaluations consumed: 1 for the feasibility check at
    /// `π_orig`, plus everything the numeric solver spends.
    pub f_evals: u64,
}

/// The dual norm `‖a‖_*` used in the point-to-hyperplane distance
/// `|residual| / ‖a‖_*` under the primal norm.
pub(crate) fn dual_norm(norm: &Norm, a: &VecN) -> f64 {
    match norm {
        Norm::L1 => a.norm_linf(),
        Norm::L2 => a.norm_l2(),
        Norm::LInf => a.norm_l1(),
        Norm::WeightedL2(w) => {
            assert_eq!(w.len(), a.dim(), "weight dimension mismatch");
            a.as_slice()
                .iter()
                .zip(w.iter())
                .map(|(ai, wi)| {
                    assert!(*wi > 0.0, "weighted norm requires positive weights");
                    ai * ai / wi
                })
                .sum::<f64>()
                .sqrt()
        }
    }
}

/// Distance (under `opts.norm`) from `π_orig` to one affine boundary
/// `a·π + c = β`, plus the ℓ₂ closest point when applicable.
pub(crate) fn affine_bound_radius(
    a: &VecN,
    c: f64,
    beta: f64,
    origin: &VecN,
    norm: &Norm,
) -> (f64, Option<VecN>) {
    let an = dual_norm(norm, a);
    if an <= f64::EPSILON {
        // The feature does not depend on the perturbation: unreachable.
        return (f64::INFINITY, None);
    }
    let residual = a.dot(origin) + c - beta;
    let radius = residual.abs() / an;
    let point = if matches!(norm, Norm::L2) {
        // Only the Euclidean projection is the true closest point.
        Hyperplane::new(a.clone(), beta - c)
            .ok()
            .map(|h| h.project(origin))
    } else {
        None
    };
    (radius, point)
}

/// Numeric radius toward one boundary: `min ‖π − π_orig‖₂ s.t. f(π) = β`,
/// where `direction = +1` solves toward an upper bound (`f(orig) < β`) and
/// `direction = −1` toward a lower bound (`f(orig) > β`, solved on `−f`).
pub(crate) fn numeric_bound_radius(
    impact: &dyn Impact,
    beta: f64,
    origin: &VecN,
    direction: f64,
    solver: &SolverOptions,
    ws: &mut SolverWorkspace,
) -> Result<(f64, Option<VecN>, usize, u64), CoreError> {
    let f = |pi: &VecN| direction * impact.eval(pi);
    let has_grad = impact.gradient(origin).is_some();
    let g = |pi: &VecN| {
        impact
            .gradient(pi)
            .map(|v| v.scaled(direction))
            .expect("gradient availability checked before solving")
    };
    let problem = LevelSetProblem {
        f: &f,
        grad: if has_grad { Some(&g) } else { None },
        origin,
        level: direction * beta,
    };
    match min_norm_to_level_set_with(&problem, solver, ws) {
        Ok(sol) => Ok((sol.radius, Some(sol.point), sol.iterations, sol.f_evals)),
        Err(OptimError::Unreachable) => Ok((f64::INFINITY, None, 0, 0)),
        Err(e) => Err(CoreError::Optim(e)),
    }
}

/// Computes the robustness radius `r_μ(φᵢ, πⱼ)` of `feature` (with impact
/// function `impact`) against `perturbation` (Eq. 1 of the paper).
///
/// When `fepia-obs` is enabled, records analytic/numeric/unbounded dispatch
/// counts under `core.radius.*` and emits one `radius.computed` event per
/// call, carrying the feature identity.
pub fn robustness_radius(
    feature: &FeatureSpec,
    impact: &dyn Impact,
    perturbation: &Perturbation,
    opts: &RadiusOptions,
) -> Result<RadiusResult, CoreError> {
    let _span = fepia_obs::span!("core.radius");
    let mut ws = SolverWorkspace::new();
    let result = radius_inner(feature, impact, &perturbation.origin, opts, &mut ws);
    if fepia_obs::enabled() {
        if let Ok(r) = &result {
            record_radius(feature, r);
        } else {
            fepia_obs::global().counter("core.radius.errors").inc();
        }
    }
    result
}

pub(crate) fn record_radius(feature: &FeatureSpec, r: &RadiusResult) {
    let reg = fepia_obs::global();
    let method = match r.method {
        RadiusMethod::Analytic => "analytic",
        RadiusMethod::Numeric => "numeric",
        RadiusMethod::Unbounded => "unbounded",
    };
    reg.counter(&format!("core.radius.dispatch.{method}")).inc();
    if r.violated {
        reg.counter("core.radius.violations").inc();
    }
    fepia_obs::Event::new("radius.computed")
        .field("feature", feature.name.as_str())
        .field("radius", r.radius)
        .field("method", method)
        .field(
            "bound",
            match r.bound {
                Some(Bound::Min) => "min",
                Some(Bound::Max) => "max",
                None => "none",
            },
        )
        .field("violated", r.violated)
        .field("iterations", r.iterations)
        .field("f_evals", r.f_evals)
        .emit();
}

/// The radius computation proper, at an arbitrary origin and with a
/// caller-provided solver workspace (shared with the compiled-plan path in
/// [`crate::plan`], which must stay bitwise identical to this function).
pub(crate) fn radius_inner(
    feature: &FeatureSpec,
    impact: &dyn Impact,
    origin: &VecN,
    opts: &RadiusOptions,
    ws: &mut SolverWorkspace,
) -> Result<RadiusResult, CoreError> {
    if let Some(expected) = impact.expected_dim() {
        if expected != origin.dim() {
            return Err(CoreError::DimensionMismatch {
                perturbation: origin.dim(),
                expected,
            });
        }
    }

    let tol = feature.tolerance;
    let f_orig = impact.eval(origin);
    if !f_orig.is_finite() {
        return Err(CoreError::Optim(OptimError::NonFinite));
    }
    if !tol.contains(f_orig) {
        // The requirement is violated before any perturbation occurs.
        return Ok(RadiusResult {
            radius: 0.0,
            boundary_point: Some(origin.clone()),
            bound: Some(if f_orig > tol.max {
                Bound::Max
            } else {
                Bound::Min
            }),
            violated: true,
            method: RadiusMethod::Analytic,
            iterations: 0,
            f_evals: 1,
        });
    }
    if tol.min == tol.max {
        // Degenerate tolerance ⟨β, β⟩ with f(π_orig) = β: the origin lies on
        // the (only) boundary relationship, so the nearest boundary point is
        // π_orig itself and the radius is exactly 0 — for *any* impact
        // function, including constant ones whose level set is all of Rⁿ.
        // Resolved here so the answer never depends on solver behavior.
        return Ok(RadiusResult {
            radius: 0.0,
            boundary_point: Some(origin.clone()),
            bound: Some(Bound::Max),
            violated: false,
            method: RadiusMethod::Analytic,
            iterations: 0,
            f_evals: 1,
        });
    }

    let affine = impact.as_affine();
    if affine.is_none() && !matches!(opts.norm, Norm::L2) {
        return Err(CoreError::UnsupportedNorm {
            norm: opts.norm.name(),
        });
    }

    let mut best: Option<(f64, Option<VecN>, Bound)> = None;
    let mut consider = |radius: f64, point: Option<VecN>, bound: Bound| {
        if best.as_ref().is_none_or(|(r, _, _)| radius < *r) {
            best = Some((radius, point, bound));
        }
    };

    let is_affine = affine.is_some();
    let mut iterations = 0usize;
    let mut f_evals = 1u64; // the feasibility check above
    match affine {
        Some((a, c)) => {
            if tol.has_upper() {
                let (r, p) = affine_bound_radius(&a, c, tol.max, origin, &opts.norm);
                consider(r, p, Bound::Max);
            }
            if tol.has_lower() {
                let (r, p) = affine_bound_radius(&a, c, tol.min, origin, &opts.norm);
                consider(r, p, Bound::Min);
            }
        }
        None => {
            if tol.has_upper() {
                let (r, p, it, fe) =
                    numeric_bound_radius(impact, tol.max, origin, 1.0, &opts.solver, ws)?;
                iterations += it;
                f_evals += fe;
                consider(r, p, Bound::Max);
            }
            if tol.has_lower() {
                let (r, p, it, fe) =
                    numeric_bound_radius(impact, tol.min, origin, -1.0, &opts.solver, ws)?;
                iterations += it;
                f_evals += fe;
                consider(r, p, Bound::Min);
            }
        }
    }

    let method = if is_affine {
        RadiusMethod::Analytic
    } else {
        RadiusMethod::Numeric
    };
    Ok(match best {
        Some((radius, point, bound)) if radius.is_finite() => RadiusResult {
            radius,
            boundary_point: point,
            bound: Some(bound),
            violated: false,
            method,
            iterations,
            f_evals,
        },
        // No finite boundary (both tolerances infinite, the impact is
        // constant in π, or every boundary is unreachable).
        _ => RadiusResult {
            radius: f64::INFINITY,
            boundary_point: None,
            bound: None,
            violated: false,
            method: RadiusMethod::Unbounded,
            iterations,
            f_evals,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Tolerance;
    use crate::impact::{FnImpact, LinearImpact, SumSelected};

    fn feat(min: f64, max: f64) -> FeatureSpec {
        FeatureSpec::new("f", Tolerance::new(min, max).unwrap())
    }

    #[test]
    fn eq6_exact_form() {
        // Machine with apps {0,1,2} of a 4-app system; estimated times 10
        // each; predicted makespan M_orig = 40 (some other machine), τ = 1.2.
        // Eq. 6: r = (τ·M − F_j(C_orig)) / √3 = (48 − 30)/√3.
        let impact = SumSelected::new(vec![0, 1, 2], 4);
        let pert = Perturbation::continuous("C", VecN::filled(4, 10.0));
        let f = FeatureSpec::new("F_1", Tolerance::upper(48.0));
        let r = robustness_radius(&f, &impact, &pert, &RadiusOptions::default()).unwrap();
        assert!((r.radius - 18.0 / 3f64.sqrt()).abs() < 1e-12);
        assert_eq!(r.method, RadiusMethod::Analytic);
        assert_eq!(r.bound, Some(Bound::Max));
        assert!(!r.violated);
        // Paper's observation (2): at C*, the errors of the apps on the
        // binding machine are all equal; others unchanged.
        let p = r.boundary_point.unwrap();
        let delta = 18.0 / 3.0;
        assert!((p[0] - (10.0 + delta)).abs() < 1e-9);
        assert!((p[1] - (10.0 + delta)).abs() < 1e-9);
        assert!((p[2] - (10.0 + delta)).abs() < 1e-9);
        assert!((p[3] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_binds_when_closer() {
        // f(π) = π₀, tolerance [8, 100], origin 10: lower boundary at
        // distance 2, upper at 90.
        let impact = LinearImpact::homogeneous(VecN::from([1.0]));
        let pert = Perturbation::continuous("p", VecN::from([10.0]));
        let r = robustness_radius(&feat(8.0, 100.0), &impact, &pert, &RadiusOptions::default())
            .unwrap();
        assert!((r.radius - 2.0).abs() < 1e-12);
        assert_eq!(r.bound, Some(Bound::Min));
    }

    #[test]
    fn violation_gives_zero_radius() {
        let impact = LinearImpact::homogeneous(VecN::from([1.0]));
        let pert = Perturbation::continuous("p", VecN::from([10.0]));
        let r =
            robustness_radius(&feat(0.0, 5.0), &impact, &pert, &RadiusOptions::default()).unwrap();
        assert_eq!(r.radius, 0.0);
        assert!(r.violated);
        assert_eq!(r.bound, Some(Bound::Max));
    }

    #[test]
    fn unaffected_feature_has_infinite_radius() {
        // Zero coefficients: the feature never moves.
        let impact = LinearImpact::new(VecN::zeros(3), 2.0);
        let pert = Perturbation::continuous("p", VecN::zeros(3));
        let r =
            robustness_radius(&feat(0.0, 5.0), &impact, &pert, &RadiusOptions::default()).unwrap();
        assert_eq!(r.radius, f64::INFINITY);
        assert_eq!(r.method, RadiusMethod::Unbounded);
    }

    #[test]
    fn unbounded_tolerance_is_infinite() {
        let impact = LinearImpact::homogeneous(VecN::from([1.0]));
        let pert = Perturbation::continuous("p", VecN::from([0.0]));
        let f = FeatureSpec::new(
            "f",
            Tolerance::new(f64::NEG_INFINITY, f64::INFINITY).unwrap(),
        );
        let r = robustness_radius(&f, &impact, &pert, &RadiusOptions::default()).unwrap();
        assert_eq!(r.radius, f64::INFINITY);
    }

    #[test]
    fn numeric_matches_analytic_on_affine_blackbox() {
        // Same affine function, once as LinearImpact (analytic) and once as
        // a black-box FnImpact (numeric).
        let coeffs = VecN::from([2.0, 3.0, 1.0]);
        let lin = LinearImpact::new(coeffs.clone(), 1.0);
        let blackbox = FnImpact::new(move |v: &VecN| coeffs.dot(v) + 1.0).with_dim(3);
        let pert = Perturbation::continuous("p", VecN::from([1.0, 1.0, 1.0]));
        let f = FeatureSpec::new("f", Tolerance::upper(20.0));
        let ra = robustness_radius(&f, &lin, &pert, &RadiusOptions::default()).unwrap();
        let rn = robustness_radius(&f, &blackbox, &pert, &RadiusOptions::default()).unwrap();
        assert_eq!(ra.method, RadiusMethod::Analytic);
        assert_eq!(rn.method, RadiusMethod::Numeric);
        assert!(
            (ra.radius - rn.radius).abs() < 1e-6,
            "analytic {} vs numeric {}",
            ra.radius,
            rn.radius
        );
    }

    #[test]
    fn numeric_convex_boundary() {
        // f = π₀² + π₁², bound 25 from origin (0,0): radius 5.
        let impact = FnImpact::new(|v: &VecN| v.dot(v)).with_dim(2);
        let pert = Perturbation::continuous("p", VecN::zeros(2));
        let f = FeatureSpec::new("f", Tolerance::upper(25.0));
        let r = robustness_radius(&f, &impact, &pert, &RadiusOptions::default()).unwrap();
        assert!((r.radius - 5.0).abs() < 1e-5, "radius {}", r.radius);
        assert_eq!(r.method, RadiusMethod::Numeric);
    }

    #[test]
    fn dual_norm_radii_for_linear() {
        // f = π₀ + π₁ ≤ 4 from origin: distances are 4/‖(1,1)‖_*:
        // l2 → 4/√2, l1 → 4/‖·‖∞ = 4, l∞ → 4/‖·‖₁ = 2.
        let impact = LinearImpact::homogeneous(VecN::from([1.0, 1.0]));
        let pert = Perturbation::continuous("p", VecN::zeros(2));
        let f = FeatureSpec::new("f", Tolerance::upper(4.0));
        let radius_with = |norm: Norm| {
            robustness_radius(
                &f,
                &impact,
                &pert,
                &RadiusOptions {
                    norm,
                    solver: SolverOptions::default(),
                },
            )
            .unwrap()
            .radius
        };
        assert!((radius_with(Norm::L2) - 4.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((radius_with(Norm::L1) - 4.0).abs() < 1e-12);
        assert!((radius_with(Norm::LInf) - 2.0).abs() < 1e-12);
        // Weighted l2 with weights (4, 4): primal norm 2‖x‖₂, so radius
        // doubles the scaled plane distance: |4| / sqrt(1/4 + 1/4) = 4√2.
        assert!((radius_with(Norm::WeightedL2(vec![4.0, 4.0])) - 4.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn non_l2_norm_rejected_for_nonlinear() {
        let impact = FnImpact::new(|v: &VecN| v.dot(v));
        let pert = Perturbation::continuous("p", VecN::zeros(2));
        let f = FeatureSpec::new("f", Tolerance::upper(1.0));
        let err = robustness_radius(
            &f,
            &impact,
            &pert,
            &RadiusOptions {
                norm: Norm::L1,
                solver: SolverOptions::default(),
            },
        )
        .unwrap_err();
        assert_eq!(err, CoreError::UnsupportedNorm { norm: "l1" });
    }

    #[test]
    fn dimension_mismatch_detected() {
        let impact = LinearImpact::homogeneous(VecN::from([1.0, 1.0]));
        let pert = Perturbation::continuous("p", VecN::zeros(3));
        let err = robustness_radius(&feat(0.0, 1.0), &impact, &pert, &RadiusOptions::default())
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::DimensionMismatch {
                perturbation: 3,
                expected: 2
            }
        );
    }

    #[test]
    fn degenerate_tolerance_on_boundary_is_zero() {
        // β^min = β^max = f(π_orig): the origin sits on the only admissible
        // value, so the radius is 0 with a well-defined bound — never a
        // solver-dependent answer. Checked for affine, black-box numeric and
        // constant impacts.
        let pert = Perturbation::continuous("p", VecN::from([2.0, 3.0]));
        let affine = LinearImpact::new(VecN::from([1.0, 1.0]), 0.0);
        let blackbox = FnImpact::new(|v: &VecN| v[0] + v[1]).with_dim(2);
        let constant = LinearImpact::new(VecN::zeros(2), 5.0);
        for (impact, level) in [
            (&affine as &dyn Impact, 5.0),
            (&blackbox as &dyn Impact, 5.0),
            (&constant as &dyn Impact, 5.0),
        ] {
            let f = feat(level, level);
            let r = robustness_radius(&f, impact, &pert, &RadiusOptions::default()).unwrap();
            assert_eq!(r.radius, 0.0);
            assert_eq!(r.bound, Some(Bound::Max));
            assert!(!r.violated);
            assert_eq!(r.method, RadiusMethod::Analytic);
            assert_eq!(r.boundary_point.as_ref().unwrap(), &pert.origin);
            assert_eq!(r.f_evals, 1);
        }
    }

    #[test]
    fn degenerate_tolerance_off_boundary_is_violated() {
        // β^min = β^max ≠ f(π_orig): already outside the tolerable region.
        let pert = Perturbation::continuous("p", VecN::from([2.0, 3.0]));
        let impact = LinearImpact::new(VecN::from([1.0, 1.0]), 0.0); // f = 5
        let above =
            robustness_radius(&feat(4.0, 4.0), &impact, &pert, &RadiusOptions::default()).unwrap();
        assert_eq!(above.radius, 0.0);
        assert!(above.violated);
        assert_eq!(above.bound, Some(Bound::Max));
        let below =
            robustness_radius(&feat(6.0, 6.0), &impact, &pert, &RadiusOptions::default()).unwrap();
        assert_eq!(below.radius, 0.0);
        assert!(below.violated);
        assert_eq!(below.bound, Some(Bound::Min));
    }

    #[test]
    fn radius_monotone_in_tolerance() {
        // Loosening the makespan tolerance τ can only increase the radius.
        let impact = SumSelected::new(vec![0, 1], 3);
        let pert = Perturbation::continuous("C", VecN::filled(3, 10.0));
        let mut last = 0.0;
        for tau_m in [25.0, 30.0, 40.0, 80.0] {
            let f = FeatureSpec::new("F", Tolerance::upper(tau_m));
            let r = robustness_radius(&f, &impact, &pert, &RadiusOptions::default())
                .unwrap()
                .radius;
            assert!(r >= last, "radius not monotone: {r} < {last}");
            last = r;
        }
    }
}
