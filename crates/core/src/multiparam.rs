//! Multiple perturbation parameters.
//!
//! The paper's step 3 "assumes that each `πⱼ ∈ Π` affects a given `φᵢ`
//! independently. The case where multiple perturbation parameters can affect
//! a given `φᵢ` simultaneously is discussed in \[1\]" (Ali's thesis). This
//! module implements the independent case exactly as the paper develops it:
//! a separate robustness metric per parameter, plus convenience accessors
//! for the most fragile parameter.

use crate::analysis::{FepiaAnalysis, RobustnessReport};
use crate::error::CoreError;
use crate::radius::RadiusOptions;

/// A set of per-parameter analyses `{ ρ_μ(Φ, πⱼ) : πⱼ ∈ Π }`.
#[derive(Default)]
pub struct MultiParamAnalysis {
    analyses: Vec<FepiaAnalysis>,
}

/// Reports for every parameter in `Π`, in insertion order.
#[derive(Clone, Debug)]
pub struct MultiParamReport {
    /// `(parameter name, report)` pairs.
    pub reports: Vec<(String, RobustnessReport)>,
}

impl MultiParamReport {
    /// The parameter with the smallest robustness metric — the direction in
    /// which the system is most fragile. `None` if empty.
    ///
    /// Note: metrics for different parameters carry **different units**
    /// (seconds for ETC errors, objects/data-set for loads); this comparison
    /// is meaningful only when callers have normalized them, and is mainly
    /// useful for parameters of the same kind.
    pub fn most_fragile(&self) -> Option<&(String, RobustnessReport)> {
        self.reports.iter().min_by(|a, b| {
            a.1.metric
                .partial_cmp(&b.1.metric)
                .expect("metric is never NaN")
        })
    }
}

impl MultiParamAnalysis {
    /// Creates an empty multi-parameter analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one per-parameter analysis (a perturbation with its own feature
    /// set, built with [`FepiaAnalysis`]).
    pub fn add(&mut self, analysis: FepiaAnalysis) -> &mut Self {
        self.analyses.push(analysis);
        self
    }

    /// Number of perturbation parameters `|Π|`.
    pub fn len(&self) -> usize {
        self.analyses.len()
    }

    /// Whether no parameters have been added.
    pub fn is_empty(&self) -> bool {
        self.analyses.is_empty()
    }

    /// Runs all analyses.
    pub fn run(&self, opts: &RadiusOptions) -> Result<MultiParamReport, CoreError> {
        let mut reports = Vec::with_capacity(self.analyses.len());
        for a in &self.analyses {
            reports.push((a.perturbation().name.clone(), a.run(opts)?));
        }
        Ok(MultiParamReport { reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureSpec, Tolerance};
    use crate::impact::LinearImpact;
    use crate::perturbation::Perturbation;
    use fepia_optim::VecN;

    fn single(name: &str, coeff: f64, bound: f64) -> FepiaAnalysis {
        let mut a = FepiaAnalysis::new(Perturbation::continuous(name, VecN::from([0.0])));
        a.add_feature(
            FeatureSpec::new("f", Tolerance::upper(bound)),
            LinearImpact::homogeneous(VecN::from([coeff])),
        );
        a
    }

    #[test]
    fn per_parameter_reports() {
        let mut m = MultiParamAnalysis::new();
        m.add(single("load", 2.0, 10.0)); // radius 5
        m.add(single("error", 1.0, 3.0)); // radius 3
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        let rep = m.run(&RadiusOptions::default()).unwrap();
        assert_eq!(rep.reports.len(), 2);
        assert_eq!(rep.reports[0].0, "load");
        assert!((rep.reports[0].1.metric - 5.0).abs() < 1e-12);
        assert!((rep.reports[1].1.metric - 3.0).abs() < 1e-12);
        let fragile = rep.most_fragile().unwrap();
        assert_eq!(fragile.0, "error");
    }

    #[test]
    fn empty_multiparam() {
        let m = MultiParamAnalysis::new();
        assert!(m.is_empty());
        let rep = m.run(&RadiusOptions::default()).unwrap();
        assert!(rep.most_fragile().is_none());
    }
}
