//! Robustness degradation curves ρ(τ) over one compiled plan.
//!
//! The paper's metric answers "what is the robustness radius at one
//! tolerance?"; Chen–Zhou–Aravena argue the valuable object is the whole
//! *degradation function* — the radius at every tolerance level. One
//! compiled [`AnalysisPlan`] amortizes across levels: the affine block's
//! Eq. 6 closed form re-evaluates per level for the cost of one residual
//! and one division (the dot product, dual norms and feature layout are
//! level-invariant), and numeric features reuse the same solver
//! workspace level to level.
//!
//! **Bitwise oracle invariant:** a curve point at level τ is *bitwise
//! identical* to an independent single-τ
//! [`AnalysisPlan::evaluate_verdict_budgeted_with`] call on a plan whose
//! feature tolerances were built at τ. [`CurvePlan`] only swaps the
//! tolerance each feature is judged against
//! ([`AnalysisPlan::evaluate_verdict_budgeted_with_tolerances`]); every
//! other float operation — the dot product, the residual, the division
//! by the pre-computed dual norm — is the same code in the same order.
//! `tests/curve_equivalence.rs` pins this end to end (cold, cached, over
//! TCP, and under fault injection).
//!
//! Two grid modes:
//! * **Explicit** — evaluate exactly the levels given, in order.
//! * **Adaptive** — dyadic bisection between two endpoint levels: refine
//!   an interval only while its certified ρ-change exceeds a resolution.
//!   Every adaptive level is *by construction* a member of the dense
//!   depth-`max_depth` dyadic grid (levels are derived from integer grid
//!   indices through one shared formula), so refinement can never invent
//!   a level the dense sweep would not have produced, and an interval it
//!   declines to refine is certified flat to within the resolution.

use crate::feature::Tolerance;
use crate::plan::{AnalysisPlan, EvalBudget, PlanWorkspace};
use crate::verdict::{PlanVerdict, ResiliencePolicy};
use fepia_optim::VecN;
use std::sync::Arc;

/// One evaluated point of a degradation curve.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// The sweep level (the tolerance multiplier τ in the serving layer).
    pub level: f64,
    /// The full per-feature verdict at this level — exact, certified
    /// interval (brownout) or typed failure, exactly as the single-level
    /// path would have classified it.
    pub verdict: PlanVerdict,
}

/// A typed degradation curve: per-point verdicts plus monotonicity
/// metadata computed over the point order.
#[derive(Clone, Debug)]
pub struct CurveVerdict {
    /// Points in evaluation order (ascending level for both grid modes).
    pub points: Vec<CurvePoint>,
    /// Whether no adjacent pair *certifies* a decrease of ρ as the level
    /// grows: for upper-bound tolerances, loosening the tolerance can
    /// only move the constraint boundary away from the origin, so ρ(τ)
    /// is non-decreasing in τ. A pair violates this only if the later
    /// point's certified upper bound falls strictly below the earlier
    /// point's certified lower bound — interval (brownout) points that
    /// merely overlap stay consistent with monotonicity.
    pub monotone: bool,
}

impl CurveVerdict {
    /// Builds the verdict and computes the monotonicity flag.
    pub fn from_points(points: Vec<CurvePoint>) -> CurveVerdict {
        let monotone = points
            .windows(2)
            .all(|w| !certified_decrease(&w[0].verdict, &w[1].verdict));
        CurveVerdict { points, monotone }
    }

    /// The per-point verdicts, in point order (what the wire carries).
    pub fn verdicts(&self) -> Vec<PlanVerdict> {
        self.points.iter().map(|p| p.verdict.clone()).collect()
    }

    /// The levels, in point order.
    pub fn levels(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.level).collect()
    }
}

/// True iff the pair proves ρ dropped from `a` to `b`: `b`'s certified
/// upper bound is strictly below `a`'s certified lower bound. Failed
/// points carry the vacuous `[0, ∞)` and can never certify anything.
fn certified_decrease(a: &PlanVerdict, b: &PlanVerdict) -> bool {
    b.metric_hi < a.metric_lo
}

/// Adaptive-refinement controls for [`CurvePlan::refine_with`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurveRefineOptions {
    /// Dyadic depth bound: the dense reference grid has `2^max_depth + 1`
    /// levels and refinement never subdivides past it.
    pub max_depth: u32,
    /// Stop refining an interval once its certified ρ-change is at most
    /// this (absolute) resolution.
    pub rho_resolution: f64,
}

impl Default for CurveRefineOptions {
    fn default() -> Self {
        CurveRefineOptions {
            max_depth: 6,
            rho_resolution: 1e-3,
        }
    }
}

/// The dense dyadic grid level for index `j` of `n = 2^max_depth` steps
/// between `lo` and `hi`. Adaptive refinement evaluates *only* levels
/// produced by this formula (midpoints are midpoints of integer indices),
/// which is what makes "adaptive ⊆ dense" a bitwise identity rather than
/// an approximation.
pub fn dyadic_level(lo: f64, hi: f64, j: u64, n: u64) -> f64 {
    if j == 0 {
        return lo;
    }
    if j == n {
        return hi;
    }
    lo + (hi - lo) * (j as f64 / n as f64)
}

/// The dense reference grid for an adaptive sweep: all `2^max_depth + 1`
/// dyadic levels, ascending.
pub fn dense_grid(lo: f64, hi: f64, max_depth: u32) -> Vec<f64> {
    let n = 1u64 << max_depth;
    (0..=n).map(|j| dyadic_level(lo, hi, j, n)).collect()
}

/// A degradation-curve engine over one compiled plan.
///
/// Construction is free: the plan is already compiled and shared. All
/// sweep state (solver workspace) is caller-provided so service workers
/// reuse their per-thread scratch across curve requests.
#[derive(Clone, Debug)]
pub struct CurvePlan {
    plan: Arc<AnalysisPlan>,
}

impl CurvePlan {
    /// Wraps a compiled plan for level sweeps.
    pub fn new(plan: Arc<AnalysisPlan>) -> CurvePlan {
        CurvePlan { plan }
    }

    /// The underlying compiled plan.
    pub fn plan(&self) -> &Arc<AnalysisPlan> {
        &self.plan
    }

    /// Evaluates the curve over an explicit level grid, in the order
    /// given. `tolerances_at` maps a level to the per-feature tolerance
    /// vector (insertion order) — in the serving layer this is
    /// `τ ↦ Tolerance::upper(τ · makespan)` per machine feature, computed
    /// with the same arithmetic scenario compilation uses, which is what
    /// makes each point bitwise-equal to an independently compiled
    /// single-τ evaluation.
    pub fn sweep_with(
        &self,
        origin: &VecN,
        levels: &[f64],
        tolerances_at: &dyn Fn(f64) -> Vec<Tolerance>,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> CurveVerdict {
        let _span = fepia_obs::span!("core.curve.sweep");
        let points = levels
            .iter()
            .map(|&level| self.point(origin, level, tolerances_at, ws, policy, budget))
            .collect();
        let out = CurveVerdict::from_points(points);
        if fepia_obs::enabled() {
            fepia_obs::global()
                .counter("curve.points")
                .add(out.points.len() as u64);
        }
        out
    }

    /// Adaptive dyadic refinement between levels `lo` and `hi`: evaluate
    /// the endpoints, then recursively bisect (on integer grid indices of
    /// the depth-`opts.max_depth` dense grid) every interval whose
    /// certified ρ-change still exceeds `opts.rho_resolution`. Points come
    /// back in ascending level order.
    ///
    /// Skipped intervals are certifiably flat: if `(a, b)` was not
    /// subdivided, then either the dense grid has no interior level
    /// between them, or `|ρ(b) − ρ(a)|` is certified ≤ the resolution —
    /// and by monotonicity of ρ every interior dense level's value is
    /// bracketed by the endpoint values, so no dense level could have
    /// revealed more than the resolution.
    #[allow(clippy::too_many_arguments)] // mirrors sweep_with plus the interval bounds
    pub fn refine_with(
        &self,
        origin: &VecN,
        lo: f64,
        hi: f64,
        opts: CurveRefineOptions,
        tolerances_at: &dyn Fn(f64) -> Vec<Tolerance>,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> CurveVerdict {
        let _span = fepia_obs::span!("core.curve.refine");
        let n = 1u64 << opts.max_depth.min(62);
        let eval = |j: u64, ws: &mut PlanWorkspace| {
            let level = dyadic_level(lo, hi, j, n);
            self.point(origin, level, tolerances_at, ws, policy, budget)
        };
        // In-order recursion via an explicit stack of (j0, p0, j1, p1)
        // intervals: emit p0, then descend left-first so output stays
        // sorted by index (and therefore by level).
        let mut points = Vec::new();
        let p_first = eval(0, ws);
        let p_last = eval(n, ws);
        refine_interval((0, &p_first), (n, &p_last), &opts, &eval, ws, &mut points);
        points.push(p_last);
        let out = CurveVerdict::from_points(points);
        if fepia_obs::enabled() {
            fepia_obs::global()
                .counter("curve.points")
                .add(out.points.len() as u64);
        }
        out
    }

    /// One curve point: a single budgeted verdict with the tolerance
    /// vector for `level` substituted in.
    fn point(
        &self,
        origin: &VecN,
        level: f64,
        tolerances_at: &dyn Fn(f64) -> Vec<Tolerance>,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> CurvePoint {
        let tols = tolerances_at(level);
        let verdict = self
            .plan
            .evaluate_verdict_budgeted_with_tolerances(origin, &tols, ws, policy, budget);
        CurvePoint { level, verdict }
    }
}

/// Emits `p0` and every refined interior point of `(j0, j1)` (but not
/// `p1`, which the caller owns) into `out`, ascending by index.
fn refine_interval(
    (j0, p0): (u64, &CurvePoint),
    (j1, p1): (u64, &CurvePoint),
    opts: &CurveRefineOptions,
    eval: &dyn Fn(u64, &mut PlanWorkspace) -> CurvePoint,
    ws: &mut PlanWorkspace,
    out: &mut Vec<CurvePoint>,
) {
    if j1 - j0 <= 1 || !needs_refinement(&p0.verdict, &p1.verdict, opts.rho_resolution) {
        out.push(p0.clone());
        return;
    }
    let jm = j0 + (j1 - j0) / 2;
    let pm = eval(jm, ws);
    refine_interval((j0, p0), (jm, &pm), opts, eval, ws, out);
    refine_interval((jm, &pm), (j1, p1), opts, eval, ws, out);
}

/// Whether the certified ρ-change across an interval still exceeds the
/// resolution. Intervals whose endpoints are both certified unbounded
/// (ρ = ∞ on both sides) are flat by monotonicity; any other non-finite
/// or NaN gap means the change is not yet certified small, so refine.
fn needs_refinement(a: &PlanVerdict, b: &PlanVerdict, resolution: f64) -> bool {
    if a.metric_lo == f64::INFINITY && b.metric_hi == f64::INFINITY {
        return false;
    }
    let gap = (b.metric_hi - a.metric_lo).abs();
    // NaN gaps must refine, so an incomparable pair counts as "needs it".
    !matches!(
        gap.partial_cmp(&resolution),
        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FepiaAnalysis;
    use crate::feature::FeatureSpec;
    use crate::impact::LinearImpact;
    use crate::perturbation::Perturbation;
    use crate::radius::RadiusOptions;
    use crate::verdict::VerdictKind;

    /// A two-feature affine analysis whose tolerances scale with the
    /// level exactly like the serving layer's τ·makespan bound.
    fn curve_fixture() -> (Arc<AnalysisPlan>, VecN, impl Fn(f64) -> Vec<Tolerance>) {
        let origin = VecN::from([3.0, 4.0]);
        let pert = Perturbation::continuous("p", origin.clone());
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("m0", Tolerance::upper(10.0)),
            LinearImpact::new(VecN::from([1.0, 0.0]), 0.0),
        );
        a.add_feature(
            FeatureSpec::new("m1", Tolerance::upper(10.0)),
            LinearImpact::new(VecN::from([0.0, 1.0]), 0.0),
        );
        let plan = a.compile(&RadiusOptions::default()).unwrap();
        let tols = |level: f64| vec![Tolerance::upper(level * 5.0), Tolerance::upper(level * 5.0)];
        (plan, origin, tols)
    }

    #[test]
    fn sweep_points_match_independent_single_level_calls() {
        let (plan, origin, tols) = curve_fixture();
        let curve = CurvePlan::new(Arc::clone(&plan));
        let policy = ResiliencePolicy::default();
        let levels = [1.0, 1.25, 1.5, 2.0];
        let cv = curve.sweep_with(
            &origin,
            &levels,
            &tols,
            &mut plan.workspace(),
            &policy,
            EvalBudget::UNLIMITED,
        );
        assert_eq!(cv.points.len(), levels.len());
        assert!(cv.monotone);
        for p in &cv.points {
            let solo = plan.evaluate_verdict_budgeted_with_tolerances(
                &origin,
                &tols(p.level),
                &mut plan.workspace(),
                &policy,
                EvalBudget::UNLIMITED,
            );
            assert_eq!(p.verdict.kind, VerdictKind::Exact);
            assert_eq!(p.verdict.metric_lo.to_bits(), solo.metric_lo.to_bits());
            assert_eq!(p.verdict.metric_hi.to_bits(), solo.metric_hi.to_bits());
        }
    }

    #[test]
    fn adaptive_points_are_a_subset_of_the_dense_grid() {
        let (plan, origin, tols) = curve_fixture();
        let curve = CurvePlan::new(Arc::clone(&plan));
        let policy = ResiliencePolicy::default();
        let opts = CurveRefineOptions {
            max_depth: 4,
            rho_resolution: 0.5,
        };
        let cv = curve.refine_with(
            &origin,
            1.0,
            3.0,
            opts,
            &tols,
            &mut plan.workspace(),
            &policy,
            EvalBudget::UNLIMITED,
        );
        let dense = dense_grid(1.0, 3.0, opts.max_depth);
        let dense_bits: Vec<u64> = dense.iter().map(|l| l.to_bits()).collect();
        // Ascending, deduplicated, and every level on the dense lattice.
        for w in cv.points.windows(2) {
            assert!(w[0].level < w[1].level);
        }
        for p in &cv.points {
            assert!(
                dense_bits.contains(&p.level.to_bits()),
                "adaptive level {} not on the dense grid",
                p.level
            );
        }
        assert!(cv.points.len() >= 2);
        assert!(cv.monotone);
    }

    #[test]
    fn flat_curve_stops_at_the_endpoints() {
        // A constant feature: ρ = ∞ at every level, so no refinement.
        let origin = VecN::from([1.0]);
        let pert = Perturbation::continuous("p", origin.clone());
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("const", Tolerance::upper(10.0)),
            LinearImpact::new(VecN::from([0.0]), 1.0),
        );
        let plan = a.compile(&RadiusOptions::default()).unwrap();
        let curve = CurvePlan::new(Arc::clone(&plan));
        let cv = curve.refine_with(
            &origin,
            1.0,
            2.0,
            CurveRefineOptions::default(),
            &|_| vec![Tolerance::upper(10.0)],
            &mut plan.workspace(),
            &ResiliencePolicy::default(),
            EvalBudget::UNLIMITED,
        );
        assert_eq!(cv.points.len(), 2, "unbounded-flat curve must not refine");
        assert!(cv.monotone);
    }
}
