//! Error type for the FePIA analysis.

use fepia_optim::OptimError;
use std::fmt;

/// Errors from constructing or running a robustness analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// The feature set `Φ` is empty — the metric (a minimum over features)
    /// is undefined.
    EmptyFeatureSet,
    /// An impact function expects a different perturbation dimension than
    /// the perturbation provides.
    DimensionMismatch {
        /// What the perturbation vector provides.
        perturbation: usize,
        /// What the impact function expects (if known).
        expected: usize,
    },
    /// The numeric solver only supports the Euclidean norm; analytic linear
    /// impacts support all norms via dual-norm distances.
    UnsupportedNorm {
        /// Name of the requested norm.
        norm: &'static str,
    },
    /// The tolerance interval is malformed (min > max, or NaN).
    InvalidTolerance {
        /// Lower bound supplied.
        min: f64,
        /// Upper bound supplied.
        max: f64,
    },
    /// A perturbation origin `πᵒʳⁱᵍ` contains a NaN or infinite component.
    NonFiniteOrigin {
        /// Name of the perturbation parameter.
        name: String,
        /// Index of the first offending component.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An underlying numeric failure.
    Optim(OptimError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyFeatureSet => {
                write!(f, "feature set Φ is empty; robustness metric undefined")
            }
            CoreError::DimensionMismatch {
                perturbation,
                expected,
            } => write!(
                f,
                "impact function expects dimension {expected}, perturbation has {perturbation}"
            ),
            CoreError::UnsupportedNorm { norm } => {
                write!(
                    f,
                    "norm '{norm}' unsupported for non-linear impact functions"
                )
            }
            CoreError::InvalidTolerance { min, max } => {
                write!(f, "invalid tolerance interval [{min}, {max}]")
            }
            CoreError::NonFiniteOrigin { name, index, value } => write!(
                f,
                "perturbation '{name}' origin component {index} is non-finite ({value})"
            ),
            CoreError::Optim(e) => write!(f, "numeric solver failure: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Optim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OptimError> for CoreError {
    fn from(e: OptimError) -> Self {
        CoreError::Optim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::EmptyFeatureSet.to_string().contains("empty"));
        assert!(CoreError::DimensionMismatch {
            perturbation: 3,
            expected: 5
        }
        .to_string()
        .contains('5'));
        assert!(CoreError::UnsupportedNorm { norm: "l1" }
            .to_string()
            .contains("l1"));
        assert!(CoreError::InvalidTolerance { min: 2.0, max: 1.0 }
            .to_string()
            .contains("invalid"));
        assert!(CoreError::NonFiniteOrigin {
            name: "λ".into(),
            index: 2,
            value: f64::NAN
        }
        .to_string()
        .contains("non-finite"));
        let e = CoreError::from(OptimError::Unreachable);
        assert!(e.to_string().contains("unreachable"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
