//! Human-readable rendering of robustness reports.
//!
//! Experiment binaries and examples all print the same shape of table
//! (feature, radius, method, binding marker); this module centralizes it as
//! a [`std::fmt::Display`] implementation so downstream tools get
//! consistent output for free.

use crate::analysis::RobustnessReport;
use crate::radius::RadiusMethod;
use std::fmt;

fn method_tag(m: RadiusMethod) -> &'static str {
    match m {
        RadiusMethod::Analytic => "analytic",
        RadiusMethod::Numeric => "numeric",
        RadiusMethod::Unbounded => "unbounded",
    }
}

fn radius_cell(r: f64) -> String {
    if r.is_infinite() {
        "∞".to_string()
    } else {
        format!("{r:.4}")
    }
}

impl fmt::Display for RobustnessReport {
    /// Renders the per-feature radii as an aligned text table, the binding
    /// feature marked with `◀`, followed by the metric line (floored value
    /// included for discrete parameters).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name_width = self
            .radii
            .iter()
            .map(|r| r.name.chars().count())
            .max()
            .unwrap_or(7)
            .max(7);
        writeln!(
            f,
            "{:<name_width$}  {:>12}  {:<9}  {:>6}  {:>7}",
            "feature", "radius", "method", "iters", "f_evals"
        )?;
        for (i, r) in self.radii.iter().enumerate() {
            let marker = if i == self.binding {
                " ◀ binding"
            } else {
                ""
            };
            let violated = if r.result.violated { " [violated]" } else { "" };
            writeln!(
                f,
                "{:<name_width$}  {:>12}  {:<9}  {:>6}  {:>7}{marker}{violated}",
                r.name,
                radius_cell(r.result.radius),
                method_tag(r.result.method),
                r.result.iterations,
                r.result.f_evals,
            )?;
        }
        write!(f, "ρ = {}", radius_cell(self.metric))?;
        if let Some(fl) = self.floored_metric {
            write!(f, " (floored: {})", radius_cell(fl))?;
        }
        write!(
            f,
            "  [{} f-evals, {} solver iterations]",
            self.total_f_evals(),
            self.total_iterations()
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::analysis::FepiaAnalysis;
    use crate::feature::{FeatureSpec, Tolerance};
    use crate::impact::LinearImpact;
    use crate::perturbation::Perturbation;
    use crate::radius::RadiusOptions;
    use fepia_optim::VecN;

    fn report(discrete: bool) -> crate::analysis::RobustnessReport {
        let pert = if discrete {
            Perturbation::discrete("λ", VecN::from([0.0, 0.0]))
        } else {
            Perturbation::continuous("p", VecN::from([0.0, 0.0]))
        };
        let mut a = FepiaAnalysis::new(pert);
        a.add_feature(
            FeatureSpec::new("throughput a_0", Tolerance::upper(10.0)),
            LinearImpact::homogeneous(VecN::from([2.0, 0.0])),
        );
        a.add_feature(
            FeatureSpec::new("latency P_0", Tolerance::upper(9.0)),
            LinearImpact::homogeneous(VecN::from([1.0, 1.0])),
        );
        a.add_feature(
            FeatureSpec::new("unaffected", Tolerance::upper(5.0)),
            LinearImpact::new(VecN::zeros(2), 1.0),
        );
        a.run(&RadiusOptions::default()).unwrap()
    }

    #[test]
    fn table_contains_all_rows_and_binding_marker() {
        let text = report(false).to_string();
        assert!(text.contains("throughput a_0"));
        assert!(text.contains("latency P_0"));
        assert!(text.contains("◀ binding"));
        assert!(text.contains("∞")); // the unaffected feature
                                     // Binding: throughput radius 5.0 vs latency 9/√2 ≈ 6.36.
        let binding_line = text
            .lines()
            .find(|l| l.contains("◀"))
            .expect("binding marked");
        assert!(binding_line.contains("throughput a_0"));
        assert!(text.contains("ρ = 5.0000"));
        assert!(text.contains("f_evals"));
        assert!(text.contains("f-evals"));
    }

    #[test]
    fn floored_metric_shown_for_discrete() {
        let text = report(true).to_string();
        assert!(text.contains("(floored: 5.0000)"));
    }
}
