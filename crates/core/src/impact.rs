//! FePIA step 3 — impact of perturbations on features.
//!
//! "For every `φᵢ ∈ Φ`, determine the relationship `φᵢ = f_ij(πⱼ)` ... that
//! relates `φᵢ` to `πⱼ`." (§2, step 3). Implementations:
//!
//! * [`LinearImpact`] — `f(π) = a·π + c`. Covers the paper's §3.1 (machine
//!   finishing times are sums of assigned execution times) and the linear
//!   load functions of its §4.3 experiments. Enables the **exact analytic
//!   radius** (point-to-hyperplane distance, Eq. 6).
//! * [`SumSelected`] — the special 0/1-coefficient case of Eq. 4,
//!   `F_j(C) = Σ_{i mapped to m_j} C_i`.
//! * [`FnImpact`] — an arbitrary black-box function with optional analytic
//!   gradient; solved numerically (convexity assumed, as in the paper).

use fepia_optim::VecN;

/// An impact function `f_ij : R^n → R` mapping a perturbation-parameter
/// value to a performance-feature value.
///
/// `Send + Sync` so compiled analysis plans (which hold impacts behind
/// `Arc<dyn Impact>`) can be shared across the parallel sweep drivers.
pub trait Impact: Send + Sync {
    /// Evaluates `f(π)`.
    fn eval(&self, pi: &VecN) -> f64;

    /// The analytic gradient `∇f(π)`, if available. The default `None`
    /// makes the numeric path fall back to central differences.
    fn gradient(&self, _pi: &VecN) -> Option<VecN> {
        None
    }

    /// If the impact is affine, its `(coefficients, constant)`
    /// representation `f(π) = a·π + c`. Unlocks the exact analytic radius.
    fn as_affine(&self) -> Option<(VecN, f64)> {
        None
    }

    /// The input dimension the function expects, if fixed.
    fn expected_dim(&self) -> Option<usize> {
        None
    }
}

/// Affine impact `f(π) = coefficients·π + constant`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearImpact {
    /// Coefficient vector `a`.
    pub coefficients: VecN,
    /// Constant offset `c`.
    pub constant: f64,
}

impl LinearImpact {
    /// Creates `f(π) = coefficients·π + constant`.
    pub fn new(coefficients: VecN, constant: f64) -> Self {
        LinearImpact {
            coefficients,
            constant,
        }
    }

    /// Pure linear form without offset.
    pub fn homogeneous(coefficients: VecN) -> Self {
        LinearImpact::new(coefficients, 0.0)
    }
}

impl Impact for LinearImpact {
    fn eval(&self, pi: &VecN) -> f64 {
        self.coefficients.dot(pi) + self.constant
    }

    fn gradient(&self, _pi: &VecN) -> Option<VecN> {
        Some(self.coefficients.clone())
    }

    fn as_affine(&self) -> Option<(VecN, f64)> {
        Some((self.coefficients.clone(), self.constant))
    }

    fn expected_dim(&self) -> Option<usize> {
        Some(self.coefficients.dim())
    }
}

/// The paper's Eq. 4: the finishing time of a machine is the sum of the
/// perturbation components (actual execution times) of the applications
/// mapped to it — an affine impact with 0/1 coefficients.
#[derive(Clone, Debug, PartialEq)]
pub struct SumSelected {
    /// Indices of the perturbation components that contribute.
    pub indices: Vec<usize>,
    /// Total perturbation dimension `|A|`.
    pub dim: usize,
}

impl SumSelected {
    /// Creates the sum over `indices` of a `dim`-dimensional perturbation.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn new(indices: Vec<usize>, dim: usize) -> Self {
        assert!(
            indices.iter().all(|&i| i < dim),
            "selection index out of range"
        );
        SumSelected { indices, dim }
    }
}

impl Impact for SumSelected {
    fn eval(&self, pi: &VecN) -> f64 {
        self.indices.iter().map(|&i| pi[i]).sum()
    }

    fn gradient(&self, _pi: &VecN) -> Option<VecN> {
        let mut g = VecN::zeros(self.dim);
        for &i in &self.indices {
            g[i] += 1.0;
        }
        Some(g)
    }

    fn as_affine(&self) -> Option<(VecN, f64)> {
        Some((self.gradient(&VecN::zeros(self.dim))?, 0.0))
    }

    fn expected_dim(&self) -> Option<usize> {
        Some(self.dim)
    }
}

/// A boxed black-box gradient function.
type BoxedGradient = Box<dyn Fn(&VecN) -> VecN + Send + Sync>;

/// A black-box impact function (with optional analytic gradient).
///
/// Use for non-linear dependencies such as the convex complexity functions
/// of §3.2 (`x^p`, `e^{px}`, `x log x`, sums and positive multiples).
pub struct FnImpact {
    f: Box<dyn Fn(&VecN) -> f64 + Send + Sync>,
    grad: Option<BoxedGradient>,
    dim: Option<usize>,
}

impl FnImpact {
    /// Wraps an arbitrary function.
    pub fn new(f: impl Fn(&VecN) -> f64 + Send + Sync + 'static) -> Self {
        FnImpact {
            f: Box::new(f),
            grad: None,
            dim: None,
        }
    }

    /// Attaches an analytic gradient.
    pub fn with_gradient(mut self, g: impl Fn(&VecN) -> VecN + Send + Sync + 'static) -> Self {
        self.grad = Some(Box::new(g));
        self
    }

    /// Declares the expected input dimension (enables early dimension
    /// checking in the analysis).
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = Some(dim);
        self
    }
}

impl Impact for FnImpact {
    fn eval(&self, pi: &VecN) -> f64 {
        (self.f)(pi)
    }

    fn gradient(&self, pi: &VecN) -> Option<VecN> {
        self.grad.as_ref().map(|g| g(pi))
    }

    fn expected_dim(&self) -> Option<usize> {
        self.dim
    }
}

impl std::fmt::Debug for FnImpact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnImpact")
            .field("dim", &self.dim)
            .field("has_gradient", &self.grad.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_eval_and_gradient() {
        let f = LinearImpact::new(VecN::from([2.0, -1.0]), 5.0);
        let x = VecN::from([3.0, 4.0]);
        assert_eq!(f.eval(&x), 2.0 * 3.0 - 4.0 + 5.0);
        assert_eq!(f.gradient(&x).unwrap(), VecN::from([2.0, -1.0]));
        let (a, c) = f.as_affine().unwrap();
        assert_eq!(a, VecN::from([2.0, -1.0]));
        assert_eq!(c, 5.0);
        assert_eq!(f.expected_dim(), Some(2));
    }

    #[test]
    fn homogeneous_has_zero_constant() {
        let f = LinearImpact::homogeneous(VecN::from([1.0]));
        assert_eq!(f.as_affine().unwrap().1, 0.0);
    }

    #[test]
    fn sum_selected_is_eq4() {
        // 5 applications; machine holds apps {0, 2, 3}.
        let f = SumSelected::new(vec![0, 2, 3], 5);
        let c = VecN::from([10.0, 99.0, 20.0, 30.0, 99.0]);
        assert_eq!(f.eval(&c), 60.0);
        let (a, k) = f.as_affine().unwrap();
        assert_eq!(a, VecN::from([1.0, 0.0, 1.0, 1.0, 0.0]));
        assert_eq!(k, 0.0);
        assert_eq!(f.expected_dim(), Some(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sum_selected_checks_indices() {
        SumSelected::new(vec![5], 5);
    }

    #[test]
    fn fn_impact_black_box() {
        let f = FnImpact::new(|v: &VecN| v[0].exp() + v[1] * v[1]).with_dim(2);
        let x = VecN::from([0.0, 3.0]);
        assert_eq!(f.eval(&x), 10.0);
        assert!(f.gradient(&x).is_none());
        assert!(f.as_affine().is_none());
        assert_eq!(f.expected_dim(), Some(2));
    }

    #[test]
    fn fn_impact_with_gradient() {
        let f = FnImpact::new(|v: &VecN| v.dot(v))
            .with_gradient(|v: &VecN| v.scaled(2.0))
            .with_dim(3);
        let x = VecN::from([1.0, 2.0, 3.0]);
        assert_eq!(f.gradient(&x).unwrap(), VecN::from([2.0, 4.0, 6.0]));
        assert!(format!("{f:?}").contains("has_gradient: true"));
    }
}
