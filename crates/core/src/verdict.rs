//! Typed verdicts for fault-tolerant robustness evaluation.
//!
//! The legacy entry points ([`crate::robustness_radius`],
//! [`crate::plan::AnalysisPlan::evaluate`]) return `Result<_, CoreError>`:
//! one poisoned input or non-convergent solve aborts the whole call — and,
//! through `collect`, the whole 10k-mapping sweep. The verdict API never
//! aborts: every feature of every origin gets a classification:
//!
//! * [`RadiusVerdict::Exact`] — the radius was computed exactly (analytic
//!   form or converged solve).
//! * [`RadiusVerdict::Bounded`] — the exact solve exhausted its retry
//!   budget; a certified interval `[lo, hi]` brackets the radius (degraded
//!   boundary point and/or the axis-probe certificates of
//!   [`fepia_optim::certified_level_interval`]).
//! * [`RadiusVerdict::Infeasible`] — the feature already violates its
//!   tolerance at the origin: the radius is *certainly* zero.
//! * [`RadiusVerdict::Failed`] — nothing could be certified; the reason
//!   says why (poisoned input, panicking impact, solver exhaustion, ...).
//!
//! [`PlanVerdict`] aggregates per-feature verdicts into an interval on the
//! metric `ρ = min_i r_i`, so degraded sweeps still rank mappings.

use crate::radius::RadiusResult;
use fepia_optim::RetryPolicy;

/// Why an exact radius degraded to a certified interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// Every retry hit the solver's iteration cap; the best boundary point
    /// found supplies the upper certificate.
    IterationCap,
    /// The retry budget (evals or wall deadline) ran out and the certified
    /// axis-probe interval replaced the solve entirely.
    BudgetExhausted,
}

/// Why a radius could not be computed or bracketed at all.
#[derive(Clone, Debug, PartialEq)]
pub enum FailReason {
    /// The evaluation origin carries a non-finite component.
    NonFiniteInput {
        /// Index of the first offending component.
        index: usize,
    },
    /// The impact function returned a non-finite value at the origin.
    NonFiniteImpact,
    /// The origin's dimension does not match the compiled plan.
    DimensionMismatch {
        /// What the origin provides.
        got: usize,
        /// What the plan expects.
        expected: usize,
    },
    /// The solver and the certified fallback both failed.
    Solver(String),
    /// The impact function (or injected fault) panicked; the payload is the
    /// panic message.
    Panic(String),
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailReason::NonFiniteInput { index } => {
                write!(f, "non-finite origin component at index {index}")
            }
            FailReason::NonFiniteImpact => write!(f, "impact function non-finite at origin"),
            FailReason::DimensionMismatch { got, expected } => {
                write!(f, "origin dimension {got}, plan expects {expected}")
            }
            FailReason::Solver(msg) => write!(f, "solver failure: {msg}"),
            FailReason::Panic(msg) => write!(f, "panic during evaluation: {msg}"),
        }
    }
}

/// The classified outcome of one feature's radius computation.
#[derive(Clone, Debug)]
pub enum RadiusVerdict {
    /// Radius computed exactly.
    Exact(RadiusResult),
    /// Radius certified to lie in `[lo, hi]` (possibly `hi = +∞`).
    Bounded {
        /// Certified lower bound.
        lo: f64,
        /// Certified upper bound.
        hi: f64,
        /// What forced the degradation.
        reason: DegradeReason,
        /// Solver restarts consumed before degrading.
        restarts: usize,
    },
    /// The tolerance is already violated at the origin: radius exactly 0.
    Infeasible,
    /// No radius and no certificate.
    Failed(FailReason),
}

impl RadiusVerdict {
    /// Certified `[lo, hi]` bounds on the radius, `None` for `Failed`.
    pub fn radius_bounds(&self) -> Option<(f64, f64)> {
        match self {
            RadiusVerdict::Exact(r) => Some((r.radius, r.radius)),
            RadiusVerdict::Bounded { lo, hi, .. } => Some((*lo, *hi)),
            RadiusVerdict::Infeasible => Some((0.0, 0.0)),
            RadiusVerdict::Failed(_) => None,
        }
    }

    /// The exact radius, when one exists (`Exact` or `Infeasible`).
    pub fn exact_radius(&self) -> Option<f64> {
        match self {
            RadiusVerdict::Exact(r) => Some(r.radius),
            RadiusVerdict::Infeasible => Some(0.0),
            _ => None,
        }
    }

    /// Classification label (`exact` / `bounded` / `infeasible` / `failed`),
    /// also the obs counter suffix.
    pub fn label(&self) -> &'static str {
        match self {
            RadiusVerdict::Exact(_) => "exact",
            RadiusVerdict::Bounded { .. } => "bounded",
            RadiusVerdict::Infeasible => "infeasible",
            RadiusVerdict::Failed(_) => "failed",
        }
    }
}

/// Coarse classification of a whole plan evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictKind {
    /// Every feature exact: `metric_lo == metric_hi` is the metric.
    Exact,
    /// At least one feature degraded; the metric lies in
    /// `[metric_lo, metric_hi]`.
    Bounded,
    /// Some feature is already violated: the metric is exactly 0.
    Infeasible,
    /// Some feature failed outright; only `metric_hi` (min over the
    /// certified features) is meaningful, `metric_lo` is 0.
    Failed,
}

/// Aggregated verdict for one origin: per-feature classifications plus an
/// interval on the metric `ρ = min_i r_i`.
#[derive(Clone, Debug)]
pub struct PlanVerdict {
    /// Per-feature verdicts, in feature insertion order.
    pub radii: Vec<RadiusVerdict>,
    /// Certified lower bound on the metric.
    pub metric_lo: f64,
    /// Certified upper bound on the metric (`+∞` when nothing certifies an
    /// upper bound).
    pub metric_hi: f64,
    /// Feature index attaining `metric_hi`, when one does.
    pub binding: Option<usize>,
    /// Overall classification.
    pub kind: VerdictKind,
}

impl PlanVerdict {
    /// Aggregates per-feature verdicts into the metric interval.
    ///
    /// Precedence: any `Infeasible` pins the metric at exactly 0; otherwise
    /// any `Failed` voids the lower bound (`metric_lo = 0`) while the upper
    /// bound keeps the min over certified features; otherwise the metric
    /// interval is the min of the per-feature intervals.
    pub fn from_radii(radii: Vec<RadiusVerdict>) -> PlanVerdict {
        let mut any_failed = false;
        let mut any_bounded = false;
        let mut any_infeasible = false;
        let mut lo = f64::INFINITY;
        let mut hi = f64::INFINITY;
        let mut binding = None;
        for (i, v) in radii.iter().enumerate() {
            match v {
                RadiusVerdict::Infeasible => {
                    any_infeasible = true;
                    if hi > 0.0 {
                        hi = 0.0;
                        binding = Some(i);
                    }
                    lo = 0.0;
                }
                RadiusVerdict::Failed(_) => any_failed = true,
                RadiusVerdict::Bounded { .. } | RadiusVerdict::Exact(_) => {
                    if matches!(v, RadiusVerdict::Bounded { .. }) {
                        any_bounded = true;
                    }
                    let (l, h) = v.radius_bounds().expect("certified verdict has bounds");
                    if h < hi {
                        hi = h;
                        binding = Some(i);
                    }
                    lo = lo.min(l);
                }
            }
        }
        let kind = if any_infeasible {
            VerdictKind::Infeasible
        } else if any_failed {
            lo = 0.0;
            VerdictKind::Failed
        } else if any_bounded {
            VerdictKind::Bounded
        } else {
            VerdictKind::Exact
        };
        // min-of-intervals: the metric can be as low as the lowest feature
        // lower bound, and no higher than the lowest upper bound.
        let metric_lo = if radii.is_empty() { 0.0 } else { lo.min(hi) };
        PlanVerdict {
            radii,
            metric_lo,
            metric_hi: hi,
            binding,
            kind,
        }
    }

    /// Builds a verdict where *every* feature failed for the same reason
    /// (e.g. a poisoned origin) — the whole-origin failure path.
    pub fn all_failed(features: usize, reason: FailReason) -> PlanVerdict {
        PlanVerdict {
            radii: (0..features)
                .map(|_| RadiusVerdict::Failed(reason.clone()))
                .collect(),
            metric_lo: 0.0,
            metric_hi: f64::INFINITY,
            binding: None,
            kind: VerdictKind::Failed,
        }
    }

    /// True when the metric is a single certified number
    /// (`Exact`/`Infeasible` kinds).
    pub fn is_exact(&self) -> bool {
        matches!(self.kind, VerdictKind::Exact | VerdictKind::Infeasible)
    }

    /// Midpoint of the metric interval — a usable ranking score even for
    /// degraded verdicts (`metric_lo` when the interval is unbounded above).
    pub fn metric_estimate(&self) -> f64 {
        if self.metric_hi.is_finite() {
            0.5 * (self.metric_lo + self.metric_hi)
        } else {
            self.metric_lo
        }
    }
}

/// Policy for the fault-tolerant (verdict) evaluation paths: how hard to
/// retry the exact solve, and how much to spend on the certified fallback.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResiliencePolicy {
    /// Retry/budget policy for the numeric solver.
    pub retry: RetryPolicy,
    /// Bisection refinements per axis direction in the certified-interval
    /// fallback.
    pub certify_bisections: usize,
    /// Catch panics from impact functions (and injected faults) and convert
    /// them into [`RadiusVerdict::Failed`]. Disable only to debug the panic
    /// itself.
    pub catch_panics: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            retry: RetryPolicy::default(),
            certify_bisections: 30,
            catch_panics: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radius::RadiusMethod;

    fn exact(radius: f64) -> RadiusVerdict {
        RadiusVerdict::Exact(RadiusResult {
            radius,
            boundary_point: None,
            bound: None,
            violated: false,
            method: RadiusMethod::Analytic,
            iterations: 0,
            f_evals: 1,
        })
    }

    #[test]
    fn all_exact_collapses_to_point_interval() {
        let v = PlanVerdict::from_radii(vec![exact(3.0), exact(1.5), exact(2.0)]);
        assert_eq!(v.kind, VerdictKind::Exact);
        assert_eq!(v.metric_lo, 1.5);
        assert_eq!(v.metric_hi, 1.5);
        assert_eq!(v.binding, Some(1));
        assert!(v.is_exact());
        assert_eq!(v.metric_estimate(), 1.5);
    }

    #[test]
    fn bounded_feature_widens_metric() {
        let v = PlanVerdict::from_radii(vec![
            exact(3.0),
            RadiusVerdict::Bounded {
                lo: 1.0,
                hi: 2.0,
                reason: DegradeReason::IterationCap,
                restarts: 2,
            },
        ]);
        assert_eq!(v.kind, VerdictKind::Bounded);
        assert_eq!(v.metric_lo, 1.0);
        assert_eq!(v.metric_hi, 2.0);
        assert_eq!(v.binding, Some(1));
        assert!(!v.is_exact());
        assert_eq!(v.metric_estimate(), 1.5);
    }

    #[test]
    fn infeasible_pins_metric_to_zero() {
        let v = PlanVerdict::from_radii(vec![
            exact(3.0),
            RadiusVerdict::Infeasible,
            RadiusVerdict::Failed(FailReason::NonFiniteImpact),
        ]);
        assert_eq!(v.kind, VerdictKind::Infeasible);
        assert_eq!((v.metric_lo, v.metric_hi), (0.0, 0.0));
        assert_eq!(v.binding, Some(1));
        assert!(v.is_exact());
    }

    #[test]
    fn failed_feature_voids_lower_bound_only() {
        let v = PlanVerdict::from_radii(vec![
            exact(3.0),
            RadiusVerdict::Failed(FailReason::Panic("boom".into())),
        ]);
        assert_eq!(v.kind, VerdictKind::Failed);
        assert_eq!(v.metric_lo, 0.0);
        assert_eq!(v.metric_hi, 3.0);
        assert_eq!(v.binding, Some(0));
    }

    #[test]
    fn all_failed_has_unbounded_interval() {
        let v = PlanVerdict::all_failed(3, FailReason::NonFiniteInput { index: 1 });
        assert_eq!(v.radii.len(), 3);
        assert_eq!(v.kind, VerdictKind::Failed);
        assert_eq!(v.metric_lo, 0.0);
        assert_eq!(v.metric_hi, f64::INFINITY);
        assert_eq!(v.binding, None);
        assert_eq!(v.metric_estimate(), 0.0);
    }

    #[test]
    fn fail_reasons_display() {
        for (reason, needle) in [
            (FailReason::NonFiniteInput { index: 4 }, "index 4"),
            (FailReason::NonFiniteImpact, "non-finite"),
            (
                FailReason::DimensionMismatch {
                    got: 2,
                    expected: 3,
                },
                "expects 3",
            ),
            (FailReason::Solver("no bracket".into()), "no bracket"),
            (FailReason::Panic("boom".into()), "boom"),
        ] {
            assert!(
                reason.to_string().contains(needle),
                "{reason} missing {needle:?}"
            );
        }
    }
}
