//! `fepia-core` — the generalized robustness metric of Ali et al. (IPDPS 2003).
//!
//! The paper's central definition: a mapping `μ` is *robust* with respect to
//! a set of performance features `Φ` against a perturbation parameter `πⱼ`
//! when degradation in those features is limited while `πⱼ` stays within the
//! **robustness radius** of its assumed value. This crate implements the
//! four FePIA steps as types:
//!
//! 1. **Fe** — performance features with tolerable-variation bounds:
//!    [`feature::FeatureSpec`] and [`feature::Tolerance`]
//!    (`⟨βᵢᵐⁱⁿ, βᵢᵐᵃˣ⟩`).
//! 2. **P** — perturbation parameters: [`perturbation::Perturbation`]
//!    (vector-valued, continuous or discrete, with assumed value
//!    `πⱼᵒʳⁱᵍ`).
//! 3. **I** — impact functions `φᵢ = f_ij(πⱼ)`: the [`impact::Impact`]
//!    trait with linear ([`impact::LinearImpact`], [`impact::SumSelected`])
//!    and black-box ([`impact::FnImpact`]) implementations.
//! 4. **A** — the analysis: [`radius::robustness_radius`] (Eq. 1) and
//!    [`analysis::FepiaAnalysis`] / [`analysis::RobustnessReport`] (Eq. 2).
//!
//! Linear impacts take an exact analytic path (the point-to-hyperplane
//! formula behind the paper's Eq. 6); everything else is solved numerically
//! by `fepia-optim`'s min-norm level-set solver, valid for the convex impact
//! functions the paper assumes in §3.2.
//!
//! For repeated evaluation (sweeps, search heuristics) compile the analysis
//! once with [`analysis::FepiaAnalysis::compile`] and evaluate the resulting
//! [`plan::AnalysisPlan`] at many origins — same numbers, none of the
//! per-call dispatch and allocation.

pub mod analysis;
pub mod curve;
pub mod error;
pub mod feature;
pub mod impact;
pub mod joint;
pub mod multiparam;
pub mod perturbation;
pub mod plan;
pub mod radius;
pub mod report;
pub mod verdict;

pub use analysis::{FeatureRadius, FepiaAnalysis, RobustnessReport};
pub use curve::{
    dense_grid, dyadic_level, CurvePlan, CurvePoint, CurveRefineOptions, CurveVerdict,
};
pub use error::CoreError;
pub use feature::{FeatureSpec, Tolerance};
pub use impact::{FnImpact, Impact, LinearImpact, SumSelected};
pub use joint::{JointAnalysis, PartId};
pub use multiparam::MultiParamAnalysis;
pub use perturbation::{Domain, Perturbation};
pub use plan::{AnalysisPlan, EvalBudget, PlanEvaluation, PlanWorkspace};
pub use radius::{robustness_radius, Bound, RadiusMethod, RadiusOptions, RadiusResult};
pub use verdict::{
    DegradeReason, FailReason, PlanVerdict, RadiusVerdict, ResiliencePolicy, VerdictKind,
};
