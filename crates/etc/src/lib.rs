//! `fepia-etc` — estimated-time-to-compute (ETC) matrices.
//!
//! §3.1 of the paper analyzes a system where "`C_ij` \[is\] the estimated time
//! to compute for application `a_i` on machine `m_j`. It is assumed that
//! `C_ij` values are known for all i, j, and a mapping μ is determined using
//! the ETC values." This crate provides:
//!
//! * [`matrix::EtcMatrix`] — the `|A| × |M|` matrix type.
//! * [`gen`] — generation with the CVB heterogeneity method (paper ref \[3\];
//!   the §4.2 experiments use mean 10 and 0.7/0.7 task/machine
//!   heterogeneity) and a simpler range-based method.
//! * [`consistency`] — consistent / semi-consistent / inconsistent shaping
//!   from the heterogeneous-computing ETC taxonomy (paper ref \[7\], Braun et
//!   al.), so mapping heuristics can be exercised across matrix classes.

pub mod braun;
pub mod consistency;
pub mod gen;
pub mod io;
pub mod matrix;

pub use braun::{generate_braun, BraunClass, HiLo};
pub use consistency::Consistency;
pub use gen::{generate_cvb, generate_range, EtcParams};
pub use io::{from_csv, load_csv, save_csv, to_csv, EtcIoError};
pub use matrix::{EtcMatrix, EtcMatrixError};
