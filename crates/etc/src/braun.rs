//! The Braun et al. benchmark instance classes.
//!
//! The heuristic-comparison study the paper builds on (its reference \[7\],
//! Braun et al. 2001) defined twelve canonical ETC classes — the cross
//! product of consistency {consistent, semi-consistent, inconsistent} and
//! high/low task and machine heterogeneity — generated with the range-based
//! method. They remain the standard benchmark family in heterogeneous-
//! computing scheduling papers, so the workspace can speak that dialect:
//! [`generate_braun`] produces any class, and [`BraunClass::all`] enumerates
//! the full suite.

use crate::consistency::{apply_consistency, Consistency};
use crate::gen::generate_range;
use crate::matrix::EtcMatrix;
use rand::Rng;

/// High or low heterogeneity, with the classical range constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HiLo {
    /// High heterogeneity.
    Hi,
    /// Low heterogeneity.
    Lo,
}

impl HiLo {
    fn task_range(self) -> f64 {
        match self {
            HiLo::Hi => 3_000.0,
            HiLo::Lo => 100.0,
        }
    }

    fn machine_range(self) -> f64 {
        match self {
            HiLo::Hi => 1_000.0,
            HiLo::Lo => 10.0,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            HiLo::Hi => "hi",
            HiLo::Lo => "lo",
        }
    }
}

/// One of the twelve Braun et al. ETC classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BraunClass {
    /// Consistency class.
    pub consistency: Consistency,
    /// Task heterogeneity level.
    pub task: HiLo,
    /// Machine heterogeneity level.
    pub machine: HiLo,
}

impl BraunClass {
    /// The canonical short name, e.g. `u_c_hihi` (uniform, consistent,
    /// high task / high machine heterogeneity).
    pub fn name(&self) -> String {
        let c = match self.consistency {
            Consistency::Consistent => "c",
            Consistency::SemiConsistent => "s",
            Consistency::Inconsistent => "i",
        };
        format!("u_{c}_{}{}", self.task.tag(), self.machine.tag())
    }

    /// All twelve classes, in the conventional order (c, i, s × hihi,
    /// hilo, lohi, lolo).
    pub fn all() -> Vec<BraunClass> {
        let mut out = Vec::with_capacity(12);
        for consistency in [
            Consistency::Consistent,
            Consistency::Inconsistent,
            Consistency::SemiConsistent,
        ] {
            for (task, machine) in [
                (HiLo::Hi, HiLo::Hi),
                (HiLo::Hi, HiLo::Lo),
                (HiLo::Lo, HiLo::Hi),
                (HiLo::Lo, HiLo::Lo),
            ] {
                out.push(BraunClass {
                    consistency,
                    task,
                    machine,
                });
            }
        }
        out
    }
}

/// Generates a Braun-class ETC matrix with the range-based method and the
/// classical range constants (task ranges 100/3000, machine ranges
/// 10/1000).
pub fn generate_braun<R: Rng + ?Sized>(
    rng: &mut R,
    class: BraunClass,
    apps: usize,
    machines: usize,
) -> EtcMatrix {
    let mut m = generate_range(
        rng,
        apps,
        machines,
        class.task.task_range(),
        class.machine.machine_range(),
    );
    apply_consistency(&mut m, class.consistency, rng);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::is_consistent;
    use fepia_stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn twelve_classes_with_unique_names() {
        let all = BraunClass::all();
        assert_eq!(all.len(), 12);
        let mut names: Vec<String> = all.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"u_c_hihi".to_string()));
        assert!(names.contains(&"u_i_lolo".to_string()));
        assert!(names.contains(&"u_s_hilo".to_string()));
    }

    #[test]
    fn consistent_classes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in BraunClass::all() {
            let m = generate_braun(&mut rng, class, 30, 8);
            assert_eq!(m.apps(), 30);
            if class.consistency == Consistency::Consistent {
                assert!(is_consistent(&m), "{} not consistent", class.name());
            }
        }
    }

    #[test]
    fn heterogeneity_levels_scale_value_ranges() {
        // Braun's hi/lo controls the *range* of the uniform draws (the CV of
        // a uniform is scale-free, so the discriminator is magnitude): hi
        // task classes reach values ~30× larger than lo task classes.
        let mut rng = StdRng::seed_from_u64(2);
        let hi = generate_braun(
            &mut rng,
            BraunClass {
                consistency: Consistency::Inconsistent,
                task: HiLo::Hi,
                machine: HiLo::Lo,
            },
            500,
            8,
        );
        let lo = generate_braun(
            &mut rng,
            BraunClass {
                consistency: Consistency::Inconsistent,
                task: HiLo::Lo,
                machine: HiLo::Lo,
            },
            500,
            8,
        );
        let max_hi = Summary::of(hi.values()).max;
        let max_lo = Summary::of(lo.values()).max;
        assert!(
            max_hi > 10.0 * max_lo,
            "hi-task max {max_hi} not clearly above lo {max_lo}"
        );
    }

    #[test]
    fn values_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = generate_braun(
            &mut rng,
            BraunClass {
                consistency: Consistency::Inconsistent,
                task: HiLo::Lo,
                machine: HiLo::Lo,
            },
            100,
            5,
        );
        for &v in m.values() {
            assert!((1.0..100.0 * 10.0).contains(&v));
        }
    }
}
