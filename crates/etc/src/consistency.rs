//! ETC consistency classes.
//!
//! The heterogeneous-computing literature the paper builds on (its reference
//! \[7\], Braun et al.) classifies ETC matrices as:
//!
//! * **consistent** — if machine `m_j` is faster than `m_k` for one
//!   application it is faster for all of them (every row sorted by the same
//!   machine order);
//! * **inconsistent** — no such ordering (raw CVB/range output);
//! * **semi-consistent** — a fixed subset of machines is mutually consistent
//!   while the rest stay inconsistent.
//!
//! Mapping heuristics behave very differently across these classes, so the
//! heuristic benches sweep all three.

use crate::matrix::EtcMatrix;
use rand::Rng;

/// The consistency class to impose on a generated matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// Leave the matrix as generated.
    Inconsistent,
    /// Sort every row by a common machine order.
    Consistent,
    /// Make every other machine column (0, 2, 4, …) mutually consistent.
    SemiConsistent,
}

/// Applies a consistency class to `matrix` in place.
///
/// `Consistent` sorts each row ascending, making machine 0 the universally
/// fastest. `SemiConsistent` sorts, within each row, only the values at even
/// machine indices (the standard construction). `rng` is unused today but
/// kept in the signature so randomized semi-consistent variants can be added
/// without breaking callers.
pub fn apply_consistency<R: Rng + ?Sized>(
    matrix: &mut EtcMatrix,
    class: Consistency,
    _rng: &mut R,
) {
    match class {
        Consistency::Inconsistent => {}
        Consistency::Consistent => {
            for i in 0..matrix.apps() {
                matrix
                    .row_mut(i)
                    .sort_by(|a, b| a.partial_cmp(b).expect("ETC is never NaN"));
            }
        }
        Consistency::SemiConsistent => {
            for i in 0..matrix.apps() {
                let row = matrix.row_mut(i);
                let mut evens: Vec<f64> = row.iter().step_by(2).copied().collect();
                evens.sort_by(|a, b| a.partial_cmp(b).expect("ETC is never NaN"));
                for (slot, v) in row.iter_mut().step_by(2).zip(evens) {
                    *slot = v;
                }
            }
        }
    }
}

/// Checks whether the matrix is consistent: some machine permutation sorts
/// every row. (Equivalent test: the machine order induced by row 0 sorts all
/// other rows.)
pub fn is_consistent(matrix: &EtcMatrix) -> bool {
    let mut order: Vec<usize> = (0..matrix.machines()).collect();
    let first = matrix.row(0);
    order.sort_by(|&a, &b| first[a].partial_cmp(&first[b]).expect("ETC is never NaN"));
    (0..matrix.apps()).all(|i| {
        let row = matrix.row(i);
        order.windows(2).all(|w| row[w[0]] <= row[w[1]])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_cvb, EtcParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_matrix(seed: u64) -> EtcMatrix {
        generate_cvb(
            &mut StdRng::seed_from_u64(seed),
            &EtcParams::paper_section_4_2(),
        )
    }

    #[test]
    fn consistent_sorts_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = sample_matrix(1);
        apply_consistency(&mut m, Consistency::Consistent, &mut rng);
        assert!(is_consistent(&m));
        for i in 0..m.apps() {
            let row = m.row(i);
            assert!(row.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn inconsistent_is_noop() {
        let mut rng = StdRng::seed_from_u64(2);
        let orig = sample_matrix(2);
        let mut m = orig.clone();
        apply_consistency(&mut m, Consistency::Inconsistent, &mut rng);
        assert_eq!(m, orig);
    }

    #[test]
    fn random_matrix_is_rarely_consistent() {
        // With 20 apps × 5 machines the chance of accidental consistency is
        // negligible.
        assert!(!is_consistent(&sample_matrix(3)));
    }

    #[test]
    fn semi_consistent_orders_even_columns() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = sample_matrix(4);
        let before = m.clone();
        apply_consistency(&mut m, Consistency::SemiConsistent, &mut rng);
        for i in 0..m.apps() {
            let row = m.row(i);
            // Even-indexed machines are sorted among themselves...
            let evens: Vec<f64> = row.iter().step_by(2).copied().collect();
            assert!(
                evens.windows(2).all(|w| w[0] <= w[1]),
                "row {i} not semi-sorted"
            );
            // ...and odd-indexed entries are untouched.
            for (j, &v) in row.iter().enumerate() {
                if j % 2 == 1 {
                    assert_eq!(v, before.row(i)[j]);
                }
            }
        }
    }

    #[test]
    fn consistency_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = sample_matrix(5);
        let mut before: Vec<f64> = m.values().to_vec();
        apply_consistency(&mut m, Consistency::Consistent, &mut rng);
        let mut after: Vec<f64> = m.values().to_vec();
        before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(before, after);
    }
}
