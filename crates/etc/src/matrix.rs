//! The ETC matrix type.

use std::fmt;

/// Typed construction failure for [`EtcMatrix::try_from_rows`].
#[derive(Clone, Debug, PartialEq)]
pub enum EtcMatrixError {
    /// The row set is empty (no applications) or the first row is empty
    /// (no machines).
    Empty,
    /// A row's length disagrees with the first row's.
    Ragged {
        /// Offending row index.
        row: usize,
        /// Machines in the offending row.
        got: usize,
        /// Machines expected (from the first row).
        expected: usize,
    },
    /// An entry is NaN, infinite, or not strictly positive.
    InvalidEntry {
        /// Application (row) index.
        app: usize,
        /// Machine (column) index.
        machine: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for EtcMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtcMatrixError::Empty => {
                write!(f, "ETC matrix needs at least one application and machine")
            }
            EtcMatrixError::Ragged { row, got, expected } => write!(
                f,
                "ragged ETC matrix: row {row} has {got} machines, expected {expected}"
            ),
            EtcMatrixError::InvalidEntry {
                app,
                machine,
                value,
            } => write!(
                f,
                "ETC({app},{machine}) = {value} must be positive and finite"
            ),
        }
    }
}

impl std::error::Error for EtcMatrixError {}

/// An `|A| × |M|` matrix of estimated times to compute: `get(i, j)` is the
/// ETC of application `a_i` on machine `m_j`. Stored row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct EtcMatrix {
    apps: usize,
    machines: usize,
    data: Vec<f64>,
}

impl EtcMatrix {
    /// Builds a matrix from per-application rows.
    ///
    /// # Panics
    /// Panics if rows are empty, ragged, or contain non-positive or
    /// non-finite times; see [`EtcMatrix::try_from_rows`] for a fallible
    /// variant.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        Self::try_from_rows(rows).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`EtcMatrix::from_rows`]: rejects empty/ragged row sets and
    /// non-positive or non-finite entries with a typed [`EtcMatrixError`].
    pub fn try_from_rows(rows: Vec<Vec<f64>>) -> Result<Self, EtcMatrixError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(EtcMatrixError::Empty);
        }
        let machines = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * machines);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != machines {
                return Err(EtcMatrixError::Ragged {
                    row: i,
                    got: row.len(),
                    expected: machines,
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !(v.is_finite() && v > 0.0) {
                    return Err(EtcMatrixError::InvalidEntry {
                        app: i,
                        machine: j,
                        value: v,
                    });
                }
                data.push(v);
            }
        }
        Ok(EtcMatrix {
            apps: rows.len(),
            machines,
            data,
        })
    }

    /// A matrix with every entry equal to `value` (useful in tests).
    pub fn uniform(apps: usize, machines: usize, value: f64) -> Self {
        assert!(apps > 0 && machines > 0, "empty ETC matrix");
        assert!(
            value > 0.0 && value.is_finite(),
            "invalid uniform ETC value"
        );
        EtcMatrix {
            apps,
            machines,
            data: vec![value; apps * machines],
        }
    }

    /// Number of applications `|A|`.
    pub fn apps(&self) -> usize {
        self.apps
    }

    /// Number of machines `|M|`.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The ETC of application `app` on machine `machine`.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn get(&self, app: usize, machine: usize) -> f64 {
        assert!(app < self.apps, "application index {app} out of range");
        assert!(
            machine < self.machines,
            "machine index {machine} out of range"
        );
        self.data[app * self.machines + machine]
    }

    /// The row of ETCs for one application across all machines.
    pub fn row(&self, app: usize) -> &[f64] {
        assert!(app < self.apps, "application index {app} out of range");
        &self.data[app * self.machines..(app + 1) * self.machines]
    }

    /// Mutable row access (used by the consistency shapers).
    pub(crate) fn row_mut(&mut self, app: usize) -> &mut [f64] {
        assert!(app < self.apps, "application index {app} out of range");
        &mut self.data[app * self.machines..(app + 1) * self.machines]
    }

    /// The machine with the smallest ETC for `app` (the "MET machine").
    pub fn best_machine(&self, app: usize) -> usize {
        let row = self.row(app);
        row.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("ETC is never NaN"))
            .map(|(j, _)| j)
            .expect("non-empty row")
    }

    /// Iterates over all entries as `(app, machine, value)`.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.apps).flat_map(move |i| {
            (0..self.machines).map(move |j| (i, j, self.data[i * self.machines + j]))
        })
    }

    /// All values as a flat slice (row-major).
    pub fn values(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = EtcMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.apps(), 3);
        assert_eq!(m.machines(), 2);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged() {
        EtcMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive() {
        EtcMatrix::from_rows(vec![vec![1.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn rejects_empty() {
        EtcMatrix::from_rows(vec![]);
    }

    #[test]
    fn best_machine_finds_met() {
        let m = EtcMatrix::from_rows(vec![vec![5.0, 2.0, 9.0], vec![1.0, 8.0, 3.0]]);
        assert_eq!(m.best_machine(0), 1);
        assert_eq!(m.best_machine(1), 0);
    }

    #[test]
    fn uniform_matrix() {
        let m = EtcMatrix::uniform(2, 3, 7.0);
        assert!(m.entries().all(|(_, _, v)| v == 7.0));
        assert_eq!(m.entries().count(), 6);
        assert_eq!(m.values().len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        EtcMatrix::uniform(2, 2, 1.0).get(2, 0);
    }

    #[test]
    fn try_from_rows_reports_typed_errors() {
        assert_eq!(EtcMatrix::try_from_rows(vec![]), Err(EtcMatrixError::Empty));
        assert_eq!(
            EtcMatrix::try_from_rows(vec![vec![1.0, 2.0], vec![3.0]]),
            Err(EtcMatrixError::Ragged {
                row: 1,
                got: 1,
                expected: 2
            })
        );
        assert!(matches!(
            EtcMatrix::try_from_rows(vec![vec![1.0, f64::NAN]]),
            Err(EtcMatrixError::InvalidEntry {
                app: 0,
                machine: 1,
                ..
            })
        ));
        assert!(matches!(
            EtcMatrix::try_from_rows(vec![vec![1.0], vec![f64::INFINITY]]),
            Err(EtcMatrixError::InvalidEntry { app: 1, .. })
        ));
        assert!(EtcMatrix::try_from_rows(vec![vec![1.0, 2.0]]).is_ok());
    }
}
