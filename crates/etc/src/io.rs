//! ETC matrix file I/O.
//!
//! Researchers exchange ETC matrices as plain CSV (one row per application,
//! one column per machine); this module reads and writes that format so
//! generated instances can be archived alongside experiment results and
//! external instances (e.g. the Braun et al. benchmark suites) can be
//! loaded.

use crate::matrix::EtcMatrix;
use std::fmt;
use std::path::Path;

/// Errors from parsing an ETC CSV.
#[derive(Clone, Debug, PartialEq)]
pub enum EtcIoError {
    /// Filesystem failure (message of the underlying error).
    Io(String),
    /// A cell failed to parse as a positive finite number.
    BadCell {
        /// 0-based row.
        row: usize,
        /// 0-based column.
        col: usize,
        /// Offending text.
        text: String,
    },
    /// Rows have inconsistent widths.
    Ragged {
        /// 0-based row.
        row: usize,
        /// Cells found in that row.
        found: usize,
        /// Cells expected (from the first row).
        expected: usize,
    },
    /// The file contains no data rows.
    Empty,
}

impl fmt::Display for EtcIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtcIoError::Io(e) => write!(f, "I/O error: {e}"),
            EtcIoError::BadCell { row, col, text } => {
                write!(f, "cell ({row}, {col}) is not a positive number: '{text}'")
            }
            EtcIoError::Ragged {
                row,
                found,
                expected,
            } => write!(f, "row {row} has {found} cells, expected {expected}"),
            EtcIoError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for EtcIoError {}

/// Serializes a matrix as CSV (no header; one application per line).
pub fn to_csv(matrix: &EtcMatrix) -> String {
    let mut out = String::new();
    for i in 0..matrix.apps() {
        let row: Vec<String> = matrix.row(i).iter().map(|v| format!("{v}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parses a matrix from CSV text (blank lines and `#` comments skipped).
pub fn from_csv(text: &str) -> Result<EtcMatrix, EtcIoError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut expected = None;
    for (r, line) in text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .enumerate()
    {
        let mut row = Vec::new();
        for (c, cell) in line.split(',').enumerate() {
            let v: f64 = cell.trim().parse().map_err(|_| EtcIoError::BadCell {
                row: r,
                col: c,
                text: cell.trim().to_string(),
            })?;
            if !(v.is_finite() && v > 0.0) {
                return Err(EtcIoError::BadCell {
                    row: r,
                    col: c,
                    text: cell.trim().to_string(),
                });
            }
            row.push(v);
        }
        if let Some(e) = expected {
            if row.len() != e {
                return Err(EtcIoError::Ragged {
                    row: r,
                    found: row.len(),
                    expected: e,
                });
            }
        } else {
            expected = Some(row.len());
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(EtcIoError::Empty);
    }
    Ok(EtcMatrix::from_rows(rows))
}

/// Writes a matrix to a CSV file.
pub fn save_csv(matrix: &EtcMatrix, path: impl AsRef<Path>) -> Result<(), EtcIoError> {
    std::fs::write(path, to_csv(matrix)).map_err(|e| EtcIoError::Io(e.to_string()))
}

/// Reads a matrix from a CSV file.
pub fn load_csv(path: impl AsRef<Path>) -> Result<EtcMatrix, EtcIoError> {
    let text = std::fs::read_to_string(path).map_err(|e| EtcIoError::Io(e.to_string()))?;
    from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_cvb, EtcParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_matrix() {
        let m = generate_cvb(
            &mut StdRng::seed_from_u64(1),
            &EtcParams::paper_section_4_2(),
        );
        let parsed = from_csv(&to_csv(&m)).unwrap();
        assert_eq!(m, parsed);
    }

    #[test]
    fn file_round_trip() {
        let m = EtcMatrix::from_rows(vec![vec![1.5, 2.0], vec![3.25, 4.0]]);
        let path = std::env::temp_dir().join("fepia_etc_io_test.csv");
        save_csv(&m, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        assert_eq!(m, loaded);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# Braun-style instance\n\n10.0, 20.0\n30.0, 40.0\n";
        let m = from_csv(text).unwrap();
        assert_eq!(m.apps(), 2);
        assert_eq!(m.get(1, 1), 40.0);
    }

    #[test]
    fn bad_cell_reported_with_position() {
        let err = from_csv("1.0,2.0\n3.0,oops\n").unwrap_err();
        assert_eq!(
            err,
            EtcIoError::BadCell {
                row: 1,
                col: 1,
                text: "oops".into()
            }
        );
        assert!(err.to_string().contains("oops"));
    }

    #[test]
    fn nonpositive_rejected() {
        assert!(matches!(
            from_csv("1.0,-2.0\n"),
            Err(EtcIoError::BadCell { .. })
        ));
    }

    #[test]
    fn ragged_rejected() {
        assert_eq!(
            from_csv("1.0,2.0\n3.0\n").unwrap_err(),
            EtcIoError::Ragged {
                row: 1,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            from_csv("# only a comment\n").unwrap_err(),
            EtcIoError::Empty
        );
        assert!(matches!(
            load_csv("/definitely/missing"),
            Err(EtcIoError::Io(_))
        ));
    }
}
