//! Finite-difference gradients and unconstrained descent.
//!
//! The impact functions `f_ij` of the FePIA procedure are supplied by users
//! as black boxes; when no analytic gradient is given, the constrained solver
//! differentiates them numerically with central differences. A small
//! backtracking gradient-descent routine is also provided for smooth
//! unconstrained subproblems.

use crate::error::OptimError;
use crate::vector::VecN;

/// Central-difference gradient of `f` at `x` with relative step `h_rel`.
///
/// The step for component `r` is `h_rel · max(1, |x_r|)`, which keeps the
/// difference well-scaled for both tiny and huge operating points (sensor
/// loads in the paper's Table 2 are O(10²)–O(10³)).
pub fn gradient_central<F: Fn(&VecN) -> f64>(f: &F, x: &VecN, h_rel: f64) -> VecN {
    let n = x.dim();
    let mut g = VecN::zeros(n);
    let mut xp = x.clone();
    for r in 0..n {
        let h = h_rel * x[r].abs().max(1.0);
        let orig = xp[r];
        xp[r] = orig + h;
        let fp = f(&xp);
        xp[r] = orig - h;
        let fm = f(&xp);
        xp[r] = orig;
        g[r] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Forward-difference gradient (half the function evaluations of
/// [`gradient_central`], one order less accurate).
pub fn gradient_forward<F: Fn(&VecN) -> f64>(f: &F, x: &VecN, h_rel: f64) -> VecN {
    let n = x.dim();
    let f0 = f(x);
    let mut g = VecN::zeros(n);
    let mut xp = x.clone();
    for r in 0..n {
        let h = h_rel * x[r].abs().max(1.0);
        let orig = xp[r];
        xp[r] = orig + h;
        g[r] = (f(&xp) - f0) / h;
        xp[r] = orig;
    }
    g
}

/// Options for [`descend`].
#[derive(Clone, Copy, Debug)]
pub struct DescentOptions {
    /// Initial step size tried at each iteration.
    pub step0: f64,
    /// Backtracking shrink factor in (0, 1).
    pub shrink: f64,
    /// Armijo sufficient-decrease constant in (0, 1).
    pub armijo: f64,
    /// Convergence tolerance on the gradient norm.
    pub grad_tol: f64,
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Relative finite-difference step (when no analytic gradient).
    pub fd_step: f64,
}

impl Default for DescentOptions {
    fn default() -> Self {
        DescentOptions {
            step0: 1.0,
            shrink: 0.5,
            armijo: 1e-4,
            grad_tol: 1e-9,
            max_iter: 500,
            fd_step: 1e-6,
        }
    }
}

/// Result of [`descend`].
#[derive(Clone, Debug)]
pub struct DescentResult {
    /// The minimizer found.
    pub x: VecN,
    /// Objective value at `x`.
    pub value: f64,
    /// Gradient norm at `x`.
    pub grad_norm: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Gradient descent with Armijo backtracking line search.
///
/// `grad` may be `None`, in which case central differences are used. Intended
/// for the smooth, convex subproblems arising in the robustness-radius
/// refinement; it is not a general-purpose NLP solver.
pub fn descend<F, G>(
    f: F,
    grad: Option<G>,
    x0: VecN,
    opts: DescentOptions,
) -> Result<DescentResult, OptimError>
where
    F: Fn(&VecN) -> f64,
    G: Fn(&VecN) -> VecN,
{
    let mut x = x0;
    let mut fx = f(&x);
    if !fx.is_finite() {
        return Err(OptimError::NonFinite);
    }
    for it in 0..opts.max_iter {
        let g = match &grad {
            Some(gf) => gf(&x),
            None => gradient_central(&f, &x, opts.fd_step),
        };
        let gnorm = g.norm_l2();
        if !gnorm.is_finite() {
            return Err(OptimError::NonFinite);
        }
        if gnorm <= opts.grad_tol {
            return Ok(DescentResult {
                x,
                value: fx,
                grad_norm: gnorm,
                iterations: it,
            });
        }
        // Backtracking along -g.
        let mut step = opts.step0;
        let g2 = gnorm * gnorm;
        let mut improved = false;
        for _ in 0..60 {
            let cand = x.add_scaled(-step, &g);
            let fc = f(&cand);
            if fc.is_finite() && fc <= fx - opts.armijo * step * g2 {
                x = cand;
                fx = fc;
                improved = true;
                break;
            }
            step *= opts.shrink;
        }
        if !improved {
            // Line search stalled: treat current point as converged if the
            // step has underflowed, otherwise report failure.
            return Ok(DescentResult {
                x,
                value: fx,
                grad_norm: gnorm,
                iterations: it,
            });
        }
    }
    Err(OptimError::MaxIterations {
        iterations: opts.max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    type NoGrad = fn(&VecN) -> VecN;

    #[test]
    fn central_gradient_of_quadratic() {
        // f = x² + 3y², ∇f = (2x, 6y)
        let f = |v: &VecN| v[0] * v[0] + 3.0 * v[1] * v[1];
        let g = gradient_central(&f, &VecN::from([2.0, -1.0]), 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-6);
        assert!((g[1] + 6.0).abs() < 1e-6);
    }

    #[test]
    fn forward_gradient_close_to_central() {
        let f = |v: &VecN| (v[0] * v[1]).sin() + v[0];
        let x = VecN::from([0.3, 1.7]);
        let gc = gradient_central(&f, &x, 1e-6);
        let gf = gradient_forward(&f, &x, 1e-7);
        assert!(gc.distance_l2(&gf) < 1e-4);
    }

    #[test]
    fn gradient_scales_step_for_large_components() {
        // At x = 1e8 a fixed absolute step would lose all precision; the
        // relative step keeps the linear function's derivative exact.
        let f = |v: &VecN| 5.0 * v[0];
        let g = gradient_central(&f, &VecN::from([1e8]), 1e-8);
        assert!((g[0] - 5.0).abs() < 1e-4);
    }

    #[test]
    fn descend_quadratic_bowl() {
        let f = |v: &VecN| (v[0] - 1.0).powi(2) + (v[1] + 2.0).powi(2);
        let r = descend::<_, NoGrad>(f, None, VecN::zeros(2), DescentOptions::default()).unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-4, "{:?}", r);
        assert!((r.x[1] + 2.0).abs() < 1e-4, "{:?}", r);
    }

    #[test]
    fn descend_with_analytic_gradient() {
        let f = |v: &VecN| v[0] * v[0] + v[1] * v[1];
        let g = |v: &VecN| v.scaled(2.0);
        let r = descend(
            f,
            Some(g),
            VecN::from([3.0, -4.0]),
            DescentOptions::default(),
        )
        .unwrap();
        assert!(r.x.norm_l2() < 1e-4);
        assert!(r.value < 1e-8);
    }

    #[test]
    fn descend_rejects_non_finite_start() {
        let f = |_: &VecN| f64::NAN;
        assert!(matches!(
            descend::<_, NoGrad>(f, None, VecN::zeros(1), DescentOptions::default()),
            Err(OptimError::NonFinite)
        ));
    }

    #[test]
    fn descend_already_optimal() {
        let f = |v: &VecN| v[0] * v[0];
        let r = descend::<_, NoGrad>(f, None, VecN::zeros(1), DescentOptions::default()).unwrap();
        assert_eq!(r.iterations, 0);
    }
}
