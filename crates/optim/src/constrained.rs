//! Min-norm-to-level-set solver.
//!
//! The paper's Eq. 1 asks for the point on the boundary relationship
//! `f_ij(π) = β` that is closest (Euclidean) to the operating point
//! `π_orig`. For linear `f_ij` the answer is the point-to-hyperplane
//! distance ([`crate::hyperplane::Hyperplane`]); this module solves the
//! general case the paper allows in §3.2 — any convex impact function
//! (`x^p`, `e^{px}`, `x log x`, sums and positive multiples thereof).
//!
//! Algorithm (sequential linearization, valid for convex `f` with the
//! operating point strictly inside the robust region `f(π_orig) < β`):
//!
//! 1. **Seed**: march along the gradient direction at `π_orig` (falling back
//!    to the all-ones and basis directions when the gradient vanishes or the
//!    boundary is unreachable that way) and locate the boundary crossing with
//!    Brent's method.
//! 2. **Refine**: at the current boundary point `x_k`, linearize the boundary
//!    as its tangent hyperplane, project `π_orig` onto it, and pull the
//!    projection back onto the true level set along the local gradient.
//!    Iterate until the distance stabilizes.
//!
//! For linear `f` step 2 is exact after one iteration, so the numeric path
//! degrades gracefully to the analytic one (this is tested).

use crate::error::OptimError;
use crate::gradient::gradient_central;
use crate::root1d::{bracket_upward, brent, RootOptions};
use crate::vector::VecN;
use std::cell::Cell;

/// The problem `min ‖x − origin‖₂  s.t.  f(x) = level`, with
/// `f(origin) < level` expected (the operating point is inside the robust
/// region).
pub struct LevelSetProblem<'a> {
    /// The impact function `f_ij`.
    pub f: &'a dyn Fn(&VecN) -> f64,
    /// Analytic gradient of `f`, if available (otherwise central differences).
    pub grad: Option<&'a dyn Fn(&VecN) -> VecN>,
    /// The assumed operating point `π_orig`.
    pub origin: &'a VecN,
    /// The boundary value `β`.
    pub level: f64,
}

/// Tunables for the solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverOptions {
    /// Relative convergence tolerance on the radius between refinements.
    pub tol: f64,
    /// Maximum refinement iterations.
    pub max_outer: usize,
    /// Boundary is declared unreachable beyond
    /// `t_max_factor · max(1, ‖origin‖)` along every probe direction.
    pub t_max_factor: f64,
    /// Relative finite-difference step for numeric gradients.
    pub fd_step: f64,
    /// Relative magnitude of the deterministic perturbation applied to the
    /// seed probe directions. `0.0` (the default) probes the canonical
    /// directions exactly — results are bitwise identical to builds before
    /// this knob existed. Resilient restarts raise it so a retry explores a
    /// rotated seed fan instead of replaying the failed one.
    pub seed_jitter: f64,
    /// Options for the 1-D boundary-crossing root solves.
    pub root: RootOptions,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tol: 1e-9,
            max_outer: 100,
            t_max_factor: 1e12,
            fd_step: 1e-6,
            seed_jitter: 0.0,
            root: RootOptions {
                x_tol: 1e-11,
                f_tol: 1e-10,
                max_iter: 200,
            },
        }
    }
}

/// Solution of a [`LevelSetProblem`].
#[derive(Clone, Debug)]
pub struct LevelSetSolution {
    /// The closest boundary point found — the `π_j*(φ_i)` of the paper's
    /// Fig. 1.
    pub point: VecN,
    /// `‖point − origin‖₂` — the robustness radius contribution of this
    /// boundary.
    pub radius: f64,
    /// Refinement iterations used.
    pub iterations: usize,
    /// Whether the refinement loop reached its tolerance (`false` means the
    /// iteration cap was hit; the best iterate found is still returned).
    pub converged: bool,
    /// True when `f(origin) ≥ level`: the requirement is already violated at
    /// the operating point, so the radius is 0.
    pub already_violating: bool,
    /// Impact-function evaluations consumed, including the probes behind
    /// finite-difference gradients and the 1-D root solves.
    pub f_evals: u64,
    /// Gradient evaluations (analytic calls, or finite-difference
    /// assemblies — each of which additionally costs `2n` `f_evals`).
    pub grad_evals: u64,
}

/// Per-solve tallies, shared by the counting closures below.
#[derive(Default)]
struct SolveCounters {
    f: Cell<u64>,
    grad: Cell<u64>,
    seed_fallbacks: Cell<u64>,
    bracket_failures: Cell<u64>,
}

/// Reusable scratch state for repeated [`min_norm_to_level_set_with`] calls.
///
/// The seed stage probes `2n + 1` fixed directions (the diagonal and ± every
/// axis) that depend only on the problem dimension; the workspace caches
/// them, plus the seed buffer, so a compiled analysis plan can solve the
/// same numeric feature for thousands of origins without rebuilding them.
/// Reusing a workspace never changes results: the probe directions and their
/// order are identical to the ones a fresh solve would construct.
#[derive(Default)]
pub struct SolverWorkspace {
    dim: usize,
    probes: Vec<VecN>,
    seeds: Vec<VecN>,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers are grown lazily on first use.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }

    /// (Re)builds the fixed probe directions for dimension `n`.
    fn ensure_dim(&mut self, n: usize) {
        if self.dim == n && !self.probes.is_empty() {
            return;
        }
        self.probes.clear();
        self.probes.reserve(2 * n + 1);
        self.probes.push(VecN::filled(n, 1.0 / (n as f64).sqrt()));
        for i in 0..n {
            self.probes.push(VecN::basis(n, i));
            self.probes.push(-&VecN::basis(n, i));
        }
        self.dim = n;
    }
}

/// SplitMix64 finalizer, used to derive the deterministic seed jitter.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Rotates `dir` by a deterministic pseudo-random perturbation of relative
/// magnitude `amount`. The perturbation is a pure function of
/// `(amount bits, probe index, component index)`, so a retry with the same
/// jitter replays the same rotated fan.
fn jitter_dir(dir: &VecN, amount: f64, probe: usize) -> VecN {
    let salt = amount.to_bits() ^ (probe as u64).wrapping_mul(0x2545f4914f6cdd1d);
    let mut v = dir.clone();
    for j in 0..v.dim() {
        let h = splitmix64(salt ^ (j as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        v[j] += amount * (u - 0.5);
    }
    v.normalized().unwrap_or_else(|| dir.clone())
}

fn eval_grad(p: &LevelSetProblem<'_>, x: &VecN, fd_step: f64) -> VecN {
    match p.grad {
        Some(g) => g(x),
        None => gradient_central(&p.f, x, fd_step),
    }
}

/// Finds `s` such that `f(base + s·dir) = level`, searching away from `base`
/// in the `+dir` sense when inside (`f(base) < level`) and in the `−dir`
/// sense when outside. `dir` need not be normalized.
fn cross_along(
    p: &LevelSetProblem<'_>,
    base: &VecN,
    dir: &VecN,
    scale: f64,
    opts: &SolverOptions,
) -> Result<VecN, OptimError> {
    let h0 = (p.f)(base) - p.level;
    if !h0.is_finite() {
        return Err(OptimError::NonFinite);
    }
    if h0.abs() <= opts.root.f_tol {
        return Ok(base.clone());
    }
    // Walk toward the boundary: along +dir when inside (f < level), along
    // −dir when outside. The sign flip on g keeps g(0) < 0 in both cases,
    // which is what the one-sided bracket expects.
    let sense = if h0 < 0.0 { 1.0 } else { -1.0 };
    let d = dir.scaled(sense);
    let g = |t: f64| sense * ((p.f)(&base.add_scaled(t, &d)) - p.level);
    let (lo, hi) = bracket_upward(g, 1e-3 * scale.max(1.0), opts.t_max_factor * scale, 2.0)?;
    if lo == hi {
        return Ok(base.clone());
    }
    let root = brent(g, lo, hi, opts.root)?;
    Ok(base.add_scaled(root.x, &d))
}

/// Solves `min ‖x − origin‖₂ s.t. f(x) = level`.
///
/// Returns [`OptimError::Unreachable`] when the boundary cannot be reached
/// along any probe direction (the robustness radius is unbounded — callers
/// map this to `+∞`), and [`OptimError::Degenerate`] for a zero-dimensional
/// perturbation.
///
/// When `fepia-obs` is enabled, each solve records evaluation counts,
/// refinement iterations, seed fallbacks, bracket failures and the
/// convergence outcome under `optim.solver.*`, and emits one
/// `solver.solve` event.
pub fn min_norm_to_level_set(
    p: &LevelSetProblem<'_>,
    opts: &SolverOptions,
) -> Result<LevelSetSolution, OptimError> {
    let mut ws = SolverWorkspace::new();
    min_norm_to_level_set_with(p, opts, &mut ws)
}

/// [`min_norm_to_level_set`] with a caller-provided [`SolverWorkspace`].
///
/// Results are bitwise identical to the workspace-free entry point; the
/// workspace only amortizes the per-solve probe-direction and seed-buffer
/// allocations across repeated calls (compiled analysis plans hold one per
/// evaluation context).
pub fn min_norm_to_level_set_with(
    p: &LevelSetProblem<'_>,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace,
) -> Result<LevelSetSolution, OptimError> {
    let _span = fepia_obs::span!("optim.min_norm");
    let counters = SolveCounters::default();
    let result = solve_counted(p, opts, &counters, ws);
    if fepia_obs::enabled() {
        record_solve(&counters, &result);
    }
    result
}

fn record_solve(counters: &SolveCounters, result: &Result<LevelSetSolution, OptimError>) {
    let reg = fepia_obs::global();
    reg.counter("optim.solver.calls").inc();
    reg.counter("optim.solver.f_evals").add(counters.f.get());
    reg.counter("optim.solver.grad_evals")
        .add(counters.grad.get());
    reg.counter("optim.solver.seed_fallbacks")
        .add(counters.seed_fallbacks.get());
    reg.counter("optim.solver.bracket_failures")
        .add(counters.bracket_failures.get());
    let outcome = match result {
        Ok(sol) if sol.already_violating => "already_violating",
        Ok(sol) if sol.converged => "converged",
        Ok(_) => "iteration_cap",
        Err(OptimError::Unreachable) => "unreachable",
        Err(_) => "error",
    };
    reg.counter(&format!("optim.solver.outcome.{outcome}"))
        .inc();
    if let Ok(sol) = result {
        reg.histogram_with("optim.solver.iterations", || {
            fepia_obs::Histogram::exponential(1.0, 2.0, 12)
        })
        .record(sol.iterations as f64);
        fepia_obs::Event::new("solver.solve")
            .field("outcome", outcome)
            .field("radius", sol.radius)
            .field("iterations", sol.iterations)
            .field("f_evals", sol.f_evals)
            .field("grad_evals", sol.grad_evals)
            .emit();
    } else {
        fepia_obs::Event::new("solver.solve")
            .field("outcome", outcome)
            .field("f_evals", counters.f.get())
            .field("grad_evals", counters.grad.get())
            .emit();
    }
}

fn solve_counted(
    outer: &LevelSetProblem<'_>,
    opts: &SolverOptions,
    counters: &SolveCounters,
    ws: &mut SolverWorkspace,
) -> Result<LevelSetSolution, OptimError> {
    // Route every impact-function call through a counting wrapper so the
    // reported `f_evals` covers seeds, root solves and FD gradient probes.
    let f_counting = |x: &VecN| {
        counters.f.set(counters.f.get() + 1);
        (outer.f)(x)
    };
    let inner = LevelSetProblem {
        f: &f_counting,
        grad: outer.grad,
        origin: outer.origin,
        level: outer.level,
    };
    let p = &inner;

    let n = p.origin.dim();
    if n == 0 {
        return Err(OptimError::Degenerate(
            "zero-dimensional perturbation".into(),
        ));
    }
    // Fault injection: pretend the refinement budget ran out before starting.
    // The resilient wrapper re-draws on retry, exercising the recovery path.
    if fepia_chaos::should_fire("optim.nonconvergence") {
        return Err(OptimError::MaxIterations {
            iterations: opts.max_outer,
        });
    }
    let f0 = (p.f)(p.origin);
    if !f0.is_finite() || !p.level.is_finite() {
        return Err(OptimError::NonFinite);
    }
    if f0 >= p.level {
        return Ok(LevelSetSolution {
            point: p.origin.clone(),
            radius: 0.0,
            iterations: 0,
            converged: true,
            already_violating: true,
            f_evals: counters.f.get(),
            grad_evals: counters.grad.get(),
        });
    }

    let scale = p.origin.norm_l2().max(1.0);

    // --- Seed: march to the boundary along candidate directions. ---
    // The descent below is local, so seeds must cover enough of the sphere
    // to reach the global minimum of a convex level set: the gradient
    // direction, the diagonal, and ± every axis. The dimension-only probes
    // (diagonal + axes) come from the workspace; only the gradient direction
    // is problem-specific.
    ws.ensure_dim(n);
    let SolverWorkspace { probes, seeds, .. } = ws;
    counters.grad.set(counters.grad.get() + 1);
    let g0 = eval_grad(p, p.origin, opts.fd_step);
    let grad_dir = g0.normalized();

    seeds.clear();
    for (i, dir) in grad_dir.iter().chain(probes.iter()).enumerate() {
        let jittered;
        let dir = if opts.seed_jitter != 0.0 {
            jittered = jitter_dir(dir, opts.seed_jitter, i);
            &jittered
        } else {
            dir
        };
        match cross_along(p, p.origin, dir, scale, opts) {
            Ok(x) => seeds.push(x),
            Err(OptimError::Unreachable) => {
                counters
                    .seed_fallbacks
                    .set(counters.seed_fallbacks.get() + 1);
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    if seeds.is_empty() {
        return Err(OptimError::Unreachable);
    }
    seeds.sort_by(|a, b| {
        a.distance_l2(p.origin)
            .partial_cmp(&b.distance_l2(p.origin))
            .expect("distance is never NaN")
    });
    // The gradient seed (first candidate) is the best-informed start; keep
    // it plus the closest few crossings as multi-start points.
    seeds.truncate(4);

    // --- Refine: ray descent over directions, from each seed. ---
    // Parametrize boundary points as `origin + t(u)·u` with `u` on the unit
    // sphere; `t(u)` is the (unique, for convex f) boundary crossing along
    // `u`. At a minimum, `u` is aligned with ∇f — so we descend on the
    // sphere: rotate `u` toward the tangential component of ∇f (which
    // strictly decreases `t`), with a backtracking step. Every iterate is
    // feasible by construction and `t` decreases monotonically. The descent
    // is local, hence the multi-start over seeds.

    // Crossing distance along a direction, or None if the boundary is not
    // reachable that way.
    let crossing = |dir: &VecN, hint: f64| -> Result<Option<f64>, OptimError> {
        let g = |s: f64| (p.f)(&p.origin.add_scaled(s, dir)) - p.level;
        match bracket_upward(
            g,
            (0.5 * hint).max(1e-6 * scale),
            opts.t_max_factor * scale,
            2.0,
        ) {
            Ok((lo, hi)) if lo == hi => Ok(Some(0.0)),
            Ok((lo, hi)) => Ok(Some(brent(g, lo, hi, opts.root)?.x)),
            Err(OptimError::Unreachable) => {
                counters
                    .bracket_failures
                    .set(counters.bracket_failures.get() + 1);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    };

    let mut best: Option<(VecN, f64, bool)> = None; // (u, t, converged)
    let mut iterations = 0;
    for x_seed in seeds.iter() {
        let mut t = x_seed.distance_l2(p.origin);
        let Some(mut u) = (x_seed - p.origin).normalized() else {
            // Seed coincides with the origin: zero radius, cannot improve.
            return Ok(LevelSetSolution {
                point: x_seed.clone(),
                radius: 0.0,
                iterations,
                converged: true,
                already_violating: false,
                f_evals: counters.f.get(),
                grad_evals: counters.grad.get(),
            });
        };

        let mut converged = false;
        for _ in 0..opts.max_outer {
            iterations += 1;
            let x = p.origin.add_scaled(t, &u);
            counters.grad.set(counters.grad.get() + 1);
            let g = eval_grad(p, &x, opts.fd_step);
            let gnorm = g.norm_l2();
            if !gnorm.is_finite() {
                return Err(OptimError::NonFinite);
            }
            if gnorm <= 1e-14 {
                converged = true; // flat spot: nothing to align with
                break;
            }
            // Tangential component of the (outward) normal at x.
            let radial = g.dot(&u);
            let w = g.add_scaled(-radial, &u);
            let wnorm = w.norm_l2();
            if wnorm <= 1e-10 * gnorm {
                converged = true; // u aligned with ∇f: first-order optimal
                break;
            }
            // Backtracking rotation toward w (the sense that shrinks t).
            let mut eta = 1.0 / gnorm;
            let mut accepted = false;
            for _ in 0..40 {
                let cand = u.add_scaled(eta, &w);
                let Some(cand) = cand.normalized() else {
                    eta *= 0.5;
                    continue;
                };
                match crossing(&cand, t)? {
                    Some(tc) if tc < t * (1.0 - 1e-15) => {
                        t = tc;
                        u = cand;
                        accepted = true;
                        break;
                    }
                    _ => eta *= 0.5,
                }
            }
            if !accepted {
                // No rotation improves t: numerically optimal.
                converged = true;
                break;
            }
            if t <= opts.tol * scale {
                converged = true; // boundary touches the origin
                break;
            }
        }
        if best.as_ref().is_none_or(|(_, bt, _)| t < *bt) {
            best = Some((u, t, converged));
        }
    }

    let (u, t, converged) = best.expect("at least one seed");
    Ok(LevelSetSolution {
        point: p.origin.add_scaled(t, &u),
        radius: t,
        iterations,
        converged,
        already_violating: false,
        f_evals: counters.f.get(),
        grad_evals: counters.grad.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Hyperplane;

    fn solve_simple(
        f: impl Fn(&VecN) -> f64,
        origin: &[f64],
        level: f64,
    ) -> Result<LevelSetSolution, OptimError> {
        let origin = VecN::from(origin);
        let p = LevelSetProblem {
            f: &f,
            grad: None,
            origin: &origin,
            level,
        };
        min_norm_to_level_set(&p, &SolverOptions::default())
    }

    #[test]
    fn linear_matches_hyperplane_distance() {
        // f(x) = 2x + 3y, boundary at 12, origin (1, 1): plane distance.
        let normal = VecN::from([2.0, 3.0]);
        let h = Hyperplane::new(normal.clone(), 12.0).unwrap();
        let origin = VecN::from([1.0, 1.0]);
        let sol = solve_simple(|v: &VecN| 2.0 * v[0] + 3.0 * v[1], &[1.0, 1.0], 12.0).unwrap();
        assert!(
            (sol.radius - h.distance(&origin)).abs() < 1e-7,
            "numeric {} vs analytic {}",
            sol.radius,
            h.distance(&origin)
        );
        assert!(sol.point.distance_l2(&h.project(&origin)) < 1e-5);
    }

    #[test]
    fn sphere_from_center_uses_fallback_direction() {
        // f = x² + y², origin at 0 where ∇f = 0: closest boundary point on the
        // circle of radius √β, distance √β in every direction.
        let sol = solve_simple(|v: &VecN| v.dot(v), &[0.0, 0.0], 4.0).unwrap();
        assert!((sol.radius - 2.0).abs() < 1e-6, "radius {}", sol.radius);
    }

    #[test]
    fn ellipse_finds_nearest_axis_point() {
        // f = x²/4 + y² = 1 from the origin: nearest points (0, ±1), radius 1.
        let sol =
            solve_simple(|v: &VecN| v[0] * v[0] / 4.0 + v[1] * v[1], &[0.1, 0.2], 1.0).unwrap();
        // True distance computed by dense parametric search over the ellipse.
        assert!(
            (sol.radius - 0.7984364).abs() < 1e-3,
            "radius {} (expected distance from (0.1,0.2) to ellipse ≈ 0.7984)",
            sol.radius
        );
    }

    #[test]
    fn exponential_boundary() {
        // f = e^{x+y} = e² ⇒ x + y = 2; from origin distance √2 at (1,1).
        let sol = solve_simple(
            |v: &VecN| (v[0] + v[1]).exp(),
            &[0.0, 0.0],
            std::f64::consts::E * std::f64::consts::E,
        )
        .unwrap();
        assert!(
            (sol.radius - 2f64.sqrt()).abs() < 1e-5,
            "radius {}",
            sol.radius
        );
        assert!((sol.point[0] - 1.0).abs() < 1e-4);
        assert!((sol.point[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn xlogx_convex_boundary() {
        // f(x, y) = x log x + y log y on positive orthant, origin (2, 2),
        // boundary level symmetric ⇒ closest point on the diagonal.
        let f = |v: &VecN| {
            let g = |t: f64| if t > 0.0 { t * t.ln() } else { 0.0 };
            g(v[0]) + g(v[1])
        };
        let level = 2.0 * 5.0 * 5f64.ln(); // attained at (5,5)
        let sol = solve_simple(f, &[2.0, 2.0], level).unwrap();
        assert!((sol.point[0] - 5.0).abs() < 1e-3, "{:?}", sol.point);
        assert!((sol.point[1] - 5.0).abs() < 1e-3, "{:?}", sol.point);
        assert!((sol.radius - (2f64.sqrt() * 3.0)).abs() < 1e-3);
    }

    #[test]
    fn unreachable_boundary_is_detected() {
        // f < 1 everywhere, boundary at 2: infinite robustness.
        let sol = solve_simple(|v: &VecN| 1.0 - (-v.dot(v)).exp(), &[0.0, 0.0], 2.0);
        assert_eq!(sol.unwrap_err(), OptimError::Unreachable);
    }

    #[test]
    fn already_violating_returns_zero_radius() {
        let sol = solve_simple(|v: &VecN| v[0], &[5.0], 3.0).unwrap();
        assert!(sol.already_violating);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn zero_dimension_is_degenerate() {
        let sol = solve_simple(|_: &VecN| 0.0, &[], 1.0);
        assert!(matches!(sol, Err(OptimError::Degenerate(_))));
    }

    #[test]
    fn analytic_gradient_is_used() {
        // Provide an exact gradient; result must match the FD path.
        let f = |v: &VecN| v[0] * v[0] + 2.0 * v[1] * v[1];
        let g = |v: &VecN| VecN::from([2.0 * v[0], 4.0 * v[1]]);
        let origin = VecN::from([0.5, 0.5]);
        let p = LevelSetProblem {
            f: &f,
            grad: Some(&g),
            origin: &origin,
            level: 9.0,
        };
        let with_grad = min_norm_to_level_set(&p, &SolverOptions::default()).unwrap();
        let p2 = LevelSetProblem {
            f: &f,
            grad: None,
            origin: &origin,
            level: 9.0,
        };
        let without = min_norm_to_level_set(&p2, &SolverOptions::default()).unwrap();
        assert!((with_grad.radius - without.radius).abs() < 1e-5);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical() {
        // A shared workspace across solves of different dimensions must give
        // exactly the results of fresh per-call solves.
        let mut ws = SolverWorkspace::new();
        for dim in [2usize, 3, 2] {
            let origin = VecN::filled(dim, 0.25);
            let f = |v: &VecN| v.dot(v);
            let p = LevelSetProblem {
                f: &f,
                grad: None,
                origin: &origin,
                level: 9.0,
            };
            let fresh = min_norm_to_level_set(&p, &SolverOptions::default()).unwrap();
            let reused =
                min_norm_to_level_set_with(&p, &SolverOptions::default(), &mut ws).unwrap();
            assert_eq!(fresh.radius.to_bits(), reused.radius.to_bits());
            assert_eq!(fresh.point, reused.point);
            assert_eq!(fresh.iterations, reused.iterations);
            assert_eq!(fresh.f_evals, reused.f_evals);
            assert_eq!(fresh.grad_evals, reused.grad_evals);
        }
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        /// Random positive-definite diagonal quadratic `f(x) = Σ aᵢxᵢ²`
        /// with origin inside the level set.
        fn quad_problem() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, f64)> {
            (
                prop::collection::vec(0.2..5.0f64, 3),
                prop::collection::vec(-2.0..2.0f64, 3),
                5.0..50.0f64,
            )
        }

        proptest! {
            /// Solver output is feasible (on the boundary), consistent
            /// (radius = distance to origin), and optimal up to tolerance
            /// (no sampled boundary direction is closer).
            #[test]
            fn quadratic_level_sets((coeffs, origin, margin) in quad_problem()) {
                let a = coeffs.clone();
                let f = move |v: &VecN| {
                    v.as_slice().iter().zip(a.iter()).map(|(x, c)| c * x * x).sum::<f64>()
                };
                let origin = VecN::new(origin);
                let level = f(&origin) + margin;
                let p = LevelSetProblem { f: &f, grad: None, origin: &origin, level };
                let sol = min_norm_to_level_set(&p, &SolverOptions::default()).unwrap();

                // Feasible…
                prop_assert!((f(&sol.point) - level).abs() < 1e-6 * (1.0 + level.abs()),
                    "boundary residual {}", f(&sol.point) - level);
                // …consistent…
                prop_assert!((sol.point.distance_l2(&origin) - sol.radius).abs() < 1e-9);
                // …and optimal: probe 200 deterministic directions; every
                // boundary crossing must be at distance ≥ radius (within a
                // small relative slack for the crossing root tolerance).
                for k in 0..200u32 {
                    // Low-discrepancy-ish direction from k.
                    let d = VecN::from([
                        (k as f64 * 0.618).sin(),
                        (k as f64 * 0.414).cos(),
                        ((k as f64) * 0.271).sin() - 0.5,
                    ]);
                    let Some(dir) = d.normalized() else { continue };
                    let g = |t: f64| f(&origin.add_scaled(t, &dir)) - level;
                    if let Ok((lo, hi)) = crate::root1d::bracket_upward(g, 0.1, 1e6, 2.0) {
                        if lo == hi { continue; }
                        let root = crate::root1d::brent(g, lo, hi, crate::root1d::RootOptions::default()).unwrap();
                        prop_assert!(root.x >= sol.radius * (1.0 - 1e-4) - 1e-9,
                            "direction {k} crosses at {} < solver radius {}", root.x, sol.radius);
                    }
                }
            }

            /// Monotonicity: raising the level (loosening the requirement)
            /// never shrinks the radius.
            #[test]
            fn radius_monotone_in_level((coeffs, origin, margin) in quad_problem(), extra in 1.0..20.0f64) {
                let a = coeffs.clone();
                let f = move |v: &VecN| {
                    v.as_slice().iter().zip(a.iter()).map(|(x, c)| c * x * x).sum::<f64>()
                };
                let origin = VecN::new(origin);
                let base = f(&origin) + margin;
                let solve = |level: f64| {
                    let p = LevelSetProblem { f: &f, grad: None, origin: &origin, level };
                    min_norm_to_level_set(&p, &SolverOptions::default()).unwrap().radius
                };
                let r1 = solve(base);
                let r2 = solve(base + extra);
                prop_assert!(r2 >= r1 - 1e-6 * (1.0 + r1), "radius shrank: {r1} -> {r2}");
            }
        }
    }

    #[test]
    fn high_dimension_linear() {
        // 20-dimensional linear boundary — the size of the paper's C vector.
        let n = 20;
        let coeffs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let c2 = coeffs.clone();
        let f = move |v: &VecN| {
            v.as_slice()
                .iter()
                .zip(coeffs.iter())
                .map(|(x, c)| c * x)
                .sum::<f64>()
        };
        let origin = VecN::filled(n, 1.0);
        let level = 2.0 * f(&origin);
        let p = LevelSetProblem {
            f: &f,
            grad: None,
            origin: &origin,
            level,
        };
        let sol = min_norm_to_level_set(&p, &SolverOptions::default()).unwrap();
        let h = Hyperplane::new(VecN::new(c2), level).unwrap();
        assert!((sol.radius - h.distance(&origin)).abs() < 1e-6);
    }
}
