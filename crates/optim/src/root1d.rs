//! Scalar root finding.
//!
//! The general robustness-radius solver reduces boundary crossings to
//! one-dimensional root problems: along a ray `π_orig + t·d`, the boundary is
//! crossed where `g(t) = f(π_orig + t·d) − β` changes sign. [`bisect`] is the
//! guaranteed workhorse; [`brent`] converges much faster on smooth functions
//! and falls back to bisection steps when interpolation misbehaves.

use crate::error::OptimError;

/// Stopping criteria for the 1-D root finders.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the abscissa.
    pub x_tol: f64,
    /// Absolute tolerance on the residual |g(t)|.
    pub f_tol: f64,
    /// Maximum iterations before giving up.
    pub max_iter: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        RootOptions {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iter: 200,
        }
    }
}

/// A root found by a 1-D solver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Root {
    /// Abscissa of the root.
    pub x: f64,
    /// Residual `g(x)` at the returned abscissa.
    pub residual: f64,
    /// Iterations used.
    pub iterations: usize,
}

fn check_bracket(fa: f64, fb: f64, a: f64, b: f64) -> Result<(), OptimError> {
    if !fa.is_finite() || !fb.is_finite() {
        return Err(OptimError::NonFinite);
    }
    if fa * fb > 0.0 {
        return Err(OptimError::NoBracket { a, b });
    }
    Ok(())
}

/// Bisection on `[a, b]`. Requires `g(a)` and `g(b)` to have opposite signs
/// (or one of them to be exactly zero). Linear convergence, bulletproof.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut g: F,
    mut a: f64,
    mut b: f64,
    opts: RootOptions,
) -> Result<Root, OptimError> {
    let mut fa = g(a);
    let fb = g(b);
    check_bracket(fa, fb, a, b)?;
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            residual: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            residual: 0.0,
            iterations: 0,
        });
    }
    for it in 1..=opts.max_iter {
        let mid = 0.5 * (a + b);
        let fm = g(mid);
        if !fm.is_finite() {
            return Err(OptimError::NonFinite);
        }
        if fm.abs() <= opts.f_tol || (b - a).abs() <= opts.x_tol {
            return Ok(Root {
                x: mid,
                residual: fm,
                iterations: it,
            });
        }
        if fa * fm < 0.0 {
            b = mid;
        } else {
            a = mid;
            fa = fm;
        }
    }
    Err(OptimError::MaxIterations {
        iterations: opts.max_iter,
    })
}

/// Brent's method on `[a, b]`: inverse quadratic interpolation + secant +
/// bisection safeguards. Superlinear on smooth functions, never worse than
/// bisection.
pub fn brent<F: FnMut(f64) -> f64>(
    mut g: F,
    mut a: f64,
    mut b: f64,
    opts: RootOptions,
) -> Result<Root, OptimError> {
    let mut fa = g(a);
    let mut fb = g(b);
    check_bracket(fa, fb, a, b)?;
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for it in 1..=opts.max_iter {
        if fb.abs() <= opts.f_tol {
            return Ok(Root {
                x: b,
                residual: fb,
                iterations: it,
            });
        }
        if (b - a).abs() <= opts.x_tol {
            return Ok(Root {
                x: b,
                residual: fb,
                iterations: it,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // inverse quadratic interpolation
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // secant
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let cond_range = !((lo.min(b) < s) && (s < lo.max(b)));
        let cond_mflag = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond_dflag = !mflag && (s - b).abs() >= d.abs() / 2.0;
        let cond_tol_m = mflag && (b - c).abs() < opts.x_tol;
        let cond_tol_d = !mflag && d.abs() < opts.x_tol;
        if cond_range || cond_mflag || cond_dflag || cond_tol_m || cond_tol_d {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = g(s);
        if !fs.is_finite() {
            return Err(OptimError::NonFinite);
        }
        d = b - c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(OptimError::MaxIterations {
        iterations: opts.max_iter,
    })
}

/// Expands an interval `[0, t]` geometrically until `g` changes sign (finding
/// an upper bracket for the boundary crossing along a ray), or returns
/// [`OptimError::Unreachable`] if no sign change occurs before `t_max`.
///
/// Assumes `g(0) < 0` (operating point strictly inside the robust region).
pub fn bracket_upward<F: FnMut(f64) -> f64>(
    mut g: F,
    t0: f64,
    t_max: f64,
    growth: f64,
) -> Result<(f64, f64), OptimError> {
    assert!(t0 > 0.0 && growth > 1.0, "invalid bracketing parameters");
    let g0 = g(0.0);
    if !g0.is_finite() {
        return Err(OptimError::NonFinite);
    }
    if g0 >= 0.0 {
        // Already at/over the boundary: degenerate bracket at 0.
        return Ok((0.0, 0.0));
    }
    let mut lo = 0.0;
    let mut hi = t0;
    loop {
        let gh = g(hi);
        if !gh.is_finite() {
            return Err(OptimError::NonFinite);
        }
        if gh >= 0.0 {
            return Ok((lo, hi));
        }
        lo = hi;
        hi *= growth;
        if hi > t_max {
            return Err(OptimError::Unreachable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bisect_linear() {
        let r = bisect(|x| 2.0 * x - 3.0, 0.0, 10.0, RootOptions::default()).unwrap();
        assert!((r.x - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bisect_exact_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, RootOptions::default()).unwrap();
        assert_eq!(r.x, 0.0);
        let r = bisect(|x| x - 1.0, 0.0, 1.0, RootOptions::default()).unwrap();
        assert_eq!(r.x, 1.0);
    }

    #[test]
    fn bisect_reports_no_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, RootOptions::default()),
            Err(OptimError::NoBracket { .. })
        ));
    }

    #[test]
    fn bisect_rejects_nan() {
        assert_eq!(
            bisect(|_| f64::NAN, 0.0, 1.0, RootOptions::default()),
            Err(OptimError::NonFinite)
        );
    }

    #[test]
    fn brent_cubic() {
        let r = brent(
            |x| (x + 3.0) * (x - 1.0) * (x - 1.0) * (x - 1.0),
            -4.0,
            0.0,
            RootOptions::default(),
        )
        .unwrap();
        assert!((r.x + 3.0).abs() < 1e-9, "root at -3, got {}", r.x);
    }

    #[test]
    fn brent_transcendental() {
        // cos x = x near 0.739085
        let r = brent(|x| x.cos() - x, 0.0, 1.0, RootOptions::default()).unwrap();
        assert!((r.x - 0.739_085_133_2).abs() < 1e-8);
    }

    #[test]
    fn brent_faster_than_bisect_on_smooth() {
        let opts = RootOptions {
            x_tol: 1e-14,
            f_tol: 1e-14,
            max_iter: 500,
        };
        let rb = brent(|x| x.exp() - 5.0, 0.0, 4.0, opts).unwrap();
        let ri = bisect(|x| x.exp() - 5.0, 0.0, 4.0, opts).unwrap();
        assert!((rb.x - 5f64.ln()).abs() < 1e-10);
        assert!((ri.x - 5f64.ln()).abs() < 1e-10);
        assert!(rb.iterations < ri.iterations);
    }

    #[test]
    fn bracket_finds_crossing() {
        // g(t) = t^2 - 100, crossing at t = 10
        let (lo, hi) = bracket_upward(|t| t * t - 100.0, 1.0, 1e9, 2.0).unwrap();
        assert!(lo < 10.0 && 10.0 <= hi);
    }

    #[test]
    fn bracket_unreachable() {
        assert_eq!(
            bracket_upward(|_| -1.0, 1.0, 1e6, 2.0),
            Err(OptimError::Unreachable)
        );
    }

    #[test]
    fn bracket_degenerate_at_boundary() {
        assert_eq!(bracket_upward(|_| 0.0, 1.0, 1e6, 2.0), Ok((0.0, 0.0)));
    }

    proptest! {
        /// For monotone linear functions both solvers find the analytic root.
        #[test]
        fn solvers_agree_on_linear(slope in 0.1..50.0f64, root in -50.0..50.0f64) {
            let g = |x: f64| slope * (x - root);
            let lo = root - 60.0;
            let hi = root + 60.0;
            let rb = bisect(g, lo, hi, RootOptions::default()).unwrap();
            let rr = brent(g, lo, hi, RootOptions::default()).unwrap();
            prop_assert!((rb.x - root).abs() < 1e-6);
            prop_assert!((rr.x - root).abs() < 1e-6);
        }
    }
}
