//! Empirical convexity checking.
//!
//! The paper's §3.2 analysis is exact only when the impact functions are
//! convex ("if the `T_x^c(λ)` and `T_xy^n(λ)` functions are not convex,
//! then it is assumed that heuristic techniques can be used to find
//! near-optimal solutions"). Users plugging arbitrary black-box impact
//! functions into the numeric solver can use [`check_midpoint_convexity`]
//! to probe that assumption before trusting the resulting radius: it
//! samples random segments inside a box and tests midpoint convexity
//! `f((a+b)/2) ≤ (f(a)+f(b))/2`.
//!
//! A probe cannot *prove* convexity — it can only fail to refute it — so
//! the result is reported as counterexamples found, not a boolean blessing.

use crate::vector::VecN;
use rand::Rng;

/// A counterexample to midpoint convexity.
#[derive(Clone, Debug)]
pub struct ConvexityViolation {
    /// Segment endpoint `a`.
    pub a: VecN,
    /// Segment endpoint `b`.
    pub b: VecN,
    /// `f(midpoint) − (f(a)+f(b))/2` — positive by construction.
    pub gap: f64,
}

/// The outcome of a convexity probe.
#[derive(Clone, Debug)]
pub struct ConvexityReport {
    /// Segments tested.
    pub samples: usize,
    /// Violations found (empty = consistent with convexity on the box).
    pub violations: Vec<ConvexityViolation>,
}

impl ConvexityReport {
    /// True when no violation was found.
    pub fn consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Probes midpoint convexity of `f` on the axis-aligned box
/// `[lo, hi]^n` with `samples` random segments. Relative tolerance
/// `rel_tol` absorbs floating-point noise on huge function values.
///
/// # Panics
/// Panics if `lo >= hi` or `dim == 0`.
pub fn check_midpoint_convexity<F, R>(
    f: F,
    dim: usize,
    lo: f64,
    hi: f64,
    samples: usize,
    rel_tol: f64,
    rng: &mut R,
) -> ConvexityReport
where
    F: Fn(&VecN) -> f64,
    R: Rng + ?Sized,
{
    assert!(dim > 0, "zero-dimensional convexity probe");
    assert!(lo < hi, "empty probe box [{lo}, {hi}]");
    let mut violations = Vec::new();
    for _ in 0..samples {
        let a = VecN::new((0..dim).map(|_| rng.gen_range(lo..hi)).collect());
        let b = VecN::new((0..dim).map(|_| rng.gen_range(lo..hi)).collect());
        let mid = (&a + &b).scaled(0.5);
        let fm = f(&mid);
        let avg = 0.5 * (f(&a) + f(&b));
        if fm > avg + rel_tol * (1.0 + avg.abs()) {
            violations.push(ConvexityViolation {
                a,
                b,
                gap: fm - avg,
            });
        }
    }
    ConvexityReport {
        samples,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn convex_functions_pass() {
        let mut rng = StdRng::seed_from_u64(1);
        // The paper's convex examples: e^x, x^p (p ≥ 1), x·log x.
        type Case = (&'static str, Box<dyn Fn(&VecN) -> f64>);
        let cases: Vec<Case> = vec![
            ("exp", Box::new(|v: &VecN| (v[0] + v[1]).exp())),
            ("power", Box::new(|v: &VecN| v[0].powf(2.5) + v[1].powi(2))),
            (
                "xlogx",
                Box::new(|v: &VecN| v.iter().map(|&x| x * x.ln()).sum()),
            ),
            ("norm", Box::new(|v: &VecN| v.norm_l2())),
        ];
        for (name, f) in cases {
            let report = check_midpoint_convexity(f, 2, 0.1, 10.0, 2_000, 1e-9, &mut rng);
            assert!(report.consistent(), "{name} flagged as non-convex");
        }
    }

    #[test]
    fn log_is_caught() {
        // The paper's "notable exception": log x is concave.
        let mut rng = StdRng::seed_from_u64(2);
        let report = check_midpoint_convexity(
            |v: &VecN| (v[0] + v[1]).ln(),
            2,
            0.5,
            50.0,
            2_000,
            1e-9,
            &mut rng,
        );
        assert!(!report.consistent());
        assert!(report.violations[0].gap > 0.0);
    }

    #[test]
    fn sine_is_caught() {
        let mut rng = StdRng::seed_from_u64(3);
        let report =
            check_midpoint_convexity(|v: &VecN| v[0].sin(), 1, 0.0, 6.0, 2_000, 1e-9, &mut rng);
        assert!(!report.consistent());
    }

    #[test]
    #[should_panic(expected = "empty probe box")]
    fn rejects_empty_box() {
        let mut rng = StdRng::seed_from_u64(4);
        check_midpoint_convexity(|_: &VecN| 0.0, 1, 1.0, 1.0, 1, 1e-9, &mut rng);
    }
}
