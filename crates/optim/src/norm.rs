//! Norm selection for the robustness radius.
//!
//! The paper defines the robustness radius with the Euclidean (ℓ₂) norm
//! (Eq. 1). Ali's thesis discusses alternatives; this crate exposes them so
//! the workspace's norm-sensitivity ablation (`benches/norms.rs`) can compare
//! radii under different norms. [`Norm::L2`] is always the default.

use crate::vector::VecN;

/// A vector norm used to measure the size of a perturbation
/// `π_j − π_j_orig`.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Norm {
    /// ℓ₁ — sum of absolute component changes (total perturbation budget).
    L1,
    /// ℓ₂ — Euclidean norm; the paper's choice (Eq. 1).
    #[default]
    L2,
    /// ℓ∞ — the largest single-component change.
    LInf,
    /// Weighted ℓ₂ — `sqrt(Σ w_r x_r²)`; lets callers express that some
    /// perturbation components are more likely (smaller weight) than others.
    WeightedL2(Vec<f64>),
}

impl Norm {
    /// Evaluates the norm of `x`.
    ///
    /// # Panics
    /// Panics for [`Norm::WeightedL2`] if the weight dimension mismatches or
    /// any weight is negative.
    pub fn eval(&self, x: &VecN) -> f64 {
        match self {
            Norm::L1 => x.norm_l1(),
            Norm::L2 => x.norm_l2(),
            Norm::LInf => x.norm_linf(),
            Norm::WeightedL2(w) => x.norm_weighted_l2(w),
        }
    }

    /// The distance between two points under this norm.
    pub fn distance(&self, a: &VecN, b: &VecN) -> f64 {
        self.eval(&(a - b))
    }

    /// A short human-readable name (used in reports and bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            Norm::L1 => "l1",
            Norm::L2 => "l2",
            Norm::LInf => "linf",
            Norm::WeightedL2(_) => "weighted-l2",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_is_l2() {
        assert_eq!(Norm::default(), Norm::L2);
    }

    #[test]
    fn eval_matches_vector_methods() {
        let x = VecN::from([3.0, -4.0]);
        assert_eq!(Norm::L1.eval(&x), 7.0);
        assert_eq!(Norm::L2.eval(&x), 5.0);
        assert_eq!(Norm::LInf.eval(&x), 4.0);
        assert_eq!(Norm::WeightedL2(vec![1.0, 1.0]).eval(&x), 5.0);
    }

    #[test]
    fn names() {
        assert_eq!(Norm::L1.name(), "l1");
        assert_eq!(Norm::L2.name(), "l2");
        assert_eq!(Norm::LInf.name(), "linf");
        assert_eq!(Norm::WeightedL2(vec![]).name(), "weighted-l2");
    }

    fn vec_strategy(n: usize) -> impl Strategy<Value = VecN> {
        prop::collection::vec(-1e6..1e6f64, n).prop_map(VecN::new)
    }

    proptest! {
        /// Norm axioms: non-negativity, absolute homogeneity, triangle
        /// inequality, and the standard ordering ℓ∞ ≤ ℓ₂ ≤ ℓ₁.
        #[test]
        fn norm_axioms(a in vec_strategy(4), b in vec_strategy(4), s in -100.0..100.0f64) {
            for norm in [Norm::L1, Norm::L2, Norm::LInf] {
                let na = norm.eval(&a);
                prop_assert!(na >= 0.0);
                // homogeneity
                let scaled = norm.eval(&a.scaled(s));
                prop_assert!((scaled - s.abs() * na).abs() <= 1e-6 * (1.0 + scaled.abs()));
                // triangle inequality
                let nsum = norm.eval(&(&a + &b));
                prop_assert!(nsum <= na + norm.eval(&b) + 1e-9 * (1.0 + na));
            }
            let (l1, l2, linf) = (a.norm_l1(), a.norm_l2(), a.norm_linf());
            prop_assert!(linf <= l2 + 1e-9 * (1.0 + l2));
            prop_assert!(l2 <= l1 + 1e-9 * (1.0 + l1));
        }

        /// Distance is symmetric and zero iff the points coincide.
        #[test]
        fn distance_symmetry(a in vec_strategy(3), b in vec_strategy(3)) {
            for norm in [Norm::L1, Norm::L2, Norm::LInf] {
                prop_assert!((norm.distance(&a, &b) - norm.distance(&b, &a)).abs() < 1e-9);
                prop_assert_eq!(norm.distance(&a, &a), 0.0);
            }
        }
    }
}
