//! Dense `f64` vectors.
//!
//! `VecN` is the numeric workhorse of the whole workspace: perturbation
//! parameters (`π_j` in the paper), ETC error vectors (`C − C_orig`), and
//! sensor-load vectors (`λ`) are all `VecN`s. It is intentionally small — a
//! newtype over `Vec<f64>` with exactly the operations the solvers need.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense vector in `R^n`.
#[derive(Clone, PartialEq, Default)]
pub struct VecN(Vec<f64>);

impl VecN {
    /// Creates a vector from its components.
    pub fn new(components: Vec<f64>) -> Self {
        VecN(components)
    }

    /// Creates the zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        VecN(vec![0.0; n])
    }

    /// Creates a vector of dimension `n` with every component equal to `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        VecN(vec![value; n])
    }

    /// Creates the `i`-th standard basis vector of dimension `n`.
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for dimension {n}");
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        VecN(v)
    }

    /// The dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutably borrows the components as a slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning its components.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Iterates over the components.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.0.iter()
    }

    /// The dot product `self · other`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &VecN) -> f64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot product of mismatched dimensions"
        );
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// The Euclidean (ℓ₂) norm. This is the norm of the paper's Eq. 1.
    pub fn norm_l2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// The ℓ₁ norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).sum()
    }

    /// The ℓ∞ norm (maximum absolute value); 0 for the empty vector.
    pub fn norm_linf(&self) -> f64 {
        self.0.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// The weighted ℓ₂ norm `sqrt(Σ w_r x_r²)`.
    ///
    /// # Panics
    /// Panics if the dimensions differ or any weight is negative.
    pub fn norm_weighted_l2(&self, weights: &[f64]) -> f64 {
        assert_eq!(self.dim(), weights.len(), "weight dimension mismatch");
        self.0
            .iter()
            .zip(weights.iter())
            .map(|(x, w)| {
                assert!(*w >= 0.0, "negative weight {w} in weighted norm");
                w * x * x
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Returns `self + t * dir` (a point along a ray).
    pub fn add_scaled(&self, t: f64, dir: &VecN) -> VecN {
        assert_eq!(self.dim(), dir.dim(), "add_scaled dimension mismatch");
        VecN(
            self.0
                .iter()
                .zip(dir.0.iter())
                .map(|(a, d)| a + t * d)
                .collect(),
        )
    }

    /// In-place `self += t * dir` (BLAS `axpy`).
    pub fn axpy(&mut self, t: f64, dir: &VecN) {
        assert_eq!(self.dim(), dir.dim(), "axpy dimension mismatch");
        for (a, d) in self.0.iter_mut().zip(dir.0.iter()) {
            *a += t * d;
        }
    }

    /// Scales the vector by a scalar, returning a new vector.
    pub fn scaled(&self, s: f64) -> VecN {
        VecN(self.0.iter().map(|x| x * s).collect())
    }

    /// Returns the unit vector in the direction of `self`, or `None` if the
    /// norm is too small to normalize safely.
    pub fn normalized(&self) -> Option<VecN> {
        let n = self.norm_l2();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self.scaled(1.0 / n))
        }
    }

    /// Component-wise maximum with a scalar (used to clamp onto the
    /// non-negative orthant, e.g. sensor loads cannot go below zero).
    pub fn max_scalar(&self, floor: f64) -> VecN {
        VecN(self.0.iter().map(|x| x.max(floor)).collect())
    }

    /// Component-wise floor (used for discrete perturbation parameters,
    /// §3.2 of the paper).
    pub fn floor(&self) -> VecN {
        VecN(self.0.iter().map(|x| x.floor()).collect())
    }

    /// True if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }

    /// The Euclidean distance `‖self − other‖₂`.
    pub fn distance_l2(&self, other: &VecN) -> f64 {
        assert_eq!(self.dim(), other.dim(), "distance dimension mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl fmt::Debug for VecN {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VecN{:?}", self.0)
    }
}

impl From<Vec<f64>> for VecN {
    fn from(v: Vec<f64>) -> Self {
        VecN(v)
    }
}

impl From<&[f64]> for VecN {
    fn from(v: &[f64]) -> Self {
        VecN(v.to_vec())
    }
}

impl<const N: usize> From<[f64; N]> for VecN {
    fn from(v: [f64; N]) -> Self {
        VecN(v.to_vec())
    }
}

impl Index<usize> for VecN {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for VecN {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add for &VecN {
    type Output = VecN;
    fn add(self, rhs: &VecN) -> VecN {
        self.add_scaled(1.0, rhs)
    }
}

impl Sub for &VecN {
    type Output = VecN;
    fn sub(self, rhs: &VecN) -> VecN {
        self.add_scaled(-1.0, rhs)
    }
}

impl AddAssign<&VecN> for VecN {
    fn add_assign(&mut self, rhs: &VecN) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&VecN> for VecN {
    fn sub_assign(&mut self, rhs: &VecN) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &VecN {
    type Output = VecN;
    fn mul(self, s: f64) -> VecN {
        self.scaled(s)
    }
}

impl Neg for &VecN {
    type Output = VecN;
    fn neg(self) -> VecN {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_dim() {
        assert_eq!(VecN::zeros(3).dim(), 3);
        assert_eq!(VecN::filled(2, 4.0).as_slice(), &[4.0, 4.0]);
        assert_eq!(VecN::basis(3, 1).as_slice(), &[0.0, 1.0, 0.0]);
        assert!(VecN::zeros(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "basis index")]
    fn basis_out_of_range_panics() {
        let _ = VecN::basis(2, 2);
    }

    #[test]
    fn dot_and_norms() {
        let a = VecN::from([3.0, -4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm_l2(), 5.0);
        assert_eq!(a.norm_l1(), 7.0);
        assert_eq!(a.norm_linf(), 4.0);
    }

    #[test]
    fn weighted_norm_reduces_to_l2_with_unit_weights() {
        let a = VecN::from([1.0, 2.0, 2.0]);
        let w = [1.0, 1.0, 1.0];
        assert!((a.norm_weighted_l2(&w) - a.norm_l2()).abs() < 1e-12);
    }

    #[test]
    fn weighted_norm_scales_components() {
        let a = VecN::from([1.0, 1.0]);
        // sqrt(4*1 + 9*1) = sqrt(13)
        assert!((a.norm_weighted_l2(&[4.0, 9.0]) - 13f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn weighted_norm_rejects_negative_weight() {
        VecN::from([1.0]).norm_weighted_l2(&[-1.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = VecN::from([1.0, 2.0]);
        let b = VecN::from([3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_and_axpy_agree() {
        let a = VecN::from([1.0, 1.0, 1.0]);
        let d = VecN::from([1.0, 2.0, 3.0]);
        let r = a.add_scaled(0.5, &d);
        let mut m = a.clone();
        m.axpy(0.5, &d);
        assert_eq!(r, m);
        assert_eq!(r.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn normalization() {
        let a = VecN::from([3.0, 4.0]);
        let u = a.normalized().unwrap();
        assert!((u.norm_l2() - 1.0).abs() < 1e-12);
        assert!(VecN::zeros(2).normalized().is_none());
    }

    #[test]
    fn distance_is_norm_of_difference() {
        let a = VecN::from([1.0, 2.0]);
        let b = VecN::from([4.0, 6.0]);
        assert_eq!(a.distance_l2(&b), 5.0);
        assert_eq!(a.distance_l2(&b), (&a - &b).norm_l2());
    }

    #[test]
    fn clamp_and_floor() {
        let a = VecN::from([-1.5, 2.7]);
        assert_eq!(a.max_scalar(0.0).as_slice(), &[0.0, 2.7]);
        assert_eq!(a.floor().as_slice(), &[-2.0, 2.0]);
    }

    #[test]
    fn finiteness() {
        assert!(VecN::from([1.0, 2.0]).is_finite());
        assert!(!VecN::from([f64::NAN]).is_finite());
        assert!(!VecN::from([f64::INFINITY]).is_finite());
    }
}
