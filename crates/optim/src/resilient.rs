//! Resilient wrapper around the min-norm solver: retry with escalating
//! budgets, then degrade to a cheap certified interval.
//!
//! The base solver ([`min_norm_to_level_set_with`]) can fail transiently —
//! a bracket that misses, an iteration cap, a poisoned evaluation under
//! fault injection. Instead of silently falling back (or aborting a 10k-
//! mapping sweep), [`min_norm_to_level_set_resilient`] retries with
//! perturbed seed fans and growing iteration budgets under an explicit
//! eval/wall budget, and reports *how* it finished: clean, recovered after
//! restarts, or degraded to the best boundary point found.
//!
//! When even that fails, [`certified_level_interval`] brackets the radius
//! from both sides with a few dozen axis-aligned evaluations:
//!
//! * **Lower bound** — every evaluated point `x₀ ± aⱼ·eⱼ` with
//!   `f < β` is certified inside the sublevel set; for the convex impact
//!   functions the paper assumes (§3.2), the cross-polytope spanned by those
//!   points is inside too, and its inradius `1/√(Σⱼ 1/aⱼ²)` is a certified
//!   lower bound on the distance to the boundary.
//! * **Upper bound** — any evaluated point with `f ≥ β` certifies (by
//!   continuity along the segment from the origin) a boundary crossing at or
//!   before its distance.
//!
//! Consumers surface the pair as `RadiusVerdict::Bounded { lo, hi }`.

use crate::constrained::{
    min_norm_to_level_set_with, LevelSetProblem, LevelSetSolution, SolverOptions, SolverWorkspace,
};
use crate::error::OptimError;
use crate::vector::VecN;
use std::time::{Duration, Instant};

/// Retry/budget policy for [`min_norm_to_level_set_resilient`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Restart attempts after the initial solve.
    pub max_restarts: usize,
    /// Multiplier on `max_outer` per restart (attempt `k` runs with
    /// `max_outer · growthᵏ` iterations).
    pub budget_growth: f64,
    /// Base seed jitter: attempt `k ≥ 1` solves with
    /// `seed_jitter = base · k`, rotating the probe fan away from the one
    /// that failed.
    pub seed_jitter: f64,
    /// Total impact-function evaluation budget across attempts
    /// (`0` = unlimited).
    pub max_f_evals: u64,
    /// Wall-clock deadline across attempts (`None` = unlimited). Hitting it
    /// stops *between* attempts; a single attempt is never interrupted, so
    /// results stay deterministic — only the number of attempts can vary.
    pub wall_limit: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_restarts: 2,
            budget_growth: 2.0,
            seed_jitter: 0.05,
            max_f_evals: 200_000,
            wall_limit: None,
        }
    }
}

/// Outcome of a resilient solve.
#[derive(Clone, Debug)]
pub struct ResilientSolution {
    /// The best solution found (converged, or best-effort when `degraded`).
    pub solution: LevelSetSolution,
    /// Restart attempts consumed beyond the initial solve.
    pub restarts: usize,
    /// `true` when no attempt converged and this is the best boundary point
    /// reached at budget exhaustion. The point still lies *on* the boundary
    /// (every solver iterate is feasible), so its radius is a certified
    /// upper bound on the true radius.
    pub degraded: bool,
}

/// [`min_norm_to_level_set_with`] under a [`RetryPolicy`].
///
/// Definitive outcomes (`Unreachable`, `Degenerate`) return immediately;
/// transient ones (`MaxIterations`, `NoBracket`, `NonFinite`, a
/// non-converged solution) trigger restarts with escalating budgets and
/// jittered seed fans. With the whole budget spent, the best non-converged
/// boundary point is returned as `degraded`; with nothing usable at all the
/// call fails with [`OptimError::Exhausted`].
///
/// With `policy.seed_jitter = 0` and `max_restarts = 0` this is exactly the
/// base solver. When `fepia-obs` is enabled, `optim.retry.*` counters track
/// attempts, recoveries, degradations and exhaustions.
pub fn min_norm_to_level_set_resilient(
    p: &LevelSetProblem<'_>,
    opts: &SolverOptions,
    policy: &RetryPolicy,
    ws: &mut SolverWorkspace,
) -> Result<ResilientSolution, OptimError> {
    let started = policy.wall_limit.map(|limit| (Instant::now(), limit));
    let mut best: Option<LevelSetSolution> = None;
    let mut total_f: u64 = 0;
    let mut last_failure = String::new();
    let mut attempts = 0usize;

    for attempt in 0..=policy.max_restarts {
        attempts = attempt;
        let mut a_opts = *opts;
        if attempt > 0 {
            let growth = policy.budget_growth.max(1.0).powi(attempt as i32);
            a_opts.max_outer = ((opts.max_outer as f64) * growth).ceil() as usize;
            a_opts.seed_jitter = policy.seed_jitter * attempt as f64;
            if fepia_obs::enabled() {
                fepia_obs::global().counter("optim.retry.attempts").inc();
            }
        }
        match min_norm_to_level_set_with(p, &a_opts, ws) {
            Ok(sol) => {
                total_f = total_f.saturating_add(sol.f_evals);
                if sol.converged || sol.already_violating {
                    if attempt > 0 && fepia_obs::enabled() {
                        fepia_obs::global().counter("optim.retry.recovered").inc();
                    }
                    return Ok(ResilientSolution {
                        solution: sol,
                        restarts: attempt,
                        degraded: false,
                    });
                }
                last_failure = format!("iteration cap at {} outer iterations", a_opts.max_outer);
                if best
                    .as_ref()
                    .is_none_or(|b: &LevelSetSolution| sol.radius < b.radius)
                {
                    best = Some(sol);
                }
            }
            // Definitive: the boundary truly is unreachable (radius +∞) or
            // the problem is malformed. Retrying cannot change this.
            Err(e @ (OptimError::Unreachable | OptimError::Degenerate(_))) => return Err(e),
            // Transient: a jittered fan or bigger budget may succeed — and
            // under fault injection the next draw may simply not fire.
            Err(e) => {
                last_failure = e.to_string();
            }
        }
        if policy.max_f_evals > 0 && total_f >= policy.max_f_evals {
            last_failure = format!("{last_failure}; eval budget {} spent", policy.max_f_evals);
            break;
        }
        if let Some((t0, limit)) = started {
            if t0.elapsed() >= limit {
                last_failure = format!("{last_failure}; wall deadline {limit:?} passed");
                break;
            }
        }
    }

    match best {
        Some(solution) => {
            if fepia_obs::enabled() {
                fepia_obs::global().counter("optim.retry.degraded").inc();
            }
            Ok(ResilientSolution {
                solution,
                restarts: attempts,
                degraded: true,
            })
        }
        None => {
            if fepia_obs::enabled() {
                fepia_obs::global().counter("optim.retry.exhausted").inc();
            }
            Err(OptimError::Exhausted {
                restarts: attempts,
                last: last_failure,
            })
        }
    }
}

/// A certified two-sided bracket on the min-norm radius.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CertifiedInterval {
    /// Certified lower bound (cross-polytope inradius over evaluated inside
    /// points); `0.0` when no inside extent could be certified on some axis,
    /// `+∞` when the boundary was not reached along any axis.
    pub lo: f64,
    /// Certified upper bound (distance to the nearest evaluated point at or
    /// past the boundary); `+∞` when no crossing was observed.
    pub hi: f64,
    /// Impact-function evaluations spent.
    pub f_evals: u64,
}

/// Brackets the radius of `p` with axis-aligned probes only — the graceful-
/// degradation fallback when the exact solve exhausts its budget.
///
/// Walks `±eⱼ` from the origin with doubling steps, then bisects the first
/// crossing `bisect_iters` times per direction. Every evaluation either
/// extends a certified-inside extent (`f < level`) or tightens the certified
/// upper bound (`f ≥ level`). The lower bound is sound for convex impact
/// functions (the paper's §3.2 assumption); for non-convex `f` it is a
/// heuristic. Cost is `O(n · bisect_iters)` evaluations — no gradients, no
/// root polish, immune to solver non-convergence.
///
/// Errors only on malformed problems (`f(origin)` non-finite or
/// zero-dimensional); a poisoned probe evaluation merely stops the walk
/// along that direction.
pub fn certified_level_interval(
    p: &LevelSetProblem<'_>,
    opts: &SolverOptions,
    bisect_iters: usize,
) -> Result<CertifiedInterval, OptimError> {
    let n = p.origin.dim();
    if n == 0 {
        return Err(OptimError::Degenerate(
            "zero-dimensional perturbation".into(),
        ));
    }
    let mut f_evals: u64 = 0;
    let mut eval = |x: &VecN| {
        f_evals += 1;
        (p.f)(x)
    };
    let f0 = eval(p.origin);
    if !f0.is_finite() || !p.level.is_finite() {
        return Err(OptimError::NonFinite);
    }
    if f0 >= p.level {
        // Already violating: the radius is exactly zero.
        return Ok(CertifiedInterval {
            lo: 0.0,
            hi: 0.0,
            f_evals,
        });
    }

    let scale = p.origin.norm_l2().max(1.0);
    let t_max = opts.t_max_factor * scale;
    let mut hi = f64::INFINITY;
    // Per-axis certified inside extent (min over the two signs).
    let mut inradius_sum = 0.0f64;
    let mut degenerate_axis = false;
    // True while every direction walked clear past t_max without crossing or
    // poisoning — the same evidence the exact solver calls `Unreachable`.
    let mut all_unreached = true;

    for j in 0..n {
        let mut axis_extent = f64::INFINITY;
        for sign in [1.0f64, -1.0] {
            let g = |t: f64, ev: &mut dyn FnMut(&VecN) -> f64| {
                let mut x = p.origin.clone();
                x[j] += sign * t;
                ev(&x) - p.level
            };
            // Expanding walk to the first crossing (or give-up).
            let mut inside = 0.0f64;
            let mut t = 1e-3 * scale;
            let mut crossing = None;
            let mut poisoned = false;
            while t <= t_max {
                let gt = g(t, &mut eval);
                if !gt.is_finite() {
                    poisoned = true;
                    break; // poisoned / overflowed: stop certifying here
                }
                if gt >= 0.0 {
                    crossing = Some(t);
                    break;
                }
                inside = t;
                t *= 2.0;
            }
            if crossing.is_some() || poisoned {
                all_unreached = false;
            }
            if let Some(mut out) = crossing {
                hi = hi.min(out);
                // Bisect [inside, out] to tighten both certificates.
                for _ in 0..bisect_iters {
                    let mid = 0.5 * (inside + out);
                    let gm = g(mid, &mut eval);
                    if !gm.is_finite() {
                        break;
                    }
                    if gm >= 0.0 {
                        out = mid;
                        hi = hi.min(mid);
                    } else {
                        inside = mid;
                    }
                }
            }
            axis_extent = axis_extent.min(inside);
        }
        if axis_extent == 0.0 {
            degenerate_axis = true;
        } else if axis_extent.is_finite() {
            inradius_sum += 1.0 / (axis_extent * axis_extent);
        }
    }

    if all_unreached {
        // No crossing, no poison, every axis walked out to t_max: mirror the
        // exact solver's `Unreachable` convention — the radius is unbounded.
        return Ok(CertifiedInterval {
            lo: f64::INFINITY,
            hi: f64::INFINITY,
            f_evals,
        });
    }
    let lo = if degenerate_axis {
        0.0
    } else if inradius_sum > 0.0 {
        1.0 / inradius_sum.sqrt()
    } else {
        0.0 // nothing certified inside (cannot happen with a finite f0, but stay safe)
    };
    // Numerical safety: the certificates are individually sound, but make
    // the pair an interval even if bisection tolerance crossed them.
    let lo = lo.min(hi);
    Ok(CertifiedInterval { lo, hi, f_evals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constrained::min_norm_to_level_set;

    fn problem<'a>(
        f: &'a dyn Fn(&VecN) -> f64,
        origin: &'a VecN,
        level: f64,
    ) -> LevelSetProblem<'a> {
        LevelSetProblem {
            f,
            grad: None,
            origin,
            level,
        }
    }

    #[test]
    fn resilient_matches_base_solver_on_clean_problems() {
        let f = |v: &VecN| v.dot(v);
        let origin = VecN::from([0.5, 0.25]);
        let p = problem(&f, &origin, 9.0);
        let opts = SolverOptions::default();
        let base = min_norm_to_level_set(&p, &opts).unwrap();
        let mut ws = SolverWorkspace::new();
        let res =
            min_norm_to_level_set_resilient(&p, &opts, &RetryPolicy::default(), &mut ws).unwrap();
        assert_eq!(res.restarts, 0);
        assert!(!res.degraded);
        assert_eq!(res.solution.radius.to_bits(), base.radius.to_bits());
    }

    #[test]
    fn resilient_recovers_from_iteration_starvation() {
        // An ellipse with a tiny budget: the first attempt hits the cap, and
        // escalation (4x, then 16x the budget) converges.
        let f = |v: &VecN| v[0] * v[0] / 25.0 + v[1] * v[1];
        let origin = VecN::from([0.3, 0.1]);
        let p = problem(&f, &origin, 1.0);
        let opts = SolverOptions {
            max_outer: 1,
            ..SolverOptions::default()
        };
        let policy = RetryPolicy {
            max_restarts: 4,
            budget_growth: 4.0,
            ..RetryPolicy::default()
        };
        let mut ws = SolverWorkspace::new();
        let res = min_norm_to_level_set_resilient(&p, &opts, &policy, &mut ws).unwrap();
        // Either a later attempt converged, or we got a certified degraded
        // boundary point; both must carry a sane radius.
        assert!(res.solution.radius.is_finite());
        assert!(res.solution.radius > 0.0);
        if !res.degraded {
            assert!(res.restarts > 0, "cap of 1 cannot converge first try");
        }
    }

    #[test]
    fn resilient_propagates_unreachable() {
        let f = |v: &VecN| 1.0 - (-v.dot(v)).exp();
        let origin = VecN::from([0.0, 0.0]);
        let p = problem(&f, &origin, 2.0);
        let mut ws = SolverWorkspace::new();
        let err = min_norm_to_level_set_resilient(
            &p,
            &SolverOptions::default(),
            &RetryPolicy::default(),
            &mut ws,
        )
        .unwrap_err();
        assert_eq!(err, OptimError::Unreachable);
    }

    #[test]
    fn interval_brackets_sphere_radius() {
        // f = ‖x‖², level 4: true radius 2 from the center.
        let f = |v: &VecN| v.dot(v);
        let origin = VecN::from([0.0, 0.0, 0.0]);
        let p = problem(&f, &origin, 4.0);
        let iv = certified_level_interval(&p, &SolverOptions::default(), 40).unwrap();
        assert!(iv.lo <= 2.0 + 1e-9, "lo {} must not exceed true 2", iv.lo);
        assert!(iv.hi >= 2.0 - 1e-9, "hi {} must not undercut true 2", iv.hi);
        // The cross-polytope inradius of a sphere is r/√n: the certified
        // interval is [2/√3, 2] here, tight on both certificates.
        let expect_lo = 2.0 / 3f64.sqrt();
        assert!(
            (iv.lo - expect_lo).abs() < 1e-3 && (iv.hi - 2.0).abs() < 1e-6,
            "interval [{}, {}] vs expected [{expect_lo}, 2]",
            iv.lo,
            iv.hi
        );
    }

    #[test]
    fn interval_brackets_offset_ellipse() {
        let f = |v: &VecN| v[0] * v[0] / 4.0 + v[1] * v[1];
        let origin = VecN::from([0.1, 0.2]);
        let p = problem(&f, &origin, 1.0);
        let exact = min_norm_to_level_set(&p, &SolverOptions::default())
            .unwrap()
            .radius;
        let iv = certified_level_interval(&p, &SolverOptions::default(), 40).unwrap();
        assert!(
            iv.lo <= exact + 1e-9 && exact <= iv.hi + 1e-9,
            "[{}, {}] must bracket exact {}",
            iv.lo,
            iv.hi,
            exact
        );
    }

    #[test]
    fn interval_handles_already_violating() {
        let f = |v: &VecN| v[0];
        let origin = VecN::from([5.0]);
        let p = problem(&f, &origin, 3.0);
        let iv = certified_level_interval(&p, &SolverOptions::default(), 10).unwrap();
        assert_eq!((iv.lo, iv.hi), (0.0, 0.0));
    }

    #[test]
    fn interval_unbounded_when_level_unattained() {
        let f = |v: &VecN| 1.0 - (-v.dot(v)).exp();
        let origin = VecN::from([0.0, 0.0]);
        let p = problem(&f, &origin, 2.0);
        let iv = certified_level_interval(&p, &SolverOptions::default(), 10).unwrap();
        assert_eq!(iv.lo, f64::INFINITY);
        assert_eq!(iv.hi, f64::INFINITY);
    }

    #[test]
    fn interval_survives_poisoned_evaluations() {
        // f returns NaN off the first axis: the second axis certifies
        // nothing, so lo degrades to 0, but the first axis still yields a
        // finite hi. No panic, no hang.
        let f = |v: &VecN| {
            if v[1] != 0.0 {
                f64::NAN
            } else {
                v[0].abs()
            }
        };
        let origin = VecN::from([0.0, 0.0]);
        let p = problem(&f, &origin, 1.0);
        let iv = certified_level_interval(&p, &SolverOptions::default(), 20).unwrap();
        assert_eq!(iv.lo, 0.0);
        assert!(
            iv.hi.is_finite() && (iv.hi - 1.0).abs() < 0.05,
            "hi {}",
            iv.hi
        );
    }
}
