//! Error type for the numeric solvers.

use std::fmt;

/// Errors reported by the root finders and the constrained min-norm solver.
#[derive(Clone, Debug, PartialEq)]
pub enum OptimError {
    /// A bracketing interval did not actually bracket a sign change.
    NoBracket {
        /// Left endpoint of the attempted bracket.
        a: f64,
        /// Right endpoint of the attempted bracket.
        b: f64,
    },
    /// The iteration limit was exhausted before reaching the tolerance.
    MaxIterations {
        /// Iterations performed.
        iterations: usize,
    },
    /// The boundary is unreachable, e.g. the impact function never attains
    /// the bound along any searched direction (the system can absorb an
    /// unbounded perturbation — the robustness radius is +∞).
    Unreachable,
    /// The objective or constraint produced a non-finite value.
    NonFinite,
    /// The problem is degenerate (zero-dimension perturbation, zero normal
    /// vector, empty feature set, ...).
    Degenerate(String),
    /// A resilient solve consumed its whole retry/eval/deadline budget
    /// without producing even a best-effort boundary point.
    Exhausted {
        /// Restart attempts consumed (beyond the initial solve).
        restarts: usize,
        /// Description of the last underlying failure.
        last: String,
    },
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::NoBracket { a, b } => {
                write!(f, "interval [{a}, {b}] does not bracket a root")
            }
            OptimError::MaxIterations { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            OptimError::Unreachable => write!(f, "constraint boundary is unreachable"),
            OptimError::NonFinite => write!(f, "non-finite value encountered"),
            OptimError::Degenerate(msg) => write!(f, "degenerate problem: {msg}"),
            OptimError::Exhausted { restarts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {restarts} restarts: {last}"
                )
            }
        }
    }
}

impl std::error::Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(OptimError::NoBracket { a: 0.0, b: 1.0 }
            .to_string()
            .contains("bracket"));
        assert!(OptimError::MaxIterations { iterations: 7 }
            .to_string()
            .contains('7'));
        assert!(OptimError::Unreachable.to_string().contains("unreachable"));
        assert!(OptimError::NonFinite.to_string().contains("non-finite"));
        assert!(OptimError::Degenerate("empty".into())
            .to_string()
            .contains("empty"));
    }
}
