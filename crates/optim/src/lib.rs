//! `fepia-optim` — numeric substrate for the FePIA robustness metric.
//!
//! The robustness radius of Ali et al. (Eq. 1) is a *min-norm-to-level-set*
//! problem: find the point on the boundary `f(π) = β` closest (in some norm)
//! to the assumed operating point `π_orig`. This crate provides everything
//! needed to solve it:
//!
//! * [`vector::VecN`] — a dense `f64` vector with the arithmetic the solvers
//!   need (no external linear-algebra crates; the numeric substrate is part of
//!   the reproduction surface).
//! * [`norm::Norm`] — the ℓ₂ norm of the paper plus ℓ₁/ℓ∞/weighted-ℓ₂
//!   extensions used by the norm-sensitivity ablation.
//! * [`hyperplane::Hyperplane`] — exact point-to-plane distance/projection,
//!   the closed form behind Eq. 6 of the paper.
//! * [`root1d`] — bisection and Brent root finding for scalar boundary
//!   crossings.
//! * [`gradient`] — finite-difference gradients and gradient descent with
//!   backtracking line search.
//! * [`constrained`] — the general solver for
//!   `min ‖π − π_orig‖  s.t.  f(π) = β` used when the impact function is not
//!   linear: a ray-marching seed plus an alternating-projection refinement,
//!   both valid for the convex impact functions the paper assumes (§3.2).

pub mod constrained;
pub mod convex;
pub mod error;
pub mod gradient;
pub mod hyperplane;
pub mod norm;
pub mod resilient;
pub mod root1d;
pub mod vector;

pub use constrained::{
    min_norm_to_level_set, min_norm_to_level_set_with, LevelSetProblem, LevelSetSolution,
    SolverOptions, SolverWorkspace,
};
pub use convex::{check_midpoint_convexity, ConvexityReport};
pub use error::OptimError;
pub use hyperplane::Hyperplane;
pub use norm::Norm;
pub use resilient::{
    certified_level_interval, min_norm_to_level_set_resilient, CertifiedInterval,
    ResilientSolution, RetryPolicy,
};
pub use vector::VecN;
