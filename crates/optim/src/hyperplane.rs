//! Hyperplane geometry.
//!
//! The paper's §3.1 reduces the robustness radius for linear impact functions
//! to the point-to-hyperplane distance formula (its Eq. 6, citing Simmons'
//! calculus text \[23\]). A linear boundary relationship `f(π) = β` with
//! `f(π) = a·π + c` is the hyperplane `a·π + (c − β) = 0`; the closest point
//! to `π_orig` is its orthogonal projection onto that plane.

use crate::error::OptimError;
use crate::vector::VecN;

/// The hyperplane `{ x : normal · x = offset }`.
#[derive(Clone, Debug, PartialEq)]
pub struct Hyperplane {
    normal: VecN,
    offset: f64,
}

impl Hyperplane {
    /// Creates the hyperplane `normal · x = offset`.
    ///
    /// Returns [`OptimError::Degenerate`] if the normal is the zero vector
    /// (then the "plane" is either all of space or empty).
    pub fn new(normal: VecN, offset: f64) -> Result<Self, OptimError> {
        if normal.norm_l2() <= f64::EPSILON {
            return Err(OptimError::Degenerate("zero normal vector".into()));
        }
        if !normal.is_finite() || !offset.is_finite() {
            return Err(OptimError::NonFinite);
        }
        Ok(Hyperplane { normal, offset })
    }

    /// The normal vector `a`.
    pub fn normal(&self) -> &VecN {
        &self.normal
    }

    /// The offset `b` in `a · x = b`.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The signed distance from `point` to the plane:
    /// `(a·x − b) / ‖a‖₂`. Positive on the side the normal points to.
    pub fn signed_distance(&self, point: &VecN) -> f64 {
        (self.normal.dot(point) - self.offset) / self.normal.norm_l2()
    }

    /// The (non-negative) Euclidean distance from `point` to the plane.
    ///
    /// For a machine `m_j` with `n_j` applications, Eq. 6 of the paper is
    /// exactly this distance with `a = (1,…,1)` (dimension `n_j`) and
    /// `b = τ·M_orig`, giving `(τ·M_orig − F_j(C_orig)) / √n_j`.
    pub fn distance(&self, point: &VecN) -> f64 {
        self.signed_distance(point).abs()
    }

    /// The orthogonal projection of `point` onto the plane — the **closest
    /// boundary point**, i.e. the `π_j*(φ_i)` of the paper's Fig. 1 when the
    /// boundary is linear.
    pub fn project(&self, point: &VecN) -> VecN {
        let d = self.normal.dot(point) - self.offset;
        let nn = self.normal.dot(&self.normal);
        point.add_scaled(-d / nn, &self.normal)
    }

    /// Evaluates the linear form `a · x` at `point`.
    pub fn eval(&self, point: &VecN) -> f64 {
        self.normal.dot(point)
    }

    /// Whether `point` lies on the plane up to tolerance `tol` (measured as
    /// Euclidean distance).
    pub fn contains(&self, point: &VecN, tol: f64) -> bool {
        self.distance(point) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_zero_normal() {
        assert!(matches!(
            Hyperplane::new(VecN::zeros(3), 1.0),
            Err(OptimError::Degenerate(_))
        ));
    }

    #[test]
    fn rejects_non_finite() {
        assert_eq!(
            Hyperplane::new(VecN::from([f64::NAN]), 0.0),
            Err(OptimError::NonFinite)
        );
        assert_eq!(
            Hyperplane::new(VecN::from([1.0]), f64::INFINITY),
            Err(OptimError::NonFinite)
        );
    }

    #[test]
    fn distance_in_2d() {
        // x + y = 2, from origin: distance sqrt(2)
        let h = Hyperplane::new(VecN::from([1.0, 1.0]), 2.0).unwrap();
        assert!((h.distance(&VecN::zeros(2)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn eq6_shape_matches_paper() {
        // Machine with n applications, all estimated times t, bound τM:
        // Eq. 6 says radius = (τM − n·t)/√n.
        let n = 4usize;
        let t = 10.0;
        let tau_m = 52.0;
        let h = Hyperplane::new(VecN::filled(n, 1.0), tau_m).unwrap();
        let c_orig = VecN::filled(n, t);
        let expected = (tau_m - (n as f64) * t) / (n as f64).sqrt();
        assert!((h.distance(&c_orig) - expected).abs() < 1e-12);
    }

    #[test]
    fn projection_lands_on_plane_and_is_closest() {
        let h = Hyperplane::new(VecN::from([2.0, -1.0, 0.5]), 3.0).unwrap();
        let p = VecN::from([1.0, 4.0, -2.0]);
        let q = h.project(&p);
        assert!(h.contains(&q, 1e-9));
        assert!((p.distance_l2(&q) - h.distance(&p)).abs() < 1e-9);
    }

    #[test]
    fn signed_distance_sign() {
        let h = Hyperplane::new(VecN::from([1.0]), 0.0).unwrap();
        assert!(h.signed_distance(&VecN::from([2.0])) > 0.0);
        assert!(h.signed_distance(&VecN::from([-2.0])) < 0.0);
    }

    fn plane_strategy() -> impl Strategy<Value = (Hyperplane, VecN)> {
        (
            prop::collection::vec(-10.0..10.0f64, 3),
            -10.0..10.0f64,
            prop::collection::vec(-10.0..10.0f64, 3),
        )
            .prop_filter_map("nonzero normal", |(n, b, p)| {
                let normal = VecN::new(n);
                if normal.norm_l2() < 1e-3 {
                    None
                } else {
                    Some((Hyperplane::new(normal, b).unwrap(), VecN::new(p)))
                }
            })
    }

    proptest! {
        /// The projection is optimal: no on-plane point constructed by moving
        /// tangentially from the projection is closer.
        #[test]
        fn projection_optimality((h, p) in plane_strategy(), shift in prop::collection::vec(-5.0..5.0f64, 3)) {
            let q = h.project(&p);
            prop_assert!(h.contains(&q, 1e-7));
            // Build another on-plane point: project an arbitrary shifted point.
            let other = h.project(&p.add_scaled(1.0, &VecN::new(shift)));
            prop_assert!(p.distance_l2(&q) <= p.distance_l2(&other) + 1e-7);
        }

        /// Projection is idempotent.
        #[test]
        fn projection_idempotent((h, p) in plane_strategy()) {
            let q = h.project(&p);
            let q2 = h.project(&q);
            prop_assert!(q.distance_l2(&q2) < 1e-8);
        }
    }
}
