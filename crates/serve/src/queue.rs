//! A bounded MPMC queue on `Mutex<VecDeque>` + two condvars.
//!
//! `std::sync::mpsc` channels are the obvious building block, but their
//! `Receiver` is `!Sync`, so a shard with more than one worker could not
//! share one queue. This hand-rolled queue is multi-producer *and*
//! multi-consumer, gives the service the two admission disciplines it
//! needs — [`try_push`](BoundedQueue::try_push) for shed-on-full admission
//! control and [`push_blocking`](BoundedQueue::push_blocking) for
//! backpressure — and has explicit close-and-drain semantics for graceful
//! shutdown: after [`close`](BoundedQueue::close), producers are rejected
//! but consumers keep popping until the queue is empty, so no accepted
//! request is ever dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity (only from `try_push`); the item is handed
    /// back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

pub(crate) struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push: fails fast when full (admission control sheds the
    /// request) or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space (backpressure) and only fails when
    /// the queue closes, handing the item back.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if s.closed {
                return Err(item);
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self.not_full.wait(s).expect("queue lock poisoned");
        }
    }

    /// Blocking pop. `None` means the queue is closed *and* fully drained —
    /// the consumer's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: future pushes fail, pops drain the remainder, all
    /// waiters wake.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth (racy snapshot, for metrics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_rejects_producers_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.push_blocking(4), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_applies_backpressure() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(1).is_ok())
        };
        // The producer can only finish once we pop.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn multi_producer_multi_consumer_loses_nothing() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100u64 {
                        q.push_blocking(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
