//! Scenario identity and compilation.
//!
//! A [`Scenario`] is the unit the service caches on: one `(ETC, mapping,
//! τ, RadiusOptions)` quadruple. Compiling it builds exactly the analysis
//! that [`fepia_mapping::makespan_robustness_generic`] builds — same
//! perturbation, same per-machine [`SumSelected`] features, same tolerance
//! bound — so every number a [`CompiledScenario`] produces is bitwise
//! identical to the legacy one-shot path. The differential oracle test at
//! the workspace root holds the service to that.
//!
//! Identity is two-tier: [`Scenario::fingerprint`] is a 64-bit FNV-1a hash
//! over every bit that can change a result (ETC values, assignment, τ,
//! the full option set) used for shard routing and cache slotting, and
//! [`Scenario::same_as`] is the exact bitwise comparison that guards
//! against fingerprint collisions — a colliding-but-different scenario is
//! recompiled, never served from the wrong plan.

use fepia_core::{
    AnalysisPlan, CoreError, CurvePlan, CurveRefineOptions, EvalBudget, FeatureSpec, FepiaAnalysis,
    Perturbation, PlanVerdict, PlanWorkspace, RadiusOptions, ResiliencePolicy, SumSelected,
    Tolerance,
};
use fepia_etc::EtcMatrix;
use fepia_mapping::{DeltaEval, Mapping};
use fepia_optim::{Norm, VecN};
use std::sync::Arc;

/// Why a scenario was rejected at construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// ETC and mapping disagree on the number of applications or machines.
    ShapeMismatch {
        /// `(apps, machines)` of the ETC matrix.
        etc: (usize, usize),
        /// `(apps, machines)` of the mapping.
        mapping: (usize, usize),
    },
    /// The tolerance factor is not a finite number ≥ 1.
    BadTau(u64),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::ShapeMismatch { etc, mapping } => write!(
                f,
                "ETC is {}×{} but mapping is {}×{}",
                etc.0, etc.1, mapping.0, mapping.1
            ),
            ScenarioError::BadTau(bits) => {
                write!(
                    f,
                    "tolerance factor τ must be finite and ≥ 1, got {}",
                    f64::from_bits(*bits)
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One cacheable evaluation scenario: the §3.1 system `(C, μ, τ)` plus the
/// radius options. Immutable once constructed; shared via `Arc` between
/// clients, queues and the plan cache.
#[derive(Clone, Debug)]
pub struct Scenario {
    etc: Arc<EtcMatrix>,
    mapping: Mapping,
    tau: f64,
    opts: RadiusOptions,
}

impl Scenario {
    /// Validates shapes and τ and builds the scenario.
    pub fn new(
        etc: Arc<EtcMatrix>,
        mapping: Mapping,
        tau: f64,
        opts: RadiusOptions,
    ) -> Result<Scenario, ScenarioError> {
        if etc.apps() != mapping.apps() || etc.machines() != mapping.machines() {
            return Err(ScenarioError::ShapeMismatch {
                etc: (etc.apps(), etc.machines()),
                mapping: (mapping.apps(), mapping.machines()),
            });
        }
        if !(tau.is_finite() && tau >= 1.0) {
            return Err(ScenarioError::BadTau(tau.to_bits()));
        }
        Ok(Scenario {
            etc,
            mapping,
            tau,
            opts,
        })
    }

    /// The ETC matrix.
    pub fn etc(&self) -> &Arc<EtcMatrix> {
        &self.etc
    }

    /// The base mapping the plan is compiled for.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The makespan tolerance factor τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The radius options the plan is compiled with.
    pub fn opts(&self) -> &RadiusOptions {
        &self.opts
    }

    /// 64-bit FNV-1a fingerprint over every input bit that can change a
    /// result: matrix shape and values, assignment, τ, and the complete
    /// [`RadiusOptions`] (norm variant + weights, all solver fields).
    /// Used for shard routing and cache slotting; exact identity is
    /// re-checked with [`same_as`](Self::same_as) on every cache hit.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.etc.apps() as u64);
        h.u64(self.etc.machines() as u64);
        for &v in self.etc.values() {
            h.u64(v.to_bits());
        }
        for &j in self.mapping.assignment() {
            h.u64(j as u64);
        }
        h.u64(self.tau.to_bits());
        match &self.opts.norm {
            Norm::L1 => h.u64(1),
            Norm::L2 => h.u64(2),
            Norm::LInf => h.u64(3),
            Norm::WeightedL2(w) => {
                h.u64(4);
                h.u64(w.len() as u64);
                for &x in w {
                    h.u64(x.to_bits());
                }
            }
        }
        let s = &self.opts.solver;
        h.u64(s.tol.to_bits());
        h.u64(s.max_outer as u64);
        h.u64(s.t_max_factor.to_bits());
        h.u64(s.fd_step.to_bits());
        h.u64(s.seed_jitter.to_bits());
        h.u64(s.root.x_tol.to_bits());
        h.u64(s.root.f_tol.to_bits());
        h.u64(s.root.max_iter as u64);
        h.finish()
    }

    /// Exact identity: same τ bits, same options, same assignment, same ETC
    /// values bitwise. Collision-proof where the fingerprint is merely
    /// collision-resistant.
    pub fn same_as(&self, other: &Scenario) -> bool {
        self.tau.to_bits() == other.tau.to_bits()
            && self.opts == other.opts
            && self.mapping.machines() == other.mapping.machines()
            && self.mapping.assignment() == other.mapping.assignment()
            && (Arc::ptr_eq(&self.etc, &other.etc)
                || (self.etc.apps() == other.etc.apps()
                    && self.etc.machines() == other.etc.machines()
                    && self
                        .etc
                        .values()
                        .iter()
                        .zip(other.etc.values())
                        .all(|(a, b)| a.to_bits() == b.to_bits())))
    }

    /// Compiles the scenario into a reusable plan. The analysis is
    /// constructed exactly as [`fepia_mapping::makespan_robustness_generic`]
    /// constructs it, so plan evaluations are bitwise identical to the
    /// legacy path.
    pub fn compile(self: &Arc<Scenario>) -> Result<CompiledScenario, CoreError> {
        let makespan = self.mapping.makespan(&self.etc);
        let bound = self.tau * makespan;
        let origin = VecN::new(self.mapping.assigned_times(&self.etc));
        let apps = self.mapping.apps();

        let mut analysis =
            FepiaAnalysis::new(Perturbation::continuous("ETC vector C", origin.clone()));
        for j in 0..self.mapping.machines() {
            let on_j = self.mapping.apps_on(j);
            if on_j.is_empty() {
                continue; // F_j ≡ 0: unaffected by C, infinite radius.
            }
            analysis.add_feature(
                FeatureSpec::new(format!("finish-time m_{j}"), Tolerance::upper(bound)),
                SumSelected::new(on_j, apps),
            );
        }
        let plan = analysis.compile(&self.opts)?;
        Ok(CompiledScenario {
            scenario: Arc::clone(self),
            plan,
            origin,
        })
    }
}

/// Upper bound on explicit curve grids and on the dense grid an adaptive
/// request may expand to — curve units feed admission control, so the
/// worst case must be known at validation time.
pub const MAX_CURVE_POINTS: usize = 1024;
/// Deepest adaptive dyadic refinement the service accepts
/// (`2^MAX_CURVE_DEPTH + 1 ≤ MAX_CURVE_POINTS + 1`).
pub const MAX_CURVE_DEPTH: u32 = 10;

/// The tolerance grid of a degradation-curve request.
#[derive(Clone, Debug, PartialEq)]
pub enum CurveGrid {
    /// Evaluate exactly these τ levels, strictly ascending.
    Explicit(Vec<f64>),
    /// Adaptive dyadic refinement of `[tau_lo, tau_hi]` to depth
    /// `max_depth`, subdividing while the certified ρ-change across an
    /// interval exceeds `rho_resolution`.
    Adaptive {
        /// Lower endpoint (≥ 1, like any scenario τ).
        tau_lo: f64,
        /// Upper endpoint (> `tau_lo`).
        tau_hi: f64,
        /// Dyadic depth bound (≤ [`MAX_CURVE_DEPTH`]).
        max_depth: u32,
        /// Refinement stop: certified ρ-change per interval.
        rho_resolution: f64,
    },
}

/// A degradation-curve request spec: what to sweep on top of a scenario.
/// Participates in cache keying via [`CurveSpec::fingerprint`] — two
/// requests on the same scenario with different grids are different
/// requests, while the compiled plan they share is cached once per
/// scenario (that sharing *is* the curve amortization).
#[derive(Clone, Debug, PartialEq)]
pub struct CurveSpec {
    /// The tolerance grid.
    pub grid: CurveGrid,
}

impl CurveSpec {
    /// Why a spec was rejected: a human-readable validation error, `None`
    /// when the spec is servable.
    pub fn validate(&self) -> Option<String> {
        match &self.grid {
            CurveGrid::Explicit(levels) => {
                if levels.is_empty() {
                    return Some("curve grid must contain at least one level".into());
                }
                if levels.len() > MAX_CURVE_POINTS {
                    return Some(format!(
                        "curve grid of {} levels exceeds the {MAX_CURVE_POINTS}-point cap",
                        levels.len()
                    ));
                }
                for &t in levels {
                    if !(t.is_finite() && t >= 1.0) {
                        return Some(format!("curve level τ must be finite and ≥ 1, got {t}"));
                    }
                }
                if levels.windows(2).any(|w| w[0] >= w[1]) {
                    return Some("curve levels must be strictly ascending".into());
                }
                None
            }
            CurveGrid::Adaptive {
                tau_lo,
                tau_hi,
                max_depth,
                rho_resolution,
            } => {
                if !(tau_lo.is_finite() && *tau_lo >= 1.0) {
                    return Some(format!("curve τ_lo must be finite and ≥ 1, got {tau_lo}"));
                }
                if !(tau_hi.is_finite() && tau_hi > tau_lo) {
                    return Some(format!(
                        "curve τ_hi must be finite and > τ_lo, got {tau_hi}"
                    ));
                }
                if *max_depth > MAX_CURVE_DEPTH {
                    return Some(format!(
                        "curve depth {max_depth} exceeds the cap of {MAX_CURVE_DEPTH}"
                    ));
                }
                if !(rho_resolution.is_finite() && *rho_resolution >= 0.0) {
                    return Some(format!(
                        "curve ρ-resolution must be finite and ≥ 0, got {rho_resolution}"
                    ));
                }
                None
            }
        }
    }

    /// Worst-case number of curve points this spec can produce — the unit
    /// count admission control and deadline budgets charge the request.
    pub fn max_points(&self) -> usize {
        match &self.grid {
            CurveGrid::Explicit(levels) => levels.len(),
            CurveGrid::Adaptive { max_depth, .. } => (1usize << max_depth) + 1,
        }
    }

    /// 64-bit FNV-1a fingerprint of the grid (tag + every level/field's
    /// IEEE bits). Combined with [`Scenario::fingerprint`] this keys a
    /// curve request: specs differing in any grid bit get different keys.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        match &self.grid {
            CurveGrid::Explicit(levels) => {
                h.u64(1);
                h.u64(levels.len() as u64);
                for &t in levels {
                    h.u64(t.to_bits());
                }
            }
            CurveGrid::Adaptive {
                tau_lo,
                tau_hi,
                max_depth,
                rho_resolution,
            } => {
                h.u64(2);
                h.u64(tau_lo.to_bits());
                h.u64(tau_hi.to_bits());
                h.u64(*max_depth as u64);
                h.u64(rho_resolution.to_bits());
            }
        }
        h.finish()
    }

    /// The request-level cache key: scenario identity and grid identity
    /// folded together.
    pub fn request_key(&self, scenario_fingerprint: u64) -> u64 {
        let mut h = Fnv::new();
        h.u64(scenario_fingerprint);
        h.u64(self.fingerprint());
        h.finish()
    }
}

/// Curve metadata carried alongside the per-point verdicts in a response:
/// which τ was evaluated at each point (explicit echoes the request grid;
/// adaptive reports the refined grid) plus the monotonicity flag.
#[derive(Clone, Debug, PartialEq)]
pub struct CurveMeta {
    /// The τ level of each verdict, ascending, one per response verdict.
    pub taus: Vec<f64>,
    /// No adjacent pair certifies a ρ decrease as τ grows (see
    /// [`fepia_core::CurveVerdict`]).
    pub monotone: bool,
}

/// A compiled scenario: the shared [`AnalysisPlan`] plus the assumed
/// operating point `C_orig`. What the per-shard cache stores.
pub struct CompiledScenario {
    scenario: Arc<Scenario>,
    plan: Arc<AnalysisPlan>,
    origin: VecN,
}

impl CompiledScenario {
    /// The scenario this plan was compiled from.
    pub fn scenario(&self) -> &Arc<Scenario> {
        &self.scenario
    }

    /// The compiled plan.
    pub fn plan(&self) -> &Arc<AnalysisPlan> {
        &self.plan
    }

    /// The assumed operating point `C_orig` (assigned times of the base
    /// mapping).
    pub fn origin(&self) -> &VecN {
        &self.origin
    }

    /// Fault-tolerant evaluation at `C_orig`.
    pub fn verdict_at_origin(
        &self,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
    ) -> PlanVerdict {
        self.plan.evaluate_verdict_with(&self.origin, ws, policy)
    }

    /// [`Self::verdict_at_origin`] under a deterministic work budget — the
    /// brownout path. Affine features stay exact; numeric features past the
    /// budget truncate to certified `Bounded` intervals.
    pub fn verdict_at_origin_budgeted(
        &self,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> PlanVerdict {
        self.plan
            .evaluate_verdict_budgeted_with(&self.origin, ws, policy, budget)
    }

    /// Fault-tolerant evaluation at caller-supplied origins (perturbed
    /// operating points), one verdict per origin.
    pub fn verdicts_at(
        &self,
        origins: &[VecN],
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
    ) -> Vec<PlanVerdict> {
        origins
            .iter()
            .map(|o| self.plan.evaluate_verdict_with(o, ws, policy))
            .collect()
    }

    /// [`Self::verdicts_at`] under a deterministic work budget, applied
    /// per origin.
    pub fn verdicts_at_budgeted(
        &self,
        origins: &[VecN],
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> Vec<PlanVerdict> {
        origins
            .iter()
            .map(|o| {
                self.plan
                    .evaluate_verdict_budgeted_with(o, ws, policy, budget)
            })
            .collect()
    }

    /// The full degradation curve ρ(τ) over this scenario's compiled plan:
    /// one budgeted verdict per grid level, sharing the plan's affine
    /// block, dual norms and solver workspace across all levels.
    ///
    /// Each level's tolerance bound is `τ_k · makespan` computed with the
    /// *same arithmetic* [`Scenario::compile`] uses for its single τ, so
    /// every curve point is bitwise identical to compiling an independent
    /// scenario at `τ_k` and evaluating its verdict — the differential
    /// oracle `tests/curve_equivalence.rs` holds the service to this.
    pub fn curve_verdicts(
        &self,
        spec: &CurveSpec,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
        budget: EvalBudget,
    ) -> (Vec<PlanVerdict>, CurveMeta) {
        let makespan = self.scenario.mapping.makespan(&self.scenario.etc);
        let features = self.plan.feature_count();
        let tols = move |tau: f64| -> Vec<Tolerance> {
            let bound = tau * makespan;
            (0..features).map(|_| Tolerance::upper(bound)).collect()
        };
        let curve = CurvePlan::new(Arc::clone(&self.plan));
        let cv = match &spec.grid {
            CurveGrid::Explicit(levels) => {
                curve.sweep_with(&self.origin, levels, &tols, ws, policy, budget)
            }
            CurveGrid::Adaptive {
                tau_lo,
                tau_hi,
                max_depth,
                rho_resolution,
            } => curve.refine_with(
                &self.origin,
                *tau_lo,
                *tau_hi,
                CurveRefineOptions {
                    max_depth: *max_depth,
                    rho_resolution: *rho_resolution,
                },
                &tols,
                ws,
                policy,
                budget,
            ),
        };
        let meta = CurveMeta {
            taus: cv.levels(),
            monotone: cv.monotone,
        };
        (cv.verdicts(), meta)
    }

    /// One verdict per single-application move `(app, dst)`, each evaluated
    /// against the base mapping with that one move applied — the hot
    /// scheduler-probe path. Runs on [`DeltaEval`] (O(2 machines) per
    /// move); the reported metric is bitwise identical to a full
    /// [`fepia_mapping::makespan_robustness`] recompute on the moved
    /// mapping.
    pub fn move_verdicts(&self, moves: &[(usize, usize)]) -> Vec<PlanVerdict> {
        let mut de = DeltaEval::new(
            &self.scenario.etc,
            &self.scenario.mapping,
            self.scenario.tau,
        );
        moves
            .iter()
            .map(|&(app, dst)| {
                let src = de.machine_of(app).expect("base mapping is complete");
                de.apply(app, dst);
                let v = de.verdict();
                de.apply(app, src); // revert: re-summed loads are bitwise-exact
                PlanVerdict::from_radii(vec![v])
            })
            .collect()
    }
}

/// FNV-1a over 64-bit words (little-endian byte order).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fepia_etc::{generate_cvb, EtcParams};
    use fepia_mapping::makespan_robustness;
    use fepia_stats::rng_for;

    fn scenario(seed: u64, tau: f64) -> Arc<Scenario> {
        let etc = Arc::new(generate_cvb(
            &mut rng_for(seed, 0),
            &EtcParams::paper_section_4_2(),
        ));
        let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
        Arc::new(Scenario::new(etc, mapping, tau, RadiusOptions::default()).unwrap())
    }

    #[test]
    fn construction_validates_inputs() {
        let etc = Arc::new(EtcMatrix::uniform(3, 2, 10.0));
        let m3 = Mapping::new(vec![0, 1, 0], 2);
        assert!(Scenario::new(Arc::clone(&etc), m3.clone(), 1.2, RadiusOptions::default()).is_ok());
        let m2 = Mapping::new(vec![0, 1], 2);
        assert!(matches!(
            Scenario::new(Arc::clone(&etc), m2, 1.2, RadiusOptions::default()),
            Err(ScenarioError::ShapeMismatch { .. })
        ));
        for bad_tau in [0.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Scenario::new(
                    Arc::clone(&etc),
                    m3.clone(),
                    bad_tau,
                    RadiusOptions::default()
                ),
                Err(ScenarioError::BadTau(_))
            ));
        }
    }

    #[test]
    fn fingerprint_is_deterministic_and_input_sensitive() {
        let a = scenario(1, 1.2);
        assert_eq!(a.fingerprint(), scenario(1, 1.2).fingerprint());
        assert!(a.same_as(&scenario(1, 1.2)));

        // τ, mapping, ETC and options all feed the fingerprint.
        assert_ne!(a.fingerprint(), scenario(1, 1.25).fingerprint());
        assert_ne!(a.fingerprint(), scenario(2, 1.2).fingerprint());
        let tighter = Arc::new(
            Scenario::new(
                Arc::clone(a.etc()),
                a.mapping().clone(),
                a.tau(),
                RadiusOptions {
                    norm: Norm::LInf,
                    solver: Default::default(),
                },
            )
            .unwrap(),
        );
        assert_ne!(a.fingerprint(), tighter.fingerprint());
        assert!(!a.same_as(&tighter));
    }

    #[test]
    fn compiled_origin_verdict_matches_legacy_closed_form() {
        for seed in 0..5u64 {
            let s = scenario(seed, 1.2);
            let compiled = s.compile().unwrap();
            let mut ws = PlanWorkspace::new();
            let v = compiled.verdict_at_origin(&mut ws, &ResiliencePolicy::default());
            assert!(v.is_exact());
            let report =
                fepia_mapping::makespan_robustness_generic(s.mapping(), s.etc(), s.tau(), s.opts())
                    .unwrap();
            assert_eq!(v.metric_hi.to_bits(), report.metric.to_bits());
        }
    }

    #[test]
    fn move_verdicts_match_full_recompute_bitwise() {
        let s = scenario(3, 1.2);
        let mut rng = rng_for(3, 42);
        use rand::Rng;
        let moves: Vec<(usize, usize)> = (0..50)
            .map(|_| (rng.gen_range(0..20), rng.gen_range(0..5)))
            .collect();
        let compiled = s.compile().unwrap();
        let verdicts = compiled.move_verdicts(&moves);
        for (&(app, dst), v) in moves.iter().zip(&verdicts) {
            let mut moved = s.mapping().clone();
            moved.reassign(app, dst);
            let expected = makespan_robustness(&moved, s.etc(), s.tau()).unwrap();
            assert!(v.is_exact());
            assert_eq!(v.metric_hi.to_bits(), expected.metric.to_bits());
        }
    }
}
