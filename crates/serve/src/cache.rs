//! Per-shard LRU cache of compiled scenarios, with single-flight
//! compilation.
//!
//! The cache is keyed on the 64-bit [`Scenario::fingerprint`]; on every hit
//! the stored scenario is re-checked with the exact [`Scenario::same_as`]
//! comparison, so a fingerprint collision can cost a recompile but can
//! never serve the wrong plan.
//!
//! **Single-flight.** When two workers of one shard ask for the same
//! not-yet-compiled scenario, the first inserts a `Compiling` marker and
//! compiles outside the lock; the second waits on a condvar and picks up
//! the published plan ([`CacheOutcome::Coalesced`]) instead of compiling
//! the same scenario twice. If the first compile fails, the marker is
//! removed and waiters fall through to compiling themselves (the error
//! might be transient fault injection).
//!
//! **Eviction.** Slots carry a monotone last-used tick; inserting beyond
//! capacity evicts the least-recently-used *ready* slot. `Compiling`
//! markers are never evicted (a waiter is parked on them).

use crate::scenario::{CompiledScenario, Scenario};
use fepia_core::CoreError;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// How the cache satisfied a lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The compiled plan was already resident.
    Hit,
    /// This worker compiled the plan (cold miss, collision replacement, or
    /// retry after a failed in-flight compile).
    Compiled,
    /// Another worker was compiling the same scenario; this lookup waited
    /// for its result instead of duplicating the work.
    Coalesced,
}

impl CacheOutcome {
    /// Obs counter suffix (`serve.cache.<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hits",
            CacheOutcome::Compiled => "misses",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

enum Slot {
    Ready {
        compiled: Arc<CompiledScenario>,
        last_used: u64,
    },
    Compiling,
}

struct Inner {
    slots: HashMap<u64, Slot>,
    tick: u64,
}

/// A bounded LRU cache of [`CompiledScenario`]s keyed by
/// [`Scenario::fingerprint`], with single-flight compilation: concurrent
/// lookups of the same (not-yet-compiled) scenario coalesce onto one
/// compilation instead of racing. Fingerprint collisions are detected by
/// [`Scenario::same_as`] and resolved by evict-and-recompile — a colliding
/// scenario is never served another scenario's plan.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        PlanCache {
            capacity,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Returns the compiled scenario, compiling it (or waiting for an
    /// in-flight compilation) as needed.
    pub fn get_or_compile(
        &self,
        scenario: &Arc<Scenario>,
    ) -> (Result<Arc<CompiledScenario>, CoreError>, CacheOutcome) {
        enum Decision {
            Found(Arc<CompiledScenario>),
            Wait,
            Compile,
        }
        let fp = scenario.fingerprint();
        let mut waited = false;
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        loop {
            let state = &mut *inner;
            let decision = match state.slots.get_mut(&fp) {
                Some(Slot::Ready {
                    compiled,
                    last_used,
                }) => {
                    if compiled.scenario().same_as(scenario) {
                        state.tick += 1;
                        *last_used = state.tick;
                        Decision::Found(Arc::clone(compiled))
                    } else {
                        // Fingerprint collision: a *different* scenario owns
                        // the slot. Evict it and recompile rather than ever
                        // serving the wrong plan.
                        state.slots.remove(&fp);
                        if fepia_obs::enabled() {
                            fepia_obs::global().counter("serve.cache.collisions").inc();
                        }
                        Decision::Compile
                    }
                }
                Some(Slot::Compiling) => Decision::Wait,
                None => Decision::Compile,
            };
            match decision {
                Decision::Found(compiled) => {
                    let out = if waited {
                        CacheOutcome::Coalesced
                    } else {
                        CacheOutcome::Hit
                    };
                    return (Ok(compiled), out);
                }
                Decision::Wait => {
                    waited = true;
                    inner = self.ready.wait(inner).expect("cache lock poisoned");
                }
                Decision::Compile => break,
            }
        }
        inner.slots.insert(fp, Slot::Compiling);
        drop(inner);

        let result = scenario.compile().map(Arc::new);

        let mut inner = self.inner.lock().expect("cache lock poisoned");
        match &result {
            Ok(compiled) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.slots.insert(
                    fp,
                    Slot::Ready {
                        compiled: Arc::clone(compiled),
                        last_used: tick,
                    },
                );
                self.evict_lru(&mut inner);
            }
            Err(_) => {
                // Remove the marker so waiters retry the compile themselves.
                inner.slots.remove(&fp);
            }
        }
        drop(inner);
        self.ready.notify_all();
        (result, CacheOutcome::Compiled)
    }

    /// Evicts least-recently-used ready slots until within capacity.
    fn evict_lru(&self, inner: &mut Inner) {
        while inner.slots.len() > self.capacity {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { last_used, .. } => Some((*k, *last_used)),
                    Slot::Compiling => None,
                })
                .min_by_key(|&(_, t)| t)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    inner.slots.remove(&k);
                    if fepia_obs::enabled() {
                        fepia_obs::global().counter("serve.cache.evictions").inc();
                    }
                }
                None => break, // only Compiling markers left: never evicted
            }
        }
    }

    /// Number of resident slots (ready + compiling), for tests.
    #[cfg(test)]
    fn slot_count(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fepia_core::RadiusOptions;
    use fepia_etc::{generate_cvb, EtcParams};
    use fepia_mapping::Mapping;
    use fepia_stats::rng_for;
    use std::thread;

    fn scenario(seed: u64) -> Arc<Scenario> {
        let etc = Arc::new(generate_cvb(
            &mut rng_for(seed, 0),
            &EtcParams::paper_section_4_2(),
        ));
        let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
        Arc::new(Scenario::new(etc, mapping, 1.2, RadiusOptions::default()).unwrap())
    }

    #[test]
    fn hit_after_compile_returns_same_plan() {
        let cache = PlanCache::new(4);
        let s = scenario(1);
        let (a, out_a) = cache.get_or_compile(&s);
        assert_eq!(out_a, CacheOutcome::Compiled);
        let (b, out_b) = cache.get_or_compile(&s);
        assert_eq!(out_b, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
    }

    #[test]
    fn equal_scenarios_from_different_allocations_hit() {
        let cache = PlanCache::new(4);
        let (_, first) = cache.get_or_compile(&scenario(2));
        assert_eq!(first, CacheOutcome::Compiled);
        let (_, second) = cache.get_or_compile(&scenario(2));
        assert_eq!(second, CacheOutcome::Hit);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = PlanCache::new(2);
        let (s1, s2, s3) = (scenario(1), scenario(2), scenario(3));
        cache.get_or_compile(&s1).0.unwrap();
        cache.get_or_compile(&s2).0.unwrap();
        cache.get_or_compile(&s1).0.unwrap(); // touch s1: s2 becomes LRU
        cache.get_or_compile(&s3).0.unwrap(); // evicts s2
        assert_eq!(cache.slot_count(), 2);
        assert_eq!(cache.get_or_compile(&s1).1, CacheOutcome::Hit);
        assert_eq!(cache.get_or_compile(&s3).1, CacheOutcome::Hit);
        // s2 must recompile — but then it evicts the current LRU (s1).
        assert_eq!(cache.get_or_compile(&s2).1, CacheOutcome::Compiled);
    }

    #[test]
    fn concurrent_lookups_coalesce_to_one_plan() {
        let cache = Arc::new(PlanCache::new(4));
        let s = scenario(7);
        let plans: Vec<Arc<CompiledScenario>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let s = Arc::clone(&s);
                    scope.spawn(move || cache.get_or_compile(&s).0.unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Everyone got the *same* Arc: exactly one compile happened.
        assert!(plans.iter().all(|p| Arc::ptr_eq(p, &plans[0])));
    }
}
