//! Long-running optimizer jobs: the job table.
//!
//! A [`JobTable`] turns the mapping heuristics into a served product:
//! submit an ETC + τ + heuristic config ([`JobSpec`]) and get back a job
//! id; poll for best-so-far progress ([`JobSnapshot`]); cancel; all under
//! bounded concurrent-job admission. Each job runs its candidate
//! population **parallel via `fepia-par`** on top of `DeltaEval` and
//! accumulates a makespan × robustness [`ParetoFront`].
//!
//! # Determinism
//!
//! Candidate `k` of a job is a pure function of `(spec.seed, k)`: it runs
//! heuristic `k % heuristics.len()` with the RNG stream
//! `rng_for(seed, k)` and evaluates the resulting mapping with the same
//! `DeltaEval` arithmetic as everything else. Batches are evaluated with
//! [`fepia_par::par_map_dynamic_catch_with`] — results come back in
//! **input order** regardless of thread count or work stealing — and are
//! folded into the front **sequentially in index order** on the runner
//! thread. The front after `b` completed batches is therefore a pure
//! function of `(spec, b)`: bitwise identical across runs, across 1/2/8
//! worker threads, and under fault injection (injected `par.task` panics
//! are quarantined and re-dispatched; a re-run of a pure candidate
//! returns the same bits, and `mapping.delta.load` poisons self-heal
//! bitwise inside `DeltaEval`).
//!
//! # Cancellation
//!
//! [`JobTable::cancel`] flips the job's cancel flag and immediately marks
//! the snapshot `Cancelled`, so in-flight polls answer with the typed
//! terminal state at once. The runner observes the flag at the next batch
//! boundary, stops without folding the interrupted batch, and releases
//! its admission slot. Because the front only ever advances at batch
//! boundaries, a cancelled job's front is bitwise identical to the prefix
//! an uncancelled same-seed run shows after the same number of batches.

use crate::service::ShedReason;
use fepia_etc::EtcMatrix;
use fepia_mapping::heuristics::{Genetic, RobustGreedy, SimulatedAnnealing, TabuSearch};
use fepia_mapping::{FrontPoint, MappingHeuristic, ParetoFront};
use fepia_par::{par_map_dynamic_catch_with, CatchConfig, ParConfig, TaskError};
use fepia_stats::rng_for;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

// Hard validation caps: admission control must know the worst-case work a
// job can fan out to before accepting it.
/// Most candidates a single job may evaluate.
pub const MAX_JOB_POPULATION: u32 = 1 << 20;
/// Most heuristics a job config may cycle over.
pub const MAX_JOB_HEURISTICS: usize = 64;
/// Per-heuristic iteration/population cap.
pub const MAX_HEURISTIC_ITERS: u32 = 10_000_000;
/// Most worker threads a job may request.
pub const MAX_JOB_THREADS: u32 = 256;

/// One seeded search heuristic with its own budget — the per-job unit of
/// configuration (per-heuristic budgets are the point; see
/// [`fepia_mapping::HeuristicBudgets`] for the sweep-style equivalent).
#[derive(Clone, Debug, PartialEq)]
pub enum JobHeuristic {
    /// [`SimulatedAnnealing`] with an explicit iteration budget.
    Annealing {
        /// Accept/reject iterations (one delta eval each).
        iterations: u32,
        /// Initial temperature (relative cost units).
        initial_temperature: f64,
        /// Geometric cooling factor per iteration.
        cooling: f64,
    },
    /// [`TabuSearch`] with an explicit iteration budget.
    Tabu {
        /// Steepest-descent iterations (a full neighborhood scan each).
        iterations: u32,
        /// Tabu list length.
        tabu_len: u32,
    },
    /// [`Genetic`] with explicit population/generation budgets.
    Genetic {
        /// GA population size.
        population: u32,
        /// Generations to evolve.
        generations: u32,
        /// Per-gene mutation probability.
        mutation_rate: f64,
    },
    /// [`RobustGreedy`] at the job's τ (deterministic; ignores the RNG).
    RobustGreedy,
}

impl JobHeuristic {
    /// Why this config can never run, or `None` if it is valid.
    pub fn validate(&self) -> Option<String> {
        let bounded = |what: &str, v: u32| -> Option<String> {
            if v == 0 {
                Some(format!("{what} must be >= 1"))
            } else if v > MAX_HEURISTIC_ITERS {
                Some(format!(
                    "{what} of {v} exceeds the {MAX_HEURISTIC_ITERS} cap"
                ))
            } else {
                None
            }
        };
        let finite01 = |what: &str, v: f64| -> Option<String> {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                Some(format!("{what} must be finite in [0, 1], got {v}"))
            } else {
                None
            }
        };
        match self {
            JobHeuristic::Annealing {
                iterations,
                initial_temperature,
                cooling,
            } => bounded("annealing iterations", *iterations)
                .or_else(|| {
                    (!(initial_temperature.is_finite() && *initial_temperature > 0.0)).then(|| {
                        format!(
                            "annealing temperature must be finite > 0, got {initial_temperature}"
                        )
                    })
                })
                .or_else(|| finite01("annealing cooling", *cooling)),
            JobHeuristic::Tabu {
                iterations,
                tabu_len,
            } => bounded("tabu iterations", *iterations)
                .or_else(|| bounded("tabu list length", *tabu_len)),
            JobHeuristic::Genetic {
                population,
                generations,
                mutation_rate,
            } => bounded("genetic population", *population)
                .or_else(|| bounded("genetic generations", *generations))
                .or_else(|| finite01("genetic mutation rate", *mutation_rate)),
            JobHeuristic::RobustGreedy => None,
        }
    }

    /// Builds the boxed heuristic (τ parameterizes only the greedy).
    pub fn build(&self, tau: f64) -> Box<dyn MappingHeuristic> {
        match *self {
            JobHeuristic::Annealing {
                iterations,
                initial_temperature,
                cooling,
            } => Box::new(SimulatedAnnealing {
                iterations: iterations as usize,
                initial_temperature,
                cooling,
            }),
            JobHeuristic::Tabu {
                iterations,
                tabu_len,
            } => Box::new(TabuSearch {
                iterations: iterations as usize,
                tabu_len: tabu_len as usize,
            }),
            JobHeuristic::Genetic {
                population,
                generations,
                mutation_rate,
            } => Box::new(Genetic {
                population: population as usize,
                generations: generations as usize,
                mutation_rate,
            }),
            JobHeuristic::RobustGreedy => Box::new(RobustGreedy { tau }),
        }
    }

    /// Work units one candidate of this heuristic burns, counted in delta
    /// evaluations (tabu scans `apps × (machines−1)` moves per iteration;
    /// the GA's full-mapping fitness evals are charged one unit each).
    /// Admission, progress accounting and the bench throughput figure all
    /// use this estimate.
    pub fn delta_evals(&self, apps: usize, machines: usize) -> u64 {
        match *self {
            JobHeuristic::Annealing { iterations, .. } => iterations as u64,
            JobHeuristic::Tabu { iterations, .. } => {
                iterations as u64 * apps as u64 * machines.saturating_sub(1) as u64
            }
            JobHeuristic::Genetic {
                population,
                generations,
                ..
            } => population as u64 * (generations as u64 + 1),
            JobHeuristic::RobustGreedy => apps as u64 * machines as u64,
        }
    }
}

/// A full optimizer-job specification: the §3.1 system `(C, τ)` plus the
/// seeded population to search with.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The ETC matrix to optimize over.
    pub etc: Arc<EtcMatrix>,
    /// Makespan tolerance factor for the Eq. 6/7 metric (finite, ≥ 1).
    pub tau: f64,
    /// Master seed; candidate `k` draws from `rng_for(seed, k)`.
    pub seed: u64,
    /// Total candidates to evaluate (cycling over `heuristics`).
    pub population: u32,
    /// Progress/cancellation granularity: the population is evaluated in
    /// this many batches, and the front-so-far snapshot advances after
    /// each (1 ≤ batches ≤ population).
    pub batches: u32,
    /// The heuristics to cycle over, each with its own budget.
    pub heuristics: Vec<JobHeuristic>,
    /// Worker threads for the population-parallel batches (0 = table
    /// default). Thread count never changes results, only wall time.
    pub threads: u32,
}

impl JobSpec {
    /// Why this spec can never run, or `None` if it is servable.
    pub fn validate(&self) -> Option<String> {
        if self.etc.apps() == 0 || self.etc.machines() == 0 {
            return Some(format!(
                "ETC must be non-empty, got {}×{}",
                self.etc.apps(),
                self.etc.machines()
            ));
        }
        if !(self.tau.is_finite() && self.tau >= 1.0) {
            return Some(format!(
                "tolerance factor τ must be finite and ≥ 1, got {}",
                self.tau
            ));
        }
        if self.population == 0 || self.population > MAX_JOB_POPULATION {
            return Some(format!(
                "population must be in 1..={MAX_JOB_POPULATION}, got {}",
                self.population
            ));
        }
        if self.batches == 0 || self.batches > self.population {
            return Some(format!(
                "batches must be in 1..=population, got {} for population {}",
                self.batches, self.population
            ));
        }
        if self.heuristics.is_empty() || self.heuristics.len() > MAX_JOB_HEURISTICS {
            return Some(format!(
                "heuristic list must have 1..={MAX_JOB_HEURISTICS} entries, got {}",
                self.heuristics.len()
            ));
        }
        if self.threads > MAX_JOB_THREADS {
            return Some(format!(
                "threads of {} exceeds the {MAX_JOB_THREADS} cap",
                self.threads
            ));
        }
        self.heuristics.iter().find_map(|h| h.validate())
    }

    /// Candidates per batch (the last batch may be short).
    pub fn batch_size(&self) -> u32 {
        self.population.div_ceil(self.batches)
    }

    /// Total work the job fans out to, in delta evaluations.
    pub fn total_evals(&self) -> u64 {
        let (apps, machines) = (self.etc.apps(), self.etc.machines());
        (0..self.population as u64)
            .map(|k| {
                self.heuristics[(k % self.heuristics.len() as u64) as usize]
                    .delta_evals(apps, machines)
            })
            .sum()
    }
}

/// Job lifecycle states. `Running` is the only non-terminal state: jobs
/// start running at submit (admission already happened).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Batches are still being evaluated.
    Running,
    /// Every batch completed; the front is final.
    Done,
    /// Cancelled; the front is the prefix at the last completed batch.
    Cancelled,
    /// A candidate failed terminally (panicked past the re-dispatch
    /// budget); the snapshot's `error` says why.
    Failed,
}

impl JobState {
    /// Whether the job will never advance again.
    pub fn is_terminal(self) -> bool {
        self != JobState::Running
    }
}

/// A point-in-time view of a job: typed state, progress counters, and the
/// best-so-far Pareto front. What polls (and the wire) return.
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// The job id.
    pub job: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Terminal failure detail (`state == Failed` only).
    pub error: Option<String>,
    /// Completed batches.
    pub batches_done: u32,
    /// Total batches the spec asked for.
    pub batches_total: u32,
    /// Candidates folded into the front so far.
    pub candidates_done: u64,
    /// Total candidates the spec asked for.
    pub candidates_total: u64,
    /// Delta evaluations burned so far (per [`JobHeuristic::delta_evals`]).
    pub evals_done: u64,
    /// Total delta evaluations the job will burn.
    pub evals_total: u64,
    /// Best-so-far makespan × robustness front, makespan-ascending.
    pub front: Vec<FrontPoint>,
}

/// Why the job table refused an operation. Typed, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// Admission: the concurrent-job bound is full. Same family as the
    /// eval path's [`crate::ServeError::Overloaded`] — retry later.
    Busy {
        /// Jobs currently running.
        running: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The spec can never run as sent (permanent; do not retry).
    Invalid(String),
    /// No job with this id exists (never existed, or evicted after
    /// retention).
    Unknown(u64),
    /// The table is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Busy { running, limit } => {
                write!(f, "job table busy: {running}/{limit} jobs running")
            }
            JobError::Invalid(msg) => write!(f, "invalid job spec: {msg}"),
            JobError::Unknown(id) => write!(f, "no such job {id}"),
            JobError::ShuttingDown => write!(f, "job table is shutting down"),
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    /// Maps admission refusals onto the wire's shed vocabulary.
    pub fn shed_reason(&self) -> Option<ShedReason> {
        match self {
            JobError::Busy { .. } => Some(ShedReason::QueueFull),
            JobError::ShuttingDown => Some(ShedReason::ShuttingDown),
            _ => None,
        }
    }
}

/// Sizing for a [`JobTable`].
#[derive(Clone, Debug)]
pub struct JobTableConfig {
    /// Concurrent-job admission bound; submits past it get a typed
    /// [`JobError::Busy`].
    pub max_jobs: usize,
    /// Default worker threads per job when the spec says 0 (0 here =
    /// `fepia-par`'s own default, one per core).
    pub threads: usize,
    /// Finished jobs kept pollable; the oldest finished job is evicted
    /// past this bound (polling it then answers [`JobError::Unknown`]).
    pub retain: usize,
}

impl Default for JobTableConfig {
    fn default() -> JobTableConfig {
        JobTableConfig {
            max_jobs: 4,
            threads: 0,
            retain: 64,
        }
    }
}

/// Always-on job-table counters (relaxed atomics, like [`crate::ServiceStats`]).
#[derive(Debug, Default)]
struct JobCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    candidates: AtomicU64,
    evals: AtomicU64,
}

/// A point-in-time copy of the table counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobStatsSnapshot {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submits refused at admission.
    pub rejected: u64,
    /// Jobs that ran every batch.
    pub completed: u64,
    /// Jobs cancelled before completion.
    pub cancelled: u64,
    /// Jobs that failed terminally.
    pub failed: u64,
    /// Batches folded into fronts.
    pub batches: u64,
    /// Candidates evaluated.
    pub candidates: u64,
    /// Delta evaluations burned (per [`JobHeuristic::delta_evals`]).
    pub evals: u64,
}

struct JobEntry {
    id: u64,
    cancel: AtomicBool,
    /// Set by the runner after it released its admission slot — the
    /// "capacity actually freed" signal [`JobTable::wait`] blocks on.
    settled: AtomicBool,
    snapshot: Mutex<JobSnapshot>,
    cv: Condvar,
}

impl JobEntry {
    fn snapshot(&self) -> JobSnapshot {
        self.snapshot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

struct JobTableInner {
    config: JobTableConfig,
    jobs: Mutex<JobMap>,
    running: AtomicUsize,
    shutting_down: AtomicBool,
    next_id: AtomicU64,
    counters: JobCounters,
}

#[derive(Default)]
struct JobMap {
    by_id: HashMap<u64, Arc<JobEntry>>,
    /// Finished ids in finish order, for retention eviction.
    finished: std::collections::VecDeque<u64>,
}

/// The job table: bounded admission, per-job runner threads, snapshot
/// polling, cancellation, and always-on stats. See the module docs for
/// the determinism and cancellation contracts.
pub struct JobTable {
    inner: Arc<JobTableInner>,
}

impl JobTable {
    /// An empty table.
    pub fn new(config: JobTableConfig) -> JobTable {
        JobTable {
            inner: Arc::new(JobTableInner {
                config,
                jobs: Mutex::new(JobMap::default()),
                running: AtomicUsize::new(0),
                shutting_down: AtomicBool::new(false),
                next_id: AtomicU64::new(1),
                counters: JobCounters::default(),
            }),
        }
    }

    /// Validates and admits a job, spawning its runner thread. Returns
    /// the job id, or a typed refusal: [`JobError::Invalid`] for specs
    /// that can never run, [`JobError::Busy`] when `max_jobs` jobs are
    /// already running.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, JobError> {
        self.submit_traced(spec, 0)
    }

    /// [`JobTable::submit`] carrying a trace id for `job.*` spans.
    pub fn submit_traced(&self, spec: JobSpec, trace: u64) -> Result<u64, JobError> {
        let inner = &self.inner;
        if let Some(msg) = spec.validate() {
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            if fepia_obs::enabled() {
                fepia_obs::global().counter("job.rejected").inc();
            }
            return Err(JobError::Invalid(msg));
        }
        if inner.shutting_down.load(Ordering::SeqCst) {
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(JobError::ShuttingDown);
        }
        // Reserve an admission slot with a CAS loop so two racing submits
        // can never both land in the last slot.
        let limit = inner.config.max_jobs;
        loop {
            let running = inner.running.load(Ordering::SeqCst);
            if running >= limit {
                inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                if fepia_obs::enabled() {
                    fepia_obs::global().counter("job.rejected").inc();
                }
                return Err(JobError::Busy { running, limit });
            }
            if inner
                .running
                .compare_exchange(running, running + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }

        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(JobEntry {
            id,
            cancel: AtomicBool::new(false),
            settled: AtomicBool::new(false),
            snapshot: Mutex::new(JobSnapshot {
                job: id,
                state: JobState::Running,
                error: None,
                batches_done: 0,
                batches_total: spec.batches,
                candidates_done: 0,
                candidates_total: spec.population as u64,
                evals_done: 0,
                evals_total: spec.total_evals(),
                front: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        {
            let mut jobs = inner.jobs.lock().unwrap_or_else(|p| p.into_inner());
            jobs.by_id.insert(id, Arc::clone(&entry));
        }
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if fepia_obs::enabled() {
            fepia_obs::global().counter("job.submitted").inc();
        }
        let submitted = Instant::now();
        if trace != 0 && fepia_obs::trace::trace_enabled() {
            fepia_obs::trace::with_wall(
                fepia_obs::trace::span_event(
                    fepia_obs::TraceId(trace),
                    fepia_obs::trace::stage::JOB_SUBMIT,
                    id,
                ),
                submitted,
            )
            .field("population", spec.population as u64)
            .emit();
        }

        let runner_inner = Arc::clone(inner);
        let runner_entry = Arc::clone(&entry);
        let spawned = std::thread::Builder::new()
            .name(format!("fepia-job-{id}"))
            .spawn(move || run_job(runner_inner, runner_entry, spec, trace));
        if let Err(e) = spawned {
            // Roll back admission; surface as a typed refusal, not a panic.
            inner.running.fetch_sub(1, Ordering::SeqCst);
            let mut jobs = inner.jobs.lock().unwrap_or_else(|p| p.into_inner());
            jobs.by_id.remove(&id);
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(JobError::Invalid(format!("cannot spawn job runner: {e}")));
        }
        Ok(id)
    }

    fn entry(&self, job: u64) -> Result<Arc<JobEntry>, JobError> {
        let jobs = self.inner.jobs.lock().unwrap_or_else(|p| p.into_inner());
        jobs.by_id.get(&job).cloned().ok_or(JobError::Unknown(job))
    }

    /// The job's current snapshot (state, progress, best-so-far front).
    pub fn status(&self, job: u64) -> Result<JobSnapshot, JobError> {
        Ok(self.entry(job)?.snapshot())
    }

    /// Requests cancellation and returns the resulting snapshot.
    /// Idempotent; a job already terminal keeps its state. The snapshot
    /// flips to `Cancelled` immediately — in-flight polls see the typed
    /// terminal state before the runner has wound down — and the
    /// admission slot is released when the runner observes the flag at
    /// the next batch boundary ([`JobTable::wait`] blocks on exactly
    /// that).
    pub fn cancel(&self, job: u64) -> Result<JobSnapshot, JobError> {
        let entry = self.entry(job)?;
        entry.cancel.store(true, Ordering::SeqCst);
        let mut snap = entry.snapshot.lock().unwrap_or_else(|p| p.into_inner());
        if snap.state == JobState::Running {
            snap.state = JobState::Cancelled;
        }
        Ok(snap.clone())
    }

    /// Blocks until the job's runner has reached a terminal state *and*
    /// released its admission slot, then returns the final snapshot. A
    /// submit after `wait` returns can therefore never be refused on
    /// account of this job.
    pub fn wait(&self, job: u64) -> Result<JobSnapshot, JobError> {
        let entry = self.entry(job)?;
        let mut snap = entry.snapshot.lock().unwrap_or_else(|p| p.into_inner());
        while !entry.settled.load(Ordering::SeqCst) {
            snap = entry.cv.wait(snap).unwrap_or_else(|p| p.into_inner());
        }
        Ok(snap.clone())
    }

    /// Convenience for benches and in-process callers: submit, wait,
    /// return the final snapshot.
    pub fn run(&self, spec: JobSpec) -> Result<JobSnapshot, JobError> {
        let id = self.submit(spec)?;
        self.wait(id)
    }

    /// Jobs currently holding admission slots.
    pub fn running(&self) -> usize {
        self.inner.running.load(Ordering::SeqCst)
    }

    /// Point-in-time table counters.
    pub fn stats(&self) -> JobStatsSnapshot {
        let c = &self.inner.counters;
        JobStatsSnapshot {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            candidates: c.candidates.load(Ordering::Relaxed),
            evals: c.evals.load(Ordering::Relaxed),
        }
    }
}

impl Drop for JobTable {
    /// Graceful drain: refuse new submits, cancel every running job, and
    /// wait for each runner to release its slot (bounded by one batch of
    /// work per job — cancellation is observed at batch boundaries).
    fn drop(&mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        let entries: Vec<Arc<JobEntry>> = {
            let jobs = self.inner.jobs.lock().unwrap_or_else(|p| p.into_inner());
            jobs.by_id.values().cloned().collect()
        };
        for entry in &entries {
            entry.cancel.store(true, Ordering::SeqCst);
        }
        for entry in entries {
            let mut snap = entry.snapshot.lock().unwrap_or_else(|p| p.into_inner());
            while !entry.settled.load(Ordering::SeqCst) {
                snap = entry.cv.wait(snap).unwrap_or_else(|p| p.into_inner());
            }
            drop(snap);
        }
    }
}

/// The per-job runner: evaluates the population batch-by-batch, folds
/// candidates into the front in index order, publishes a snapshot after
/// every batch, and honors cancellation at batch boundaries.
fn run_job(inner: Arc<JobTableInner>, entry: Arc<JobEntry>, spec: JobSpec, trace: u64) {
    let started = Instant::now();
    let observe = fepia_obs::enabled();
    let traced = trace != 0 && fepia_obs::trace::trace_enabled();
    let heuristics: Vec<Box<dyn MappingHeuristic>> =
        spec.heuristics.iter().map(|h| h.build(spec.tau)).collect();
    let threads = if spec.threads > 0 {
        spec.threads as usize
    } else {
        inner.config.threads
    };
    let cfg = if threads > 0 {
        ParConfig::with_threads(threads)
    } else {
        ParConfig::default()
    };
    // Injected `par.task` panics fire per execution; at the chaos suite's
    // 20% rate a deep re-dispatch budget makes a terminal candidate
    // failure (0.2^16) astronomically unlikely while a real deterministic
    // panic still surfaces as a typed Failed job.
    let catch = CatchConfig { max_attempts: 16 };

    let mut front = ParetoFront::new();
    let chunk = spec.batch_size() as u64;
    let population = spec.population as u64;
    let mut outcome = JobState::Done;
    let mut error: Option<String> = None;

    for b in 0..spec.batches {
        if entry.cancel.load(Ordering::SeqCst) {
            outcome = JobState::Cancelled;
            break;
        }
        let lo = b as u64 * chunk;
        let hi = (lo + chunk).min(population);
        if lo >= hi {
            break;
        }
        let batch_started = Instant::now();
        let indices: Vec<u64> = (lo..hi).collect();
        let results: Vec<Result<FrontPoint, TaskError>> = par_map_dynamic_catch_with(
            &indices,
            &cfg,
            &catch,
            || (),
            |_, _, &k| {
                let h = &heuristics[(k % heuristics.len() as u64) as usize];
                let mut rng = rng_for(spec.seed, k);
                let mapping = h.map(&spec.etc, &mut rng);
                FrontPoint::evaluate(&spec.etc, &mapping, spec.tau, h.name(), k)
            },
        );
        // Fold in index order — the determinism contract (module docs).
        let mut batch_evals = 0u64;
        let mut failed: Option<String> = None;
        for (off, r) in results.into_iter().enumerate() {
            let k = lo + off as u64;
            batch_evals += spec.heuristics[(k % spec.heuristics.len() as u64) as usize]
                .delta_evals(spec.etc.apps(), spec.etc.machines());
            match r {
                Ok(point) => {
                    front.offer(point);
                }
                Err(TaskError::Panicked { message, attempts }) => {
                    failed = Some(format!(
                        "candidate {k} panicked terminally after {attempts} attempts: {message}"
                    ));
                    break;
                }
            }
        }
        if let Some(msg) = failed {
            outcome = JobState::Failed;
            error = Some(msg);
            break;
        }
        let done = hi - lo;
        inner.counters.batches.fetch_add(1, Ordering::Relaxed);
        inner.counters.candidates.fetch_add(done, Ordering::Relaxed);
        inner
            .counters
            .evals
            .fetch_add(batch_evals, Ordering::Relaxed);
        if observe {
            let g = fepia_obs::global();
            g.counter("job.batches").inc();
            g.counter("job.candidates").add(done);
            g.counter("job.evals").add(batch_evals);
            g.histogram("job.batch.us")
                .record(batch_started.elapsed().as_micros() as f64);
        }
        if traced {
            fepia_obs::trace::with_wall(
                fepia_obs::trace::span_event(
                    fepia_obs::TraceId(trace),
                    fepia_obs::trace::stage::JOB_BATCH,
                    entry.id,
                ),
                batch_started,
            )
            .field("batch", b as u64)
            .field("front", front.len() as u64)
            .emit();
        }
        // Publish the batch: progress counters plus the front-so-far.
        {
            let mut snap = entry.snapshot.lock().unwrap_or_else(|p| p.into_inner());
            snap.batches_done = b + 1;
            snap.candidates_done += done;
            snap.evals_done += batch_evals;
            snap.front = front.points().to_vec();
            if snap.batches_done == snap.batches_total && snap.state == JobState::Running {
                snap.state = JobState::Done;
            }
        }
    }

    // Finalize: reconcile the terminal state (a cancel may have raced the
    // last batch — cancel wins only if it arrived before completion).
    {
        let mut snap = entry.snapshot.lock().unwrap_or_else(|p| p.into_inner());
        match outcome {
            JobState::Done => {
                if snap.state == JobState::Running {
                    snap.state = JobState::Done;
                }
            }
            JobState::Cancelled => snap.state = JobState::Cancelled,
            JobState::Failed => {
                snap.state = JobState::Failed;
                snap.error = error.clone();
            }
            JobState::Running => unreachable!("runner outcomes are terminal"),
        }
        let (counter, name) = match snap.state {
            JobState::Done => (&inner.counters.completed, "job.completed"),
            JobState::Cancelled => (&inner.counters.cancelled, "job.cancelled"),
            JobState::Failed => (&inner.counters.failed, "job.failed"),
            JobState::Running => unreachable!("terminal state set above"),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if observe {
            fepia_obs::global().counter(name).inc();
            fepia_obs::global()
                .histogram("job.wall.us")
                .record(started.elapsed().as_micros() as f64);
        }
        if traced {
            fepia_obs::trace::with_wall(
                fepia_obs::trace::span_event(
                    fepia_obs::TraceId(trace),
                    fepia_obs::trace::stage::JOB_DONE,
                    entry.id,
                ),
                started,
            )
            .field("batches", snap.batches_done as u64)
            .emit();
        }
    }

    // Retention: evict the oldest finished jobs past the bound.
    {
        let mut jobs = inner.jobs.lock().unwrap_or_else(|p| p.into_inner());
        jobs.finished.push_back(entry.id);
        while jobs.finished.len() > inner.config.retain {
            if let Some(old) = jobs.finished.pop_front() {
                jobs.by_id.remove(&old);
            }
        }
    }

    // Release the admission slot last, then wake waiters: once `wait`
    // returns, a new submit cannot be refused on this job's account.
    inner.running.fetch_sub(1, Ordering::SeqCst);
    entry.settled.store(true, Ordering::SeqCst);
    let guard = entry.snapshot.lock().unwrap_or_else(|p| p.into_inner());
    drop(guard);
    entry.cv.notify_all();
}

/// A convenience used by benches and the wire example: a small default
/// heuristic portfolio with per-heuristic budgets scaled off one knob
/// (unlike the legacy uniform scaling, each search gets a budget
/// proportionate to its per-iteration cost).
pub fn default_portfolio(iters: u32) -> Vec<JobHeuristic> {
    vec![
        JobHeuristic::RobustGreedy,
        JobHeuristic::Annealing {
            iterations: iters,
            initial_temperature: 0.1,
            cooling: 0.995,
        },
        JobHeuristic::Tabu {
            iterations: (iters / 100).max(1),
            tabu_len: 16,
        },
        JobHeuristic::Genetic {
            population: 32,
            generations: (iters / 50).max(1),
            mutation_rate: 0.05,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fepia_etc::{generate_cvb, EtcParams};

    fn small_spec(seed: u64, population: u32, batches: u32) -> JobSpec {
        let etc = Arc::new(generate_cvb(
            &mut rng_for(seed, 1_000),
            &EtcParams::paper_section_4_2(),
        ));
        JobSpec {
            etc,
            tau: 1.2,
            seed,
            population,
            batches,
            heuristics: default_portfolio(64),
            threads: 1,
        }
    }

    #[test]
    fn spec_validation_is_typed() {
        let mut s = small_spec(1, 8, 2);
        assert!(s.validate().is_none());
        s.population = 0;
        assert!(s.validate().is_some());
        s.population = 8;
        s.batches = 9;
        assert!(s.validate().is_some());
        s.batches = 2;
        s.tau = 0.5;
        assert!(s.validate().is_some());
        s.tau = 1.2;
        s.heuristics.clear();
        assert!(s.validate().is_some());
        s.heuristics = vec![JobHeuristic::Annealing {
            iterations: 0,
            initial_temperature: 0.1,
            cooling: 0.9,
        }];
        assert!(s.validate().is_some());
    }

    #[test]
    fn job_runs_to_done_with_a_nonempty_front() {
        let table = JobTable::new(JobTableConfig::default());
        let snap = table.run(small_spec(42, 8, 4)).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.batches_done, 4);
        assert_eq!(snap.candidates_done, 8);
        assert!(!snap.front.is_empty());
        assert!(snap.evals_done > 0);
        assert_eq!(snap.evals_done, snap.evals_total);
        // Front invariant: makespan ascending, metric ascending.
        for w in snap.front.windows(2) {
            assert!(w[0].makespan < w[1].makespan);
            assert!(w[0].metric < w[1].metric);
        }
        let stats = table.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn same_seed_same_front_across_thread_counts() {
        let table = JobTable::new(JobTableConfig::default());
        let digest = |threads: u32| {
            let mut spec = small_spec(7, 12, 3);
            spec.threads = threads;
            let snap = table.run(spec).unwrap();
            fepia_mapping::ParetoFront::from_points(snap.front).digest()
        };
        let one = digest(1);
        assert_eq!(one, digest(2));
        assert_eq!(one, digest(8));
    }

    #[test]
    fn admission_bound_is_typed_and_freed_on_completion() {
        let table = JobTable::new(JobTableConfig {
            max_jobs: 1,
            ..JobTableConfig::default()
        });
        let long = small_spec(3, 64, 64);
        let id = table.submit(long).unwrap();
        // The second submit races the first job's completion; either it is
        // refused typed-Busy or the first job already finished.
        match table.submit(small_spec(4, 4, 2)) {
            Ok(second) => {
                table.wait(second).unwrap();
            }
            Err(JobError::Busy { limit, .. }) => assert_eq!(limit, 1),
            Err(other) => panic!("unexpected refusal: {other}"),
        }
        table.wait(id).unwrap();
        // After wait, capacity is free by contract.
        let third = table.submit(small_spec(5, 4, 2)).unwrap();
        assert_eq!(table.wait(third).unwrap().state, JobState::Done);
    }

    #[test]
    fn unknown_job_is_typed() {
        let table = JobTable::new(JobTableConfig::default());
        assert_eq!(table.status(99).unwrap_err(), JobError::Unknown(99));
        assert_eq!(table.cancel(99).unwrap_err(), JobError::Unknown(99));
    }
}
