//! The long-running evaluation service.
//!
//! A [`Service`] owns `shards` independent worker groups. Each shard has a
//! bounded request queue (admission control + backpressure), a plan cache
//! ([`crate::cache`]) and one or more `std::thread` workers. Requests are
//! routed by consistent hashing on the scenario fingerprint, so all
//! traffic for one scenario lands on one shard — its plan is compiled
//! once, cached once, and never duplicated across shards.
//!
//! **Admission.** [`Service::submit`] never blocks: a full queue sheds the
//! request with a typed [`Overloaded`] carrying the shard and
//! [`ShedReason`]. [`Service::submit_blocking`] waits for space instead
//! (backpressure for batch clients). After [`Service::shutdown`] begins,
//! both reject with [`ShedReason::ShuttingDown`] while workers drain every
//! request already accepted — accepted work is never dropped.
//!
//! **Fault tolerance.** Each evaluation attempt runs under
//! `catch_unwind`; a panicking attempt (e.g. injected at the
//! `serve.worker` chaos site) is retried up to
//! [`ServiceConfig::worker_attempts`] times with a fresh workspace, and
//! only then does the client see a [`FailReason::Panic`] verdict — the
//! ticket is always answered. Chaos sites: `serve.enqueue` (delay before
//! routing) and `serve.worker` (delay + panic injection around the
//! evaluation).
//!
//! **Determinism.** Responses are pure functions of the request: plans are
//! compiled deterministically and evaluations are bitwise identical
//! whether the plan came cold, from cache, or from a coalesced compile,
//! and regardless of which worker or shard ran them. The workspace soak
//! test replays 100k requests twice and asserts the aggregate digest is
//! bit-for-bit equal.

use crate::cache::{CacheOutcome, PlanCache};
use crate::queue::{BoundedQueue, PushError};
use crate::scenario::{CurveMeta, CurveSpec, Scenario};
use fepia_core::{EvalBudget, FailReason, PlanVerdict, PlanWorkspace, ResiliencePolicy};
use fepia_optim::VecN;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What to evaluate against a scenario's compiled plan.
#[derive(Clone, Debug)]
pub enum EvalKind {
    /// One verdict at the assumed operating point `C_orig`.
    Verdict,
    /// One verdict per caller-supplied origin (perturbed operating points).
    Origins(Vec<VecN>),
    /// One verdict per single-application move `(app, dst)` applied to the
    /// base mapping — the hot scheduler-probe path, served by `DeltaEval`.
    Moves(Vec<(usize, usize)>),
    /// The full degradation curve ρ(τ) over a tolerance grid: one verdict
    /// per curve point, all levels sharing the scenario's compiled plan.
    /// The response additionally carries [`CurveMeta`] (the evaluated τ
    /// levels plus monotonicity).
    Curve(CurveSpec),
}

impl EvalKind {
    /// Number of verdicts a response to this kind carries — for adaptive
    /// curves the worst case, which is what admission control and deadline
    /// budgets must charge.
    pub fn units(&self) -> usize {
        match self {
            EvalKind::Verdict => 1,
            EvalKind::Origins(os) => os.len(),
            EvalKind::Moves(ms) => ms.len(),
            EvalKind::Curve(spec) => spec.max_points(),
        }
    }

    /// Whether re-evaluating this kind is always safe (bitwise-identical
    /// answer, no side effects). Every current kind is a pure function of
    /// the request — the client's deadline path consults this before a
    /// hedged retry, so a future mutating kind is excluded by construction
    /// rather than by convention.
    pub fn is_idempotent(&self) -> bool {
        match self {
            EvalKind::Verdict | EvalKind::Origins(_) | EvalKind::Moves(_) | EvalKind::Curve(_) => {
                true
            }
        }
    }
}

/// One request: a client-chosen id, the scenario, and what to evaluate.
#[derive(Clone, Debug)]
pub struct EvalRequest {
    /// Echoed verbatim in the response; the service never interprets it.
    pub id: u64,
    /// The scenario to (look up or) compile and evaluate.
    pub scenario: Arc<Scenario>,
    /// What to evaluate.
    pub kind: EvalKind,
}

/// How a response was produced relative to its deadline budget — echoed on
/// the wire so clients can distinguish a full-precision answer from a
/// deliberately degraded one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Disposition {
    /// Full-precision evaluation (the normal path).
    #[default]
    Full,
    /// Budgeted (brownout) evaluation: affine features exact, numeric
    /// features truncated to certified `Bounded` intervals — a sound but
    /// degraded-precision answer, returned instead of shedding.
    Brownout,
    /// The deadline expired before a worker picked the request up; it was
    /// dropped at dequeue without evaluation and `verdicts` is empty.
    DeadlineExceeded,
}

impl Disposition {
    /// Stable label, also the obs counter / trace field value.
    pub fn label(self) -> &'static str {
        match self {
            Disposition::Full => "full",
            Disposition::Brownout => "brownout",
            Disposition::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

/// Per-request deadline/brownout metadata threaded from admission to the
/// worker. Separate from [`EvalRequest`] so the request stays a pure
/// description of *what* to evaluate while this carries *how urgently*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestBudget {
    /// Relative deadline, measured from admission. A request still queued
    /// past its deadline is dropped at dequeue with
    /// [`Disposition::DeadlineExceeded`]; one whose queue wait consumed
    /// most of the budget (see [`ServiceConfig::brownout_after`]) is
    /// evaluated in budgeted mode. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Force budgeted evaluation regardless of queue wait — set by
    /// upstream admission control (the net server's in-flight accounting)
    /// when the system is under pressure.
    pub brownout: bool,
}

impl RequestBudget {
    /// A budget with just a relative deadline.
    pub fn with_deadline(deadline: Duration) -> RequestBudget {
        RequestBudget {
            deadline: Some(deadline),
            brownout: false,
        }
    }
}

/// The service's answer to one [`EvalRequest`].
#[derive(Clone, Debug)]
pub struct EvalResponse {
    /// The request's id, echoed.
    pub id: u64,
    /// Which shard served the request.
    pub shard: usize,
    /// How the plan was obtained; `None` when every evaluation attempt
    /// panicked and the response is the all-failed fallback, or when the
    /// request was dropped with an expired deadline.
    pub cache: Option<CacheOutcome>,
    /// One verdict per requested unit (see [`EvalKind::units`]); empty for
    /// [`Disposition::DeadlineExceeded`].
    pub verdicts: Vec<PlanVerdict>,
    /// Evaluation attempts consumed (1 = clean first try; 0 = dropped
    /// without evaluation).
    pub attempts: u32,
    /// How the answer relates to its deadline budget.
    pub disposition: Disposition,
    /// Curve metadata, present exactly when the request was
    /// [`EvalKind::Curve`] and an evaluation ran: the τ level of each
    /// verdict plus the monotonicity flag.
    pub curve: Option<CurveMeta>,
}

/// Why the service refused a request at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The target shard's queue is at capacity.
    QueueFull,
    /// The service is draining; no new work is accepted.
    ShuttingDown,
}

/// Typed admission rejection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// The shard that refused.
    pub shard: usize,
    /// Why.
    pub reason: ShedReason,
}

/// Any way a request can fail to produce a response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at admission; retry later or against another scenario.
    Overloaded(Overloaded),
    /// The request is malformed w.r.t. its scenario (index/dimension out of
    /// range); resubmitting it unchanged can never succeed.
    Invalid(String),
    /// The worker side went away without answering (only possible after a
    /// worker thread died outside the catch path — a bug, not load).
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded(o) => write!(
                f,
                "shard {} shed the request: {}",
                o.shard,
                match o.reason {
                    ShedReason::QueueFull => "queue full",
                    ShedReason::ShuttingDown => "shutting down",
                }
            ),
            ServeError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Disconnected => write!(f, "worker disconnected before responding"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Service sizing and resilience knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of shards (independent queues + caches).
    pub shards: usize,
    /// Worker threads per shard. More than one lets a shard overlap a slow
    /// compile with cached traffic (compilation is single-flighted either
    /// way).
    pub workers_per_shard: usize,
    /// Per-shard queue capacity; `submit` sheds beyond it.
    pub queue_capacity: usize,
    /// Per-shard plan-cache capacity (compiled scenarios).
    pub cache_capacity: usize,
    /// Evaluation attempts per request before answering with an all-failed
    /// panic verdict.
    pub worker_attempts: u32,
    /// Resilience policy forwarded to verdict evaluations.
    pub policy: ResiliencePolicy,
    /// Fraction of a request's deadline that queue wait may consume before
    /// the worker switches to budgeted (brownout) evaluation. Only
    /// meaningful for requests that carry a deadline.
    pub brownout_after: f64,
    /// Evaluate *every* request in budgeted mode — a deterministic test and
    /// bench hook: forced-brownout runs are pure functions of the request
    /// stream, so same-seed runs digest bitwise-identically.
    pub force_brownout: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 1024,
            cache_capacity: 64,
            worker_attempts: 4,
            policy: ResiliencePolicy::default(),
            brownout_after: 0.5,
            force_brownout: false,
        }
    }
}

/// Always-on (obs-independent) per-shard counters, `Relaxed` atomics.
#[derive(Default)]
struct ShardStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed_full: AtomicU64,
    shed_shutdown: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_coalesced: AtomicU64,
    worker_panics: AtomicU64,
    busy_ns: AtomicU64,
    deadline_expired: AtomicU64,
    brownout_evals: AtomicU64,
}

/// Snapshot of one shard's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses sent.
    pub completed: u64,
    /// Requests shed with [`ShedReason::QueueFull`].
    pub shed_full: u64,
    /// Requests shed with [`ShedReason::ShuttingDown`].
    pub shed_shutdown: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan compilations (cold misses + collision replacements).
    pub cache_misses: u64,
    /// Lookups satisfied by another worker's in-flight compile.
    pub cache_coalesced: u64,
    /// Evaluation attempts that panicked (and were retried or failed over).
    pub worker_panics: u64,
    /// Total wall time workers spent processing requests, in nanoseconds.
    pub busy_ns: u64,
    /// Requests dropped at dequeue because their deadline had expired.
    pub deadline_expired: u64,
    /// Requests answered in budgeted (brownout) evaluation mode.
    pub brownout_evals: u64,
}

impl ShardStatsSnapshot {
    /// Cache hit rate over lookups that had a chance to hit
    /// (hits + coalesced) / (hits + coalesced + misses); 0 when idle.
    pub fn cache_hit_rate(&self) -> f64 {
        let warm = self.cache_hits + self.cache_coalesced;
        let total = warm + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            warm as f64 / total as f64
        }
    }

    fn add(&mut self, other: &ShardStatsSnapshot) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.shed_full += other.shed_full;
        self.shed_shutdown += other.shed_shutdown;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_coalesced += other.cache_coalesced;
        self.worker_panics += other.worker_panics;
        self.busy_ns += other.busy_ns;
        self.deadline_expired += other.deadline_expired;
        self.brownout_evals += other.brownout_evals;
    }
}

impl ShardStats {
    fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_full: self.shed_full.load(Ordering::Relaxed),
            shed_shutdown: self.shed_shutdown.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_coalesced: self.cache_coalesced.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            brownout_evals: self.brownout_evals.load(Ordering::Relaxed),
        }
    }
}

/// Per-service and per-shard counter snapshots.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// One snapshot per shard, in shard order.
    pub shards: Vec<ShardStatsSnapshot>,
}

impl ServiceStats {
    /// Sum over all shards.
    pub fn totals(&self) -> ShardStatsSnapshot {
        let mut t = ShardStatsSnapshot::default();
        for s in &self.shards {
            t.add(s);
        }
        t
    }
}

/// How a finished response leaves the worker thread.
///
/// The blocking submission paths wait on a channel ([`Ticket`]); the
/// event-loop net server instead registers a callback that pushes the
/// response onto its completion queue and wakes the loop — workers never
/// block on delivery either way.
pub enum Completion {
    /// Deliver through a channel a [`Ticket`] is waiting on. A dropped
    /// receiver silently discards the response (client abandoned it).
    Channel(mpsc::Sender<EvalResponse>),
    /// Invoke a callback on the worker thread. Must be cheap and must not
    /// block: it runs inline in the worker loop.
    Callback(Box<dyn FnOnce(EvalResponse) + Send + 'static>),
}

impl Completion {
    fn complete(self, response: EvalResponse) {
        match self {
            Completion::Channel(tx) => {
                // A dropped ticket is the client's way of abandoning the
                // response.
                let _ = tx.send(response);
            }
            Completion::Callback(f) => f(response),
        }
    }
}

struct Job {
    req: EvalRequest,
    done: Completion,
    enqueued: Instant,
    /// Trace id carried through the queue (see [`fepia_obs::trace`]); 0
    /// when the submission path did not mint one (tracing off).
    trace: u64,
    /// Deadline/brownout metadata from admission.
    budget: RequestBudget,
}

struct Shard {
    index: usize,
    queue: BoundedQueue<Job>,
    cache: PlanCache,
    stats: ShardStats,
}

/// A pending response. Dropping the ticket abandons the response (the
/// worker's send is silently discarded).
pub struct Ticket {
    rx: mpsc::Receiver<EvalResponse>,
    shard: usize,
}

impl Ticket {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<EvalResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// The shard the request was routed to.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// The per-worker slice of [`ServiceConfig`] the loop needs.
#[derive(Clone, Copy)]
struct WorkerConfig {
    policy: ResiliencePolicy,
    max_attempts: u32,
    brownout_after: f64,
    force_brownout: bool,
}

/// The long-running evaluation service. See the module docs.
pub struct Service {
    shards: Vec<Arc<Shard>>,
    workers: Vec<JoinHandle<()>>,
    worker_attempts: u32,
    policy: ResiliencePolicy,
}

impl Service {
    /// Starts the shards and their worker threads.
    pub fn start(config: ServiceConfig) -> Service {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.workers_per_shard >= 1, "need at least one worker");
        assert!(config.worker_attempts >= 1, "need at least one attempt");
        assert!(
            config.brownout_after >= 0.0 && config.brownout_after <= 1.0,
            "brownout_after is a fraction of the deadline"
        );
        let shards: Vec<Arc<Shard>> = (0..config.shards)
            .map(|index| {
                Arc::new(Shard {
                    index,
                    queue: BoundedQueue::new(config.queue_capacity),
                    cache: PlanCache::new(config.cache_capacity),
                    stats: ShardStats::default(),
                })
            })
            .collect();
        let worker_config = WorkerConfig {
            policy: config.policy,
            max_attempts: config.worker_attempts,
            brownout_after: config.brownout_after,
            force_brownout: config.force_brownout,
        };
        let mut workers = Vec::with_capacity(config.shards * config.workers_per_shard);
        for shard in &shards {
            for w in 0..config.workers_per_shard {
                let shard = Arc::clone(shard);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("fepia-serve-{}-{}", shard.index, w))
                        .spawn(move || worker_loop(&shard, &worker_config))
                        .expect("spawn worker thread"),
                );
            }
        }
        Service {
            shards,
            workers,
            worker_attempts: config.worker_attempts,
            policy: config.policy,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a fingerprint routes to (SplitMix-mixed so adjacent
    /// fingerprints spread).
    pub fn shard_for(&self, fingerprint: u64) -> usize {
        (fepia_stats::subseed(fingerprint, 0) % self.shards.len() as u64) as usize
    }

    fn validate(req: &EvalRequest) -> Result<(), ServeError> {
        let apps = req.scenario.mapping().apps();
        let machines = req.scenario.mapping().machines();
        match &req.kind {
            EvalKind::Verdict => Ok(()),
            EvalKind::Origins(os) => {
                // An empty origin list would produce an empty response a
                // client cannot tell apart from a dropped evaluation —
                // reject it as malformed instead.
                if os.is_empty() {
                    return Err(ServeError::Invalid(
                        "origins request carries no origins".into(),
                    ));
                }
                for (k, o) in os.iter().enumerate() {
                    if o.dim() != apps {
                        return Err(ServeError::Invalid(format!(
                            "origin {k} has dimension {}, scenario has {apps} applications",
                            o.dim()
                        )));
                    }
                }
                Ok(())
            }
            EvalKind::Moves(ms) => {
                if ms.is_empty() {
                    return Err(ServeError::Invalid("moves request carries no moves".into()));
                }
                for (k, &(app, dst)) in ms.iter().enumerate() {
                    if app >= apps || dst >= machines {
                        return Err(ServeError::Invalid(format!(
                            "move {k} = ({app}, {dst}) out of range for {apps}×{machines}"
                        )));
                    }
                }
                Ok(())
            }
            EvalKind::Curve(spec) => match spec.validate() {
                Some(msg) => Err(ServeError::Invalid(msg)),
                None => Ok(()),
            },
        }
    }

    fn admit_with(
        &self,
        req: EvalRequest,
        trace: u64,
        budget: RequestBudget,
        done: Completion,
    ) -> Result<(usize, Job), ServeError> {
        Self::validate(&req)?;
        fepia_chaos::maybe_delay("serve.enqueue");
        let shard = self.shard_for(req.scenario.fingerprint());
        let job = Job {
            req,
            done,
            enqueued: Instant::now(),
            trace,
            budget,
        };
        Ok((shard, job))
    }

    fn admit(
        &self,
        req: EvalRequest,
        trace: u64,
        budget: RequestBudget,
    ) -> Result<(usize, Job, Ticket), ServeError> {
        let (tx, rx) = mpsc::channel();
        let (shard, job) = self.admit_with(req, trace, budget, Completion::Channel(tx))?;
        Ok((shard, job, Ticket { rx, shard }))
    }

    fn try_push(&self, shard: usize, job: Job) -> Result<(), ServeError> {
        match self.shards[shard].queue.try_push(job) {
            Ok(()) => {
                self.accepted(shard);
                Ok(())
            }
            Err(PushError::Full(job)) => {
                self.shed_span(&job, ShedReason::QueueFull);
                Err(self.shed(shard, ShedReason::QueueFull))
            }
            Err(PushError::Closed(job)) => {
                self.shed_span(&job, ShedReason::ShuttingDown);
                Err(self.shed(shard, ShedReason::ShuttingDown))
            }
        }
    }

    fn shed(&self, shard: usize, reason: ShedReason) -> ServeError {
        let stats = &self.shards[shard].stats;
        match reason {
            ShedReason::QueueFull => stats.shed_full.fetch_add(1, Ordering::Relaxed),
            ShedReason::ShuttingDown => stats.shed_shutdown.fetch_add(1, Ordering::Relaxed),
        };
        if fepia_obs::enabled() {
            fepia_obs::global().counter("serve.shed").inc();
        }
        ServeError::Overloaded(Overloaded { shard, reason })
    }

    fn accepted(&self, shard: usize) {
        let s = &self.shards[shard];
        s.stats.submitted.fetch_add(1, Ordering::Relaxed);
        if fepia_obs::enabled() {
            let reg = fepia_obs::global();
            reg.counter("serve.requests").inc();
            reg.histogram("serve.queue.depth")
                .record(s.queue.len() as f64);
        }
    }

    /// The trace id the plain submission paths attach: minted from the
    /// request id when tracing is on, 0 (no trace) otherwise.
    fn default_trace(req: &EvalRequest) -> u64 {
        if fepia_obs::trace_enabled() {
            fepia_obs::TraceId::mint(req.id).0
        } else {
            0
        }
    }

    /// Emits the `serve.shed` span for a request refused at admission.
    fn shed_span(&self, job: &Job, reason: ShedReason) {
        if job.trace != 0 && fepia_obs::trace_enabled() {
            fepia_obs::trace::with_wall(
                fepia_obs::trace::span_event(
                    fepia_obs::TraceId(job.trace),
                    fepia_obs::trace::stage::SERVE_SHED,
                    job.req.id,
                ),
                job.enqueued,
            )
            .field(
                "reason",
                match reason {
                    ShedReason::QueueFull => "queue_full",
                    ShedReason::ShuttingDown => "shutting_down",
                },
            )
            .emit();
        }
    }

    /// Non-blocking submission: sheds with a typed [`Overloaded`] when the
    /// target shard's queue is full or the service is draining.
    pub fn submit(&self, req: EvalRequest) -> Result<Ticket, ServeError> {
        let trace = Self::default_trace(&req);
        self.submit_traced(req, trace)
    }

    /// [`Service::submit`] with a caller-supplied trace id (the net server
    /// forwards the id carried in the frame header). `trace = 0` means
    /// untraced.
    pub fn submit_traced(&self, req: EvalRequest, trace: u64) -> Result<Ticket, ServeError> {
        self.submit_traced_budget(req, trace, RequestBudget::default())
    }

    /// [`Service::submit_traced`] with deadline/brownout metadata.
    pub fn submit_traced_budget(
        &self,
        req: EvalRequest,
        trace: u64,
        budget: RequestBudget,
    ) -> Result<Ticket, ServeError> {
        let (shard, job, ticket) = self.admit(req, trace, budget)?;
        self.try_push(shard, job)?;
        Ok(ticket)
    }

    /// Non-blocking submission with a completion callback instead of a
    /// [`Ticket`]: on acceptance, `done` later runs *on the worker thread*
    /// with the response, and the routed shard index is returned now. On
    /// refusal the callback is dropped unrun and the typed error returned
    /// — the caller answers the client itself. This is the event-loop net
    /// server's hand-off: its callback enqueues the response and wakes the
    /// loop's poll, so no thread ever blocks waiting on a ticket.
    pub fn submit_traced_with<F>(
        &self,
        req: EvalRequest,
        trace: u64,
        done: F,
    ) -> Result<usize, ServeError>
    where
        F: FnOnce(EvalResponse) + Send + 'static,
    {
        self.submit_traced_budget_with(req, trace, RequestBudget::default(), done)
    }

    /// [`Service::submit_traced_with`] with deadline/brownout metadata —
    /// the net server's v3 hand-off: the frame's relative deadline and the
    /// event loop's admission-control brownout hint ride along to the
    /// worker.
    pub fn submit_traced_budget_with<F>(
        &self,
        req: EvalRequest,
        trace: u64,
        budget: RequestBudget,
        done: F,
    ) -> Result<usize, ServeError>
    where
        F: FnOnce(EvalResponse) + Send + 'static,
    {
        let (shard, job) =
            self.admit_with(req, trace, budget, Completion::Callback(Box::new(done)))?;
        self.try_push(shard, job)?;
        Ok(shard)
    }

    /// Blocking submission: waits for queue space (backpressure) instead of
    /// shedding; still rejects once the service is draining.
    pub fn submit_blocking(&self, req: EvalRequest) -> Result<Ticket, ServeError> {
        let trace = Self::default_trace(&req);
        self.submit_blocking_traced(req, trace)
    }

    /// [`Service::submit_blocking`] with a caller-supplied trace id.
    pub fn submit_blocking_traced(
        &self,
        req: EvalRequest,
        trace: u64,
    ) -> Result<Ticket, ServeError> {
        let (shard, job, ticket) = self.admit(req, trace, RequestBudget::default())?;
        match self.shards[shard].queue.push_blocking(job) {
            Ok(()) => {
                self.accepted(shard);
                Ok(ticket)
            }
            Err(job) => {
                self.shed_span(&job, ShedReason::ShuttingDown);
                Err(self.shed(shard, ShedReason::ShuttingDown))
            }
        }
    }

    /// Submit-and-wait convenience (non-blocking admission).
    pub fn call(&self, req: EvalRequest) -> Result<EvalResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Submit-and-wait with deadline/brownout metadata (non-blocking
    /// admission).
    pub fn call_budget(
        &self,
        req: EvalRequest,
        budget: RequestBudget,
    ) -> Result<EvalResponse, ServeError> {
        let trace = Self::default_trace(&req);
        self.submit_traced_budget(req, trace, budget)?.wait()
    }

    /// Submit-and-wait convenience with backpressure admission.
    pub fn call_blocking(&self, req: EvalRequest) -> Result<EvalResponse, ServeError> {
        self.submit_blocking(req)?.wait()
    }

    /// Current counter snapshots.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self.shards.iter().map(|s| s.stats.snapshot()).collect(),
        }
    }

    /// The configured per-request attempt budget.
    pub fn worker_attempts(&self) -> u32 {
        self.worker_attempts
    }

    /// The resilience policy evaluations run under.
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    fn stop(&mut self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        for handle in self.workers.drain(..) {
            // A worker that somehow died takes its panic to join(); surface
            // it rather than hiding a broken service.
            handle.join().expect("worker thread panicked");
        }
    }

    /// Graceful drain: stop admitting, finish every accepted request, join
    /// all workers, and return the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop();
        self.stats()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(shard: &Shard, config: &WorkerConfig) {
    let policy = &config.policy;
    let max_attempts = config.max_attempts;
    let mut ws = PlanWorkspace::new();
    while let Some(job) = shard.queue.pop() {
        let started = Instant::now();
        let waited = started.duration_since(job.enqueued);
        if job.trace != 0 && fepia_obs::trace_enabled() {
            fepia_obs::trace::with_wall(
                fepia_obs::trace::span_event(
                    fepia_obs::TraceId(job.trace),
                    fepia_obs::trace::stage::QUEUE_WAIT,
                    job.req.id,
                ),
                job.enqueued,
            )
            .field("shard", shard.index as u64)
            .emit();
        }
        // Deadline gate: a request that expired while queued is dropped
        // here, before any evaluation work — the worker's time goes to
        // requests that can still meet their budget.
        if let Some(deadline) = job.budget.deadline {
            if waited >= deadline {
                shard.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
                shard.stats.completed.fetch_add(1, Ordering::Relaxed);
                if fepia_obs::enabled() {
                    fepia_obs::global().counter("deadline.expired").inc();
                }
                let units = job.req.kind.units() as u64;
                if job.trace != 0 && fepia_obs::trace_enabled() {
                    fepia_obs::trace::with_wall(
                        fepia_obs::trace::span_event(
                            fepia_obs::TraceId(job.trace),
                            fepia_obs::trace::stage::SERVE_DEADLINE,
                            job.req.id,
                        ),
                        started,
                    )
                    .field("shard", shard.index as u64)
                    .field("units", units)
                    .field("degraded", units)
                    .emit();
                }
                job.done.complete(EvalResponse {
                    id: job.req.id,
                    shard: shard.index,
                    cache: None,
                    verdicts: Vec::new(),
                    attempts: 0,
                    disposition: Disposition::DeadlineExceeded,
                    curve: None,
                });
                continue;
            }
        }
        // Brownout gate: forced by upstream admission control, or the queue
        // wait consumed more than `brownout_after` of the deadline — answer
        // with the cheap budgeted evaluation instead of risking a
        // full-precision answer that lands after the deadline.
        let brownout = config.force_brownout
            || job.budget.brownout
            || job.budget.deadline.is_some_and(|deadline| {
                waited.as_secs_f64() >= config.brownout_after * deadline.as_secs_f64()
            });
        let budget = if brownout {
            EvalBudget::BROWNOUT
        } else {
            EvalBudget::UNLIMITED
        };
        if brownout {
            shard.stats.brownout_evals.fetch_add(1, Ordering::Relaxed);
            if fepia_obs::enabled() {
                fepia_obs::global().counter("brownout.evaluations").inc();
            }
        }
        fepia_chaos::maybe_delay("serve.worker");
        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(|| {
                process(shard, &job.req, &mut ws, policy, budget)
            })) {
                Ok(result) => break Some(result),
                Err(_) => {
                    shard.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                    if fepia_obs::enabled() {
                        fepia_obs::global().counter("serve.worker.panics").inc();
                    }
                    // The workspace may hold state from the aborted attempt.
                    ws = PlanWorkspace::new();
                    if attempts >= max_attempts {
                        break None;
                    }
                }
            }
        };
        let (verdicts, cache, curve) = outcome.map_or_else(
            || {
                let reason = FailReason::Panic(format!(
                    "evaluation panicked on all {max_attempts} attempts"
                ));
                let failed = (0..job.req.kind.units().max(1))
                    .map(|_| PlanVerdict::all_failed(1, reason.clone()))
                    .collect();
                (failed, None, None)
            },
            |(v, c, meta)| (v, Some(c), meta),
        );
        if let Some(c) = cache {
            let counter = match c {
                CacheOutcome::Hit => &shard.stats.cache_hits,
                CacheOutcome::Compiled => &shard.stats.cache_misses,
                CacheOutcome::Coalesced => &shard.stats.cache_coalesced,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            if fepia_obs::enabled() {
                let name = match c {
                    CacheOutcome::Hit => "serve.cache.hits",
                    CacheOutcome::Compiled => "serve.cache.misses",
                    CacheOutcome::Coalesced => "serve.cache.coalesced",
                };
                fepia_obs::global().counter(name).inc();
            }
        }
        let busy = started.elapsed().as_nanos() as u64;
        shard.stats.busy_ns.fetch_add(busy, Ordering::Relaxed);
        shard.stats.completed.fetch_add(1, Ordering::Relaxed);
        if fepia_obs::enabled() {
            let reg = fepia_obs::global();
            reg.counter("serve.responses").inc();
            reg.histogram("serve.shard.busy_ns").record(busy as f64);
            reg.histogram("serve.request.ns")
                .record(job.enqueued.elapsed().as_nanos() as f64);
        }
        let response = EvalResponse {
            id: job.req.id,
            shard: shard.index,
            cache,
            verdicts,
            attempts,
            disposition: if brownout {
                Disposition::Brownout
            } else {
                Disposition::Full
            },
            curve,
        };
        if job.trace != 0 && fepia_obs::trace_enabled() {
            // `units`, `degraded` and `attempts` are pure functions of the
            // request under a fixed seed; the cache outcome depends on
            // worker scheduling, so it only appears in full (wall) mode.
            // Brownout evaluations emit `serve.brownout` *instead of*
            // `worker.exec` (same seq) with every unit counted degraded —
            // the service deliberately served reduced precision, whatever
            // the individual verdicts say.
            let degraded = if brownout {
                response.verdicts.len()
            } else {
                response.verdicts.iter().filter(|v| !v.is_exact()).count()
            };
            let stage = if brownout {
                fepia_obs::trace::stage::SERVE_BROWNOUT
            } else {
                fepia_obs::trace::stage::WORKER_EXEC
            };
            let mut event = fepia_obs::trace::with_wall(
                fepia_obs::trace::span_event(fepia_obs::TraceId(job.trace), stage, response.id),
                started,
            )
            .field("shard", shard.index as u64)
            .field("units", response.verdicts.len() as u64)
            .field("degraded", degraded as u64)
            .field("attempts", u64::from(response.attempts));
            if fepia_obs::trace_wall_enabled() {
                event = event.field(
                    "cache",
                    match response.cache {
                        Some(CacheOutcome::Hit) => "hit",
                        Some(CacheOutcome::Compiled) => "compiled",
                        Some(CacheOutcome::Coalesced) => "coalesced",
                        None => "failed",
                    },
                );
            }
            event.emit();
        }
        job.done.complete(response);
    }
}

fn process(
    shard: &Shard,
    req: &EvalRequest,
    ws: &mut PlanWorkspace,
    policy: &ResiliencePolicy,
    budget: EvalBudget,
) -> (Vec<PlanVerdict>, CacheOutcome, Option<CurveMeta>) {
    fepia_chaos::maybe_panic("serve.worker");
    let (compiled, outcome) = shard.cache.get_or_compile(&req.scenario);
    let (verdicts, curve) = match compiled {
        Ok(compiled) => match &req.kind {
            EvalKind::Verdict => (
                vec![compiled.verdict_at_origin_budgeted(ws, policy, budget)],
                None,
            ),
            EvalKind::Origins(os) => (compiled.verdicts_at_budgeted(os, ws, policy, budget), None),
            // Moves ride DeltaEval's affine closed form — already the cheap
            // path, identical under any budget.
            EvalKind::Moves(ms) => (compiled.move_verdicts(ms), None),
            EvalKind::Curve(spec) => {
                let (verdicts, meta) = compiled.curve_verdicts(spec, ws, policy, budget);
                (verdicts, Some(meta))
            }
        },
        Err(e) => {
            // Compilation failed: a typed all-failed verdict per unit, never
            // a dropped ticket.
            let reason = FailReason::Solver(e.to_string());
            (
                (0..req.kind.units().max(1))
                    .map(|_| PlanVerdict::all_failed(1, reason.clone()))
                    .collect(),
                None,
            )
        }
    };
    (verdicts, outcome, curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::CurveGrid;
    use fepia_core::RadiusOptions;
    use fepia_etc::{generate_cvb, EtcParams};
    use fepia_mapping::{makespan_robustness, Mapping};
    use fepia_stats::rng_for;

    fn scenario(seed: u64) -> Arc<Scenario> {
        let etc = Arc::new(generate_cvb(
            &mut rng_for(seed, 0),
            &EtcParams::paper_section_4_2(),
        ));
        let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
        Arc::new(Scenario::new(etc, mapping, 1.2, RadiusOptions::default()).unwrap())
    }

    fn small_service() -> Service {
        Service::start(ServiceConfig {
            shards: 2,
            workers_per_shard: 1,
            queue_capacity: 16,
            cache_capacity: 4,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn verdict_request_round_trips() {
        let service = small_service();
        let s = scenario(1);
        let resp = service
            .call(EvalRequest {
                id: 42,
                scenario: Arc::clone(&s),
                kind: EvalKind::Verdict,
            })
            .unwrap();
        assert_eq!(resp.id, 42);
        assert_eq!(resp.verdicts.len(), 1);
        assert_eq!(resp.cache, Some(CacheOutcome::Compiled));
        assert_eq!(resp.attempts, 1);
        let expected = makespan_robustness(s.mapping(), s.etc(), s.tau()).unwrap();
        assert_eq!(
            resp.verdicts[0].metric_hi.to_bits(),
            expected.metric.to_bits()
        );

        // Same scenario again: served from cache, bitwise-identical.
        let resp2 = service
            .call(EvalRequest {
                id: 43,
                scenario: s,
                kind: EvalKind::Verdict,
            })
            .unwrap();
        assert_eq!(resp2.cache, Some(CacheOutcome::Hit));
        assert_eq!(
            resp2.verdicts[0].metric_hi.to_bits(),
            resp.verdicts[0].metric_hi.to_bits()
        );
        let totals = service.shutdown().totals();
        assert_eq!(totals.completed, 2);
        assert_eq!(totals.cache_hits, 1);
        assert_eq!(totals.cache_misses, 1);
    }

    #[test]
    fn moves_and_origins_units_match() {
        let service = small_service();
        let s = scenario(2);
        let moves = vec![(0, 1), (3, 4), (7, 0)];
        let resp = service
            .call(EvalRequest {
                id: 1,
                scenario: Arc::clone(&s),
                kind: EvalKind::Moves(moves.clone()),
            })
            .unwrap();
        assert_eq!(resp.verdicts.len(), 3);
        for (&(app, dst), v) in moves.iter().zip(&resp.verdicts) {
            let mut moved = s.mapping().clone();
            moved.reassign(app, dst);
            let expected = makespan_robustness(&moved, s.etc(), s.tau()).unwrap();
            assert_eq!(v.metric_hi.to_bits(), expected.metric.to_bits());
        }

        let origins = vec![
            fepia_optim::VecN::new(s.mapping().assigned_times(s.etc())),
            fepia_optim::VecN::new(s.mapping().assigned_times(s.etc())),
        ];
        let resp = service
            .call(EvalRequest {
                id: 2,
                scenario: s,
                kind: EvalKind::Origins(origins),
            })
            .unwrap();
        assert_eq!(resp.verdicts.len(), 2);
    }

    #[test]
    fn invalid_requests_rejected_with_typed_error() {
        let service = small_service();
        let s = scenario(3);
        let bad_move = service.call(EvalRequest {
            id: 0,
            scenario: Arc::clone(&s),
            kind: EvalKind::Moves(vec![(99, 0)]),
        });
        assert!(matches!(bad_move, Err(ServeError::Invalid(_))));
        let bad_origin = service.call(EvalRequest {
            id: 0,
            scenario: Arc::clone(&s),
            kind: EvalKind::Origins(vec![fepia_optim::VecN::zeros(3)]),
        });
        assert!(matches!(bad_origin, Err(ServeError::Invalid(_))));
        // The empty-list gap: an empty moves/origins request would produce
        // an empty response indistinguishable from a drop — both are typed
        // Invalid now.
        let empty_moves = service.call(EvalRequest {
            id: 0,
            scenario: Arc::clone(&s),
            kind: EvalKind::Moves(Vec::new()),
        });
        assert!(matches!(empty_moves, Err(ServeError::Invalid(_))));
        let empty_origins = service.call(EvalRequest {
            id: 0,
            scenario: Arc::clone(&s),
            kind: EvalKind::Origins(Vec::new()),
        });
        assert!(matches!(empty_origins, Err(ServeError::Invalid(_))));
        // Malformed curve grids are refused the same way.
        for bad in [
            CurveSpec {
                grid: CurveGrid::Explicit(Vec::new()),
            },
            CurveSpec {
                grid: CurveGrid::Explicit(vec![1.2, 1.1]),
            },
            CurveSpec {
                grid: CurveGrid::Explicit(vec![0.5]),
            },
            CurveSpec {
                grid: CurveGrid::Adaptive {
                    tau_lo: 1.5,
                    tau_hi: 1.2,
                    max_depth: 3,
                    rho_resolution: 0.1,
                },
            },
            CurveSpec {
                grid: CurveGrid::Adaptive {
                    tau_lo: 1.0,
                    tau_hi: 2.0,
                    max_depth: crate::scenario::MAX_CURVE_DEPTH + 1,
                    rho_resolution: 0.1,
                },
            },
        ] {
            let resp = service.call(EvalRequest {
                id: 0,
                scenario: Arc::clone(&s),
                kind: EvalKind::Curve(bad),
            });
            assert!(matches!(resp, Err(ServeError::Invalid(_))));
        }
    }

    #[test]
    fn curve_request_serves_per_level_verdicts_with_meta() {
        let service = small_service();
        let s = scenario(11);
        let levels = vec![1.05, 1.2, 1.4, 2.0];
        let resp = service
            .call(EvalRequest {
                id: 5,
                scenario: Arc::clone(&s),
                kind: EvalKind::Curve(CurveSpec {
                    grid: CurveGrid::Explicit(levels.clone()),
                }),
            })
            .unwrap();
        let meta = resp.curve.as_ref().expect("curve responses carry meta");
        assert_eq!(meta.taus, levels);
        assert!(meta.monotone);
        assert_eq!(resp.verdicts.len(), levels.len());
        // Every point bitwise-equal to an independently compiled single-τ
        // scenario at that level.
        for (&tau, v) in levels.iter().zip(&resp.verdicts) {
            let solo = Arc::new(
                Scenario::new(
                    Arc::clone(s.etc()),
                    s.mapping().clone(),
                    tau,
                    s.opts().clone(),
                )
                .unwrap(),
            );
            let expected = solo
                .compile()
                .unwrap()
                .verdict_at_origin(&mut PlanWorkspace::new(), service.policy());
            assert_eq!(v.metric_hi.to_bits(), expected.metric_hi.to_bits());
            assert_eq!(v.metric_lo.to_bits(), expected.metric_lo.to_bits());
        }
        // Non-curve responses never carry curve meta.
        let plain = service
            .call(EvalRequest {
                id: 6,
                scenario: s,
                kind: EvalKind::Verdict,
            })
            .unwrap();
        assert!(plain.curve.is_none());
    }

    #[test]
    fn full_queue_sheds_with_typed_overload() {
        // 1 shard, 1 worker, tiny queue; the worker is blocked by the time
        // we flood, so some submission must shed QueueFull.
        let service = Service::start(ServiceConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        let s = scenario(4);
        let mut tickets = Vec::new();
        // Pin the worker on a heavy request, then flood: with the worker
        // busy and a 1-deep queue, the second light request must shed.
        let heavy: Vec<(usize, usize)> = (0..20_000).map(|k| (k % 20, k % 5)).collect();
        tickets.push(
            service
                .submit(EvalRequest {
                    id: 0,
                    scenario: Arc::clone(&s),
                    kind: EvalKind::Moves(heavy),
                })
                .unwrap(),
        );
        let mut shed = None;
        for id in 1..10_000 {
            match service.submit(EvalRequest {
                id,
                scenario: Arc::clone(&s),
                kind: EvalKind::Verdict,
            }) {
                Ok(t) => tickets.push(t),
                Err(e) => {
                    shed = Some(e);
                    break;
                }
            }
        }
        let shed = shed.expect("a 1-deep queue must shed while the worker is pinned");
        assert_eq!(
            shed,
            ServeError::Overloaded(Overloaded {
                shard: 0,
                reason: ShedReason::QueueFull
            })
        );
        for t in tickets {
            t.wait().unwrap();
        }
        let totals = service.shutdown().totals();
        assert!(totals.shed_full >= 1);
    }

    #[test]
    fn shutdown_drains_accepted_work_and_rejects_new() {
        let service = small_service();
        let s = scenario(5);
        let tickets: Vec<Ticket> = (0..8)
            .map(|id| {
                service
                    .submit_blocking(EvalRequest {
                        id,
                        scenario: Arc::clone(&s),
                        kind: EvalKind::Verdict,
                    })
                    .unwrap()
            })
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.totals().completed, 8);
        // Every accepted ticket got its answer despite the shutdown.
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn callback_submission_delivers_on_worker_and_matches_ticket_path() {
        let service = small_service();
        let s = scenario(7);
        let (tx, rx) = mpsc::channel();
        let shard = service
            .submit_traced_with(
                EvalRequest {
                    id: 90,
                    scenario: Arc::clone(&s),
                    kind: EvalKind::Verdict,
                },
                0,
                move |resp| {
                    tx.send(resp).unwrap();
                },
            )
            .unwrap();
        let via_callback = rx.recv().unwrap();
        assert_eq!(via_callback.id, 90);
        assert_eq!(via_callback.shard, shard);

        // Bitwise-identical to the ticket path for the same scenario.
        let via_ticket = service
            .call(EvalRequest {
                id: 91,
                scenario: s,
                kind: EvalKind::Verdict,
            })
            .unwrap();
        assert_eq!(
            via_callback.verdicts[0].metric_hi.to_bits(),
            via_ticket.verdicts[0].metric_hi.to_bits()
        );

        // Invalid requests are refused before the callback is ever stored.
        let err = service.submit_traced_with(
            EvalRequest {
                id: 92,
                scenario: scenario(7),
                kind: EvalKind::Moves(vec![(99, 0)]),
            },
            0,
            |_| panic!("callback must not run for a refused request"),
        );
        assert!(matches!(err, Err(ServeError::Invalid(_))));
    }

    #[test]
    fn expired_deadline_is_dropped_at_dequeue() {
        // One worker pinned on a heavy request; a zero-deadline request
        // queued behind it must come back DeadlineExceeded without being
        // evaluated.
        let service = Service::start(ServiceConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 8,
            ..ServiceConfig::default()
        });
        let s = scenario(8);
        let heavy: Vec<(usize, usize)> = (0..50_000).map(|k| (k % 20, k % 5)).collect();
        let pin = service
            .submit(EvalRequest {
                id: 0,
                scenario: Arc::clone(&s),
                kind: EvalKind::Moves(heavy),
            })
            .unwrap();
        let expired = service
            .call_budget(
                EvalRequest {
                    id: 1,
                    scenario: Arc::clone(&s),
                    kind: EvalKind::Verdict,
                },
                RequestBudget::with_deadline(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(expired.disposition, Disposition::DeadlineExceeded);
        assert!(expired.verdicts.is_empty());
        assert_eq!(expired.attempts, 0);
        assert_eq!(expired.cache, None);
        pin.wait().unwrap();
        let totals = service.shutdown().totals();
        assert_eq!(totals.deadline_expired, 1);
    }

    #[test]
    fn forced_brownout_is_deterministic_and_marked() {
        let run = || {
            let service = Service::start(ServiceConfig {
                shards: 1,
                workers_per_shard: 1,
                queue_capacity: 16,
                force_brownout: true,
                ..ServiceConfig::default()
            });
            let s = scenario(9);
            let resp = service
                .call(EvalRequest {
                    id: 7,
                    scenario: s,
                    kind: EvalKind::Verdict,
                })
                .unwrap();
            let totals = service.shutdown().totals();
            (resp, totals)
        };
        let (a, ta) = run();
        let (b, tb) = run();
        assert_eq!(a.disposition, Disposition::Brownout);
        assert_eq!(ta.brownout_evals, 1);
        assert_eq!(tb.brownout_evals, 1);
        // §3.1 scenarios are all-affine, so brownout answers stay exact —
        // and bitwise equal across runs.
        assert_eq!(
            a.verdicts[0].metric_hi.to_bits(),
            b.verdicts[0].metric_hi.to_bits()
        );
        let s = scenario(9);
        let expected = makespan_robustness(s.mapping(), s.etc(), s.tau()).unwrap();
        assert_eq!(a.verdicts[0].metric_hi.to_bits(), expected.metric.to_bits());
    }

    #[test]
    fn generous_deadline_still_answers_full_precision() {
        let service = small_service();
        let s = scenario(10);
        let resp = service
            .call_budget(
                EvalRequest {
                    id: 3,
                    scenario: s,
                    kind: EvalKind::Verdict,
                },
                RequestBudget::with_deadline(Duration::from_secs(60)),
            )
            .unwrap();
        assert_eq!(resp.disposition, Disposition::Full);
        assert_eq!(resp.verdicts.len(), 1);
        let totals = service.shutdown().totals();
        assert_eq!(totals.deadline_expired, 0);
        assert_eq!(totals.brownout_evals, 0);
    }

    #[test]
    fn sharding_is_consistent_per_fingerprint() {
        let service = small_service();
        let s = scenario(6);
        let shard = service.shard_for(s.fingerprint());
        for _ in 0..5 {
            assert_eq!(service.shard_for(s.fingerprint()), shard);
        }
        drop(service);
    }
}
