//! `fepia-serve` — a long-running, sharded robustness evaluation service.
//!
//! The ROADMAP's north star is a production system where the FePIA metric
//! (Eq. 1–2) is not a one-shot computation but an always-on query: a
//! scheduler continuously asks "how robust is this mapping?" and "how
//! robust would it be after this move?". This crate turns the compiled
//! plans of `fepia-core` and the incremental `DeltaEval` of
//! `fepia-mapping` into exactly that service, std-only like the rest of
//! the workspace:
//!
//! * [`Scenario`] / [`CompiledScenario`] — the cacheable unit `(ETC, μ,
//!   τ, options)`, fingerprinted for routing and compiled bitwise-
//!   identically to the legacy [`fepia_mapping::makespan_robustness_generic`]
//!   path.
//! * [`Service`] — N shards, each with a bounded request queue
//!   (shed-on-full admission control or blocking backpressure), an LRU
//!   plan cache with single-flight compilation coalescing, and worker
//!   threads that answer every accepted request — panics, compile
//!   failures and injected faults all degrade to typed
//!   [`fepia_core::PlanVerdict`]s, never dropped tickets.
//! * [`workload`] — deterministic seeded request streams and
//!   order-independent response digests, shared by the soak tests, the
//!   differential oracle and `serve_bench`.
//! * [`job`] — long-running optimizer jobs: a bounded [`JobTable`] runs
//!   seeded heuristic populations batch-parallel over `DeltaEval` and
//!   accumulates a deterministic makespan × robustness Pareto front,
//!   pollable mid-flight and cancellable at batch boundaries.
//!
//! Observability: `serve.*` counters and histograms (queue depth, cache
//! hits/misses/coalesced, worker panics, per-request latency, shard busy
//! time) through `fepia-obs`, plus always-on [`ServiceStats`] atomics.
//! Fault injection: `serve.enqueue` and `serve.worker` chaos sites
//! compose with the `core.origin` / `mapping.delta.load` sites downstream.

pub mod cache;
pub mod job;
mod queue;
pub mod scenario;
pub mod service;
pub mod workload;

pub use cache::{CacheOutcome, PlanCache};
pub use job::{
    default_portfolio, JobError, JobHeuristic, JobSnapshot, JobSpec, JobState, JobStatsSnapshot,
    JobTable, JobTableConfig,
};
pub use scenario::{
    CompiledScenario, CurveGrid, CurveMeta, CurveSpec, Scenario, ScenarioError, MAX_CURVE_DEPTH,
    MAX_CURVE_POINTS,
};
pub use service::{
    Completion, Disposition, EvalKind, EvalRequest, EvalResponse, Overloaded, RequestBudget,
    ServeError, Service, ServiceConfig, ServiceStats, ShardStatsSnapshot, ShedReason, Ticket,
};
