//! Deterministic request workloads and response digests.
//!
//! The soak, equivalence and bench harnesses all need the same thing: a
//! seeded stream of requests over a fixed scenario pool, reproducible
//! bit-for-bit regardless of thread count or submission order. Every
//! request is derived purely from `(seed, index)` via
//! [`fepia_stats::rng_for`], so request `i` is the same object no matter
//! which client thread generates it — the foundation of the
//! bitwise-reproducible soak aggregate.
//!
//! [`response_digest`] folds a response into a 64-bit FNV-1a digest over
//! the bits that must be deterministic (id, verdict kinds, metric interval
//! bits, binding feature). Per-request digests are combined across threads
//! with [`combine_digests`] (wrapping addition — order-independent, so the
//! aggregate doesn't depend on scheduling).

use crate::scenario::Scenario;
use crate::service::{EvalKind, EvalRequest, EvalResponse};
use fepia_core::{PlanVerdict, RadiusOptions, RadiusVerdict, VerdictKind};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::Mapping;
use fepia_optim::VecN;
use fepia_stats::rng_for;
use rand::Rng;
use std::sync::Arc;

/// Shape of a generated workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Master seed; every request derives from `(seed, index)`.
    pub seed: u64,
    /// Number of distinct scenarios in the pool.
    pub scenarios: usize,
    /// Applications per scenario.
    pub apps: usize,
    /// Machines per scenario.
    pub machines: usize,
    /// Moves per `Moves` request.
    pub moves_per_request: usize,
    /// Origins per `Origins` request.
    pub origins_per_request: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 2003,
            scenarios: 8,
            apps: 20,
            machines: 5,
            moves_per_request: 4,
            origins_per_request: 2,
        }
    }
}

impl WorkloadSpec {
    fn etc_params(&self) -> EtcParams {
        // The paper's §4.2 heterogeneity (mean 10, 0.7/0.7) at the
        // spec's dimensions.
        EtcParams {
            apps: self.apps,
            machines: self.machines,
            mean: 10.0,
            task_heterogeneity: 0.7,
            machine_heterogeneity: 0.7,
        }
    }
}

/// Builds the deterministic scenario pool for `spec`. Scenario `s` is a
/// pure function of `(spec.seed, s)`: CVB-generated ETC, random mapping,
/// τ cycling over four values, default radius options.
pub fn scenario_pool(spec: &WorkloadSpec) -> Vec<Arc<Scenario>> {
    (0..spec.scenarios)
        .map(|s| {
            let etc = Arc::new(generate_cvb(
                &mut rng_for(spec.seed, 1_000_000 + s as u64),
                &spec.etc_params(),
            ));
            let mapping = Mapping::random(
                &mut rng_for(spec.seed, 2_000_000 + s as u64),
                spec.apps,
                spec.machines,
            );
            let tau = 1.1 + 0.05 * (s % 4) as f64;
            Arc::new(
                Scenario::new(etc, mapping, tau, RadiusOptions::default())
                    .expect("generated scenarios are always valid"),
            )
        })
        .collect()
}

/// The `index`-th request of the mixed workload: 60% `Moves`, 30%
/// `Verdict`, 10% `Origins`, scenario drawn uniformly from the pool.
/// Deterministic in `(spec.seed, index)`.
pub fn request(spec: &WorkloadSpec, pool: &[Arc<Scenario>], index: u64) -> EvalRequest {
    let mut rng = rng_for(spec.seed, index);
    let scenario = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
    let roll: u32 = rng.gen_range(0..10);
    let kind = if roll < 6 {
        moves_kind(spec, &scenario, &mut rng)
    } else if roll < 9 {
        EvalKind::Verdict
    } else {
        origins_kind(spec, &scenario, &mut rng)
    };
    EvalRequest {
        id: index,
        scenario,
        kind,
    }
}

/// The `index`-th request of the moves-only workload (the chaos soak uses
/// this: every response stays `Exact` because the `DeltaEval` path
/// self-heals poisoned state from the ETC ground truth).
pub fn moves_request(spec: &WorkloadSpec, pool: &[Arc<Scenario>], index: u64) -> EvalRequest {
    let mut rng = rng_for(spec.seed, index);
    let scenario = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
    let kind = moves_kind(spec, &scenario, &mut rng);
    EvalRequest {
        id: index,
        scenario,
        kind,
    }
}

fn moves_kind(spec: &WorkloadSpec, scenario: &Arc<Scenario>, rng: &mut impl Rng) -> EvalKind {
    let apps = scenario.mapping().apps();
    let machines = scenario.mapping().machines();
    EvalKind::Moves(
        (0..spec.moves_per_request)
            .map(|_| (rng.gen_range(0..apps), rng.gen_range(0..machines)))
            .collect(),
    )
}

fn origins_kind(spec: &WorkloadSpec, scenario: &Arc<Scenario>, rng: &mut impl Rng) -> EvalKind {
    // Multiplicative jitter around C_orig: stays positive and finite, so
    // affine features keep their exact analytic path.
    let base = scenario.mapping().assigned_times(scenario.etc());
    EvalKind::Origins(
        (0..spec.origins_per_request)
            .map(|_| {
                VecN::new(
                    base.iter()
                        .map(|&c| c * (0.9 + 0.2 * rng.gen::<f64>()))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// 64-bit FNV-1a digest of the deterministic content of a response: id,
/// verdict count, then per verdict its kind, metric interval bits and
/// binding index.
pub fn response_digest(resp: &EvalResponse) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut word = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    word(resp.id);
    word(resp.verdicts.len() as u64);
    for v in &resp.verdicts {
        word(match v.kind {
            VerdictKind::Exact => 1,
            VerdictKind::Bounded => 2,
            VerdictKind::Infeasible => 3,
            VerdictKind::Failed => 4,
        });
        word(v.metric_lo.to_bits());
        word(v.metric_hi.to_bits());
        word(v.binding.map_or(u64::MAX, |b| b as u64));
    }
    h
}

/// Order-independent combination of per-request digests (wrapping sum), so
/// the aggregate is identical however requests interleave across client
/// threads.
pub fn combine_digests(digests: impl IntoIterator<Item = u64>) -> u64 {
    digests.into_iter().fold(0u64, |acc, d| acc.wrapping_add(d))
}

/// Deep *bitwise* equality over verdict lists: every `f64` compared via
/// `to_bits` (so NaNs must match and `-0.0 != 0.0`), every enum variant and
/// diagnostic field compared exactly, radii included. This is the standard
/// the net-equivalence tests hold TCP-served responses to — stricter than
/// any derived `PartialEq` (which would treat NaN as unequal to itself and
/// signed zeros as equal).
pub fn verdicts_bitwise_equal(a: &[PlanVerdict], b: &[PlanVerdict]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| verdict_bitwise_equal(x, y))
}

fn verdict_bitwise_equal(a: &PlanVerdict, b: &PlanVerdict) -> bool {
    a.kind == b.kind
        && a.metric_lo.to_bits() == b.metric_lo.to_bits()
        && a.metric_hi.to_bits() == b.metric_hi.to_bits()
        && a.binding == b.binding
        && a.radii.len() == b.radii.len()
        && a.radii
            .iter()
            .zip(&b.radii)
            .all(|(x, y)| radius_bitwise_equal(x, y))
}

fn radius_bitwise_equal(a: &RadiusVerdict, b: &RadiusVerdict) -> bool {
    match (a, b) {
        (RadiusVerdict::Exact(x), RadiusVerdict::Exact(y)) => {
            x.radius.to_bits() == y.radius.to_bits()
                && x.bound == y.bound
                && x.violated == y.violated
                && x.method == y.method
                && x.iterations == y.iterations
                && x.f_evals == y.f_evals
                && match (&x.boundary_point, &y.boundary_point) {
                    (None, None) => true,
                    (Some(p), Some(q)) => {
                        p.dim() == q.dim()
                            && p.as_slice()
                                .iter()
                                .zip(q.as_slice())
                                .all(|(u, v)| u.to_bits() == v.to_bits())
                    }
                    _ => false,
                }
        }
        (
            RadiusVerdict::Bounded {
                lo: alo,
                hi: ahi,
                reason: ar,
                restarts: an,
            },
            RadiusVerdict::Bounded {
                lo: blo,
                hi: bhi,
                reason: br,
                restarts: bn,
            },
        ) => {
            alo.to_bits() == blo.to_bits() && ahi.to_bits() == bhi.to_bits() && ar == br && an == bn
        }
        (RadiusVerdict::Infeasible, RadiusVerdict::Infeasible) => true,
        (RadiusVerdict::Failed(x), RadiusVerdict::Failed(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_deterministic_in_seed_and_index() {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        for index in [0u64, 1, 17, 999] {
            let a = request(&spec, &pool, index);
            let b = request(&spec, &pool, index);
            assert_eq!(a.id, b.id);
            assert!(a.scenario.same_as(&b.scenario));
            match (&a.kind, &b.kind) {
                (EvalKind::Verdict, EvalKind::Verdict) => {}
                (EvalKind::Moves(x), EvalKind::Moves(y)) => assert_eq!(x, y),
                (EvalKind::Origins(x), EvalKind::Origins(y)) => {
                    assert_eq!(x.len(), y.len());
                    for (ox, oy) in x.iter().zip(y) {
                        for i in 0..ox.dim() {
                            assert_eq!(ox[i].to_bits(), oy[i].to_bits());
                        }
                    }
                }
                other => panic!("kind mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn workload_mixes_kinds() {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        let (mut moves, mut verdicts, mut origins) = (0, 0, 0);
        for index in 0..200 {
            match request(&spec, &pool, index).kind {
                EvalKind::Moves(_) => moves += 1,
                EvalKind::Verdict => verdicts += 1,
                EvalKind::Origins(_) => origins += 1,
                EvalKind::Curve(_) => unreachable!("workload generator emits no curve requests"),
            }
        }
        assert!(moves > 0 && verdicts > 0 && origins > 0);
        for index in 0..50 {
            assert!(matches!(
                moves_request(&spec, &pool, index).kind,
                EvalKind::Moves(_)
            ));
        }
    }

    #[test]
    fn combine_is_order_independent() {
        let digests = [3u64, 99, u64::MAX, 7];
        let forward = combine_digests(digests);
        let backward = combine_digests(digests.into_iter().rev());
        assert_eq!(forward, backward);
    }
}
