//! End-to-end request tracing: deterministic trace ids and per-stage
//! span events.
//!
//! A trace follows one request across every layer it touches: the client
//! mints a [`TraceId`], the wire protocol carries it in the frame header,
//! the service threads it through shard queues into the workers, and each
//! stage emits one `trace.span` JSON-lines event into the regular
//! [`crate::EventSink`]. One JSONL stream therefore reconstructs the full
//! latency breakdown of any request — including retries, sheds, and
//! chaos-induced degradations.
//!
//! # Stages
//!
//! The canonical pipeline is five stages, each with a fixed sequence
//! number so a trace sorts into pipeline order without timestamps:
//!
//! | seq | stage         | emitted by        | measures                      |
//! |-----|---------------|-------------------|-------------------------------|
//! | 0   | `client.send` | `NetClient::call` | request encode + frame write  |
//! | 1   | `net.read`    | server reader     | request decode + validation   |
//! | 2   | `queue.wait`  | shard worker      | enqueue → worker pop          |
//! | 3   | `worker.exec` | shard worker      | plan lookup + evaluation      |
//! | 4   | `net.write`   | server writer     | response encode + frame write |
//! | 5   | `client.recv` | `NetClient::call` | full client-side round trip   |
//!
//! Exceptional paths reuse the scheme: `serve.shed` (seq 2) replaces
//! `queue.wait` when admission sheds the request, `client.retry`
//! (seq 0) records each extra attempt with its cause, and at the
//! `worker.exec` position (seq 3) `serve.brownout` marks a budgeted
//! (degraded-precision) evaluation while `serve.deadline` marks a request
//! dropped at dequeue because its deadline had already expired.
//!
//! # Determinism
//!
//! Tracing has two modes, controlled by the `FEPIA_TRACE` environment
//! variable (or programmatically via [`set_trace_enabled`] /
//! [`set_trace_wall`]):
//!
//! | value           | effect                                             |
//! |-----------------|----------------------------------------------------|
//! | unset, ``, `0`  | tracing off — disabled path is one relaxed load    |
//! | `1`, `true`     | full mode: spans carry `t_us`/`us` wall-clock      |
//! |                 | fields and scheduling-dependent fields (`cache`)   |
//! | `det`           | deterministic mode: wall-clock and scheduling-     |
//! |                 | dependent fields are omitted, so a fixed-seed run  |
//! |                 | produces a bitwise-identical span stream (after    |
//! |                 | sorting — thread *interleaving* is never pinned)   |
//!
//! Span events ride the regular event machinery: they reach a sink only
//! when [`crate::events_enabled`] is also on (`FEPIA_TRACE=1` with
//! `FEPIA_OBS=<path>` is the usual production pairing). When tracing is
//! off, no `trace.*` event is ever emitted and the event stream is
//! byte-identical to the un-traced one.

use crate::sink::Event;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Stage names and sequence numbers for the canonical request pipeline.
pub mod stage {
    /// Client encodes and writes the request frame.
    pub const CLIENT_SEND: (&str, u32) = ("client.send", 0);
    /// Server reads and decodes the request frame.
    pub const NET_READ: (&str, u32) = ("net.read", 1);
    /// Request waits in its shard queue.
    pub const QUEUE_WAIT: (&str, u32) = ("queue.wait", 2);
    /// Worker evaluates the request against its compiled plan.
    pub const WORKER_EXEC: (&str, u32) = ("worker.exec", 3);
    /// Server encodes and writes the response frame.
    pub const NET_WRITE: (&str, u32) = ("net.write", 4);
    /// Client receives and decodes the response (whole round trip).
    pub const CLIENT_RECV: (&str, u32) = ("client.recv", 5);
    /// Admission shed the request instead of queueing it (replaces
    /// `queue.wait` in the trace).
    pub const SERVE_SHED: (&str, u32) = ("serve.shed", 2);
    /// One client retry attempt (extra `client.send`-position event).
    pub const CLIENT_RETRY: (&str, u32) = ("client.retry", 0);
    /// Worker evaluated the request in budgeted (brownout) mode — replaces
    /// `worker.exec` in the trace; carries the same `units`/`degraded`
    /// fields so the resilience analyzer counts it as degraded service.
    pub const SERVE_BROWNOUT: (&str, u32) = ("serve.brownout", 3);
    /// The request's deadline expired before a worker picked it up; it was
    /// dropped at dequeue without evaluation (replaces `worker.exec`).
    pub const SERVE_DEADLINE: (&str, u32) = ("serve.deadline", 3);
    /// An optimizer job was admitted to the job table.
    pub const JOB_SUBMIT: (&str, u32) = ("job.submit", 6);
    /// One population batch of an optimizer job finished and folded its
    /// candidates into the Pareto front.
    pub const JOB_BATCH: (&str, u32) = ("job.batch", 7);
    /// An optimizer job reached a terminal state (done / cancelled /
    /// failed).
    pub const JOB_DONE: (&str, u32) = ("job.done", 8);
}

static TRACE: AtomicBool = AtomicBool::new(false);
static WALL: AtomicBool = AtomicBool::new(false);
static TRACE_INIT: std::sync::Once = std::sync::Once::new();

fn init_from_env() {
    match std::env::var("FEPIA_TRACE").unwrap_or_default().as_str() {
        "" | "0" => {}
        "det" | "deterministic" => TRACE.store(true, Ordering::Relaxed),
        // Any other value (canonically "1"/"true") is full mode.
        _ => {
            TRACE.store(true, Ordering::Relaxed);
            WALL.store(true, Ordering::Relaxed);
        }
    }
}

/// Whether request tracing is on. The first call reads `FEPIA_TRACE`;
/// afterwards this is one relaxed atomic load — the entire disabled-path
/// cost of every trace site.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_INIT.call_once(init_from_env);
    TRACE.load(Ordering::Relaxed)
}

/// Whether spans carry wall-clock (`t_us`, `us`) and scheduling-dependent
/// fields. Off in deterministic mode.
#[inline]
pub fn trace_wall_enabled() -> bool {
    TRACE_INIT.call_once(init_from_env);
    WALL.load(Ordering::Relaxed)
}

/// Programmatically turns tracing on or off, overriding the environment.
pub fn set_trace_enabled(on: bool) {
    TRACE_INIT.call_once(init_from_env);
    TRACE.store(on, Ordering::Relaxed);
}

/// Programmatically selects full (`true`) or deterministic (`false`) span
/// content. Only meaningful while tracing is enabled.
pub fn set_trace_wall(on: bool) {
    TRACE_INIT.call_once(init_from_env);
    WALL.store(on, Ordering::Relaxed);
}

/// Microseconds since the process trace epoch (the first call wins). All
/// `t_us` fields share this epoch, so events from different threads and
/// layers order on one axis.
pub fn epoch_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// A 64-bit trace id. Minted deterministically from the request id, so a
/// fixed-seed workload produces the same ids run after run, and every
/// layer that knows the request id can recompute the trace id offline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints the trace id for a request id: one SplitMix64 finalizer pass,
    /// so adjacent request ids spread over the full 64-bit space while
    /// staying a pure function of the input.
    pub fn mint(request_id: u64) -> TraceId {
        let mut z = request_id.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TraceId(z ^ (z >> 31))
    }

    /// The canonical textual form: 16 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Starts a `trace.span` event for one pipeline stage. The deterministic
/// fields (`trace`, `stage`, `seq`, `id`) are filled in; the caller chains
/// any extra fields and calls [`Event::emit`]. Like every event, it
/// reaches a sink only when event output is enabled.
///
/// Callers must gate on [`trace_enabled`] *before* doing any work to
/// compute extra fields — the disabled path of a trace site is exactly one
/// relaxed atomic load.
pub fn span_event(trace: TraceId, (name, seq): (&'static str, u32), request_id: u64) -> Event {
    Event::new("trace.span")
        .field("trace", trace.to_hex())
        .field("stage", name)
        .field("seq", u64::from(seq))
        .field("id", request_id)
}

/// Adds the wall-clock fields (`t_us` since the trace epoch, `us` elapsed
/// since `started`) in full mode; a no-op in deterministic mode.
pub fn with_wall(event: Event, started: Instant) -> Event {
    if !trace_wall_enabled() {
        return event;
    }
    event
        .field("t_us", epoch_us())
        .field("us", started.elapsed().as_nanos() as f64 / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{clear_sink, install_sink, VecSink};
    use std::sync::Arc;

    #[test]
    fn mint_is_deterministic_and_spreads() {
        assert_eq!(TraceId::mint(7), TraceId::mint(7));
        assert_ne!(TraceId::mint(0), TraceId::mint(1));
        // SplitMix64 golden value: mint(0) is the finalizer of 0.
        assert_eq!(TraceId::mint(0).0, 0xe220a8397b1dcdaf);
        assert_eq!(TraceId::mint(0).to_hex(), "e220a8397b1dcdaf");
    }

    #[test]
    fn toggles_are_sticky() {
        set_trace_enabled(true);
        assert!(trace_enabled());
        set_trace_wall(true);
        assert!(trace_wall_enabled());
        set_trace_wall(false);
        assert!(!trace_wall_enabled());
        set_trace_enabled(false);
        assert!(!trace_enabled());
    }

    #[test]
    fn span_event_schema_is_stable() {
        let sink = Arc::new(VecSink::new());
        let prev = install_sink(sink.clone());
        crate::set_events_enabled(true);
        set_trace_enabled(true);
        set_trace_wall(false);
        span_event(TraceId::mint(3), stage::WORKER_EXEC, 3)
            .field("shard", 1u64)
            .emit();
        crate::set_events_enabled(false);
        set_trace_enabled(false);
        if let Some(prev) = prev {
            install_sink(prev);
        } else {
            clear_sink();
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let expected = format!(
            r#"{{"schema":"fepia.event/v1","event":"trace.span","trace":"{}","stage":"worker.exec","seq":3,"id":3,"shard":1}}"#,
            TraceId::mint(3).to_hex()
        );
        assert_eq!(lines[0], expected);
    }

    #[test]
    fn deterministic_mode_omits_wall_fields() {
        set_trace_enabled(true);
        set_trace_wall(false);
        let sink = Arc::new(VecSink::new());
        let prev = install_sink(sink.clone());
        crate::set_events_enabled(true);
        let started = Instant::now();
        with_wall(span_event(TraceId::mint(1), stage::CLIENT_SEND, 1), started).emit();
        set_trace_wall(true);
        with_wall(span_event(TraceId::mint(1), stage::CLIENT_SEND, 1), started).emit();
        crate::set_events_enabled(false);
        set_trace_enabled(false);
        set_trace_wall(false);
        if let Some(prev) = prev {
            install_sink(prev);
        } else {
            clear_sink();
        }
        let lines = sink.lines();
        assert!(!lines[0].contains("t_us"), "det line: {}", lines[0]);
        assert!(lines[1].contains("t_us") && lines[1].contains("\"us\":"));
    }
}
