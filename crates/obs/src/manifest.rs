//! Run manifests: one JSON document describing a benchmark/figure run —
//! which binary, which parameters, which output files — written next to the
//! outputs so a results directory is self-describing.

use crate::json::{array_of, ObjectWriter, Value};
use std::io::Write as _;
use std::path::Path;

/// A structured description of one run, rendered as
/// `{"schema":"fepia.manifest/v1","run":...,"params":{...},"outputs":[...]}`.
#[must_use = "a manifest does nothing until written or rendered"]
pub struct RunManifest {
    run: String,
    params: Vec<(String, Value)>,
    outputs: Vec<String>,
}

impl RunManifest {
    /// Starts a manifest for the run `name` (e.g. `"fig3"`).
    pub fn new(name: impl Into<String>) -> Self {
        RunManifest {
            run: name.into(),
            params: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Records one run parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.params.push((key.into(), value.into()));
        self
    }

    /// Records one output file produced by the run.
    pub fn output(mut self, path: impl Into<String>) -> Self {
        self.outputs.push(path.into());
        self
    }

    /// Renders the manifest as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut params = ObjectWriter::new();
        for (k, v) in &self.params {
            params.field(k, v.clone());
        }
        let outputs = array_of(self.outputs.iter().map(|o| {
            let mut s = String::new();
            crate::json::write_str(&mut s, o);
            s
        }));
        let mut root = ObjectWriter::new();
        root.field("schema", "fepia.manifest/v1");
        root.field("run", self.run.as_str());
        root.field_raw("params", &params.finish());
        root.field_raw("outputs", &outputs);
        root.finish()
    }

    /// Writes the manifest (plus trailing newline) to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_golden() {
        let m = RunManifest::new("fig3")
            .param("machines", 8u64)
            .param("tolerance", 0.3)
            .output("fig3.csv")
            .output("fig3.svg");
        assert_eq!(
            m.to_json(),
            r#"{"schema":"fepia.manifest/v1","run":"fig3","params":{"machines":8,"tolerance":0.3},"outputs":["fig3.csv","fig3.svg"]}"#
        );
    }

    #[test]
    fn manifest_writes_file() {
        let dir = std::env::temp_dir().join("fepia-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        RunManifest::new("t").write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with("}\n"));
        let _ = std::fs::remove_file(&path);
    }
}
