//! `fepia-obs`: zero-dependency observability for the fepia workspace.
//!
//! Three pieces, all std-only:
//!
//! 1. **Metrics** — a [`MetricsRegistry`] of atomic [`Counter`]s, [`Gauge`]s
//!    and fixed-bucket [`Histogram`]s with p50/p90/p99 readout. A global
//!    registry is available via [`global`]; scoped registries can be built
//!    for tests.
//! 2. **Spans** — [`span!`] creates a [`SpanGuard`] that times its scope and
//!    aggregates per-thread, rolling up into the registry as
//!    `span.<name>.ns` histograms.
//! 3. **Events** — [`Event`] records render as JSON lines into an
//!    [`EventSink`] ([`JsonlSink`] to a file, [`NullSink`] to nowhere).
//!    [`RunManifest`] describes a whole run next to its outputs.
//!
//! # Enabling
//!
//! Everything is off by default and the disabled paths are a single relaxed
//! atomic load — instrumented code must not measurably slow down when the
//! layer is off. The `FEPIA_OBS` environment variable controls startup
//! state:
//!
//! | value          | effect                                          |
//! |----------------|-------------------------------------------------|
//! | unset, ``, `0` | disabled                                        |
//! | `1`, `true`    | metrics + spans on, events discarded            |
//! | anything else  | treated as a path: metrics + spans + events on, |
//! |                | events appended to that path as JSON lines      |
//!
//! Programs can also toggle programmatically with [`set_enabled`] /
//! [`set_events_enabled`] and [`install_sink`], which take precedence over
//! the environment.
//!
//! # Metric-name families
//!
//! Instrumented crates prefix their metric names by layer, so a snapshot
//! groups naturally: `core.*` (plan compilation/evaluation), `par.*`
//! (parallel sweeps), `chaos.injected.*` (fired injections), `serve.*`
//! (queue depth, cache hits/misses, shed requests, per-request latency)
//! and `net.*` (connections, frames read/written, decode errors,
//! overload/invalid replies, client reconnects/retries, `net.request.us`
//! end-to-end latency).
//!
//! # Determinism
//!
//! The obs layer only *observes*: enabling it never changes scheduling,
//! iteration order, or numeric results of instrumented code. Event line
//! *interleaving* across threads is not deterministic; the values computed
//! by the instrumented code are.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};

pub mod analyzer;
pub mod json;
pub mod manifest;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

pub use analyzer::{
    analyze, AnalyzerConfig, ResilienceReport, ResilienceThresholds, StageStats, Telemetry,
    WindowPoint,
};
pub use json::Value;
pub use manifest::RunManifest;
pub use registry::{
    global, Counter, Gauge, Histogram, Metric, MetricsRegistry, MetricsSnapshot, SnapshotEntry,
    SnapshotValue,
};
pub use sink::{
    clear_sink, flush_sink, install_sink, Event, EventSink, JsonlSink, NullSink, VecSink,
};
pub use span::{flush_thread_spans, SpanGuard};
pub use trace::{set_trace_enabled, set_trace_wall, trace_enabled, trace_wall_enabled, TraceId};

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: AtomicBool = AtomicBool::new(false);
static INIT: Once = Once::new();

fn init_from_env() {
    let var = std::env::var("FEPIA_OBS").unwrap_or_default();
    match var.as_str() {
        "" | "0" => {}
        "1" | "true" => ENABLED.store(true, Ordering::Relaxed),
        path => {
            ENABLED.store(true, Ordering::Relaxed);
            match JsonlSink::create(path) {
                Ok(sink) => {
                    install_sink(Arc::new(sink));
                    EVENTS.store(true, Ordering::Relaxed);
                }
                Err(err) => {
                    eprintln!("fepia-obs: cannot open FEPIA_OBS={path}: {err}; events disabled");
                }
            }
        }
    }
}

/// Whether metrics and span collection are on. The first call reads
/// `FEPIA_OBS`; afterwards this is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    INIT.call_once(init_from_env);
    ENABLED.load(Ordering::Relaxed)
}

/// Whether structured events are emitted to the installed sink.
#[inline]
pub fn events_enabled() -> bool {
    INIT.call_once(init_from_env);
    EVENTS.load(Ordering::Relaxed)
}

/// Programmatically turns metric/span collection on or off, overriding the
/// environment (the env is still read once, first).
pub fn set_enabled(on: bool) {
    INIT.call_once(init_from_env);
    ENABLED.store(on, Ordering::Relaxed);
}

/// Programmatically turns event emission on or off. Pair with
/// [`install_sink`] — events without a sink are dropped.
pub fn set_events_enabled(on: bool) {
    INIT.call_once(init_from_env);
    EVENTS.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggles_are_sticky() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_events_enabled(true);
        assert!(events_enabled());
        set_events_enabled(false);
        assert!(!events_enabled());
    }

    #[test]
    fn event_roundtrip_through_vec_sink() {
        let sink = Arc::new(VecSink::new());
        let prev = install_sink(sink.clone());
        set_events_enabled(true);
        Event::new("unit.test")
            .field("k", 7u64)
            .field("ok", true)
            .emit();
        set_events_enabled(false);
        if let Some(prev) = prev {
            install_sink(prev);
        } else {
            clear_sink();
        }
        let lines = sink.lines();
        assert_eq!(
            lines,
            vec![r#"{"schema":"fepia.event/v1","event":"unit.test","k":7,"ok":true}"#.to_string()]
        );
    }
}
