//! RESMETRIC-style resilience analysis over chaos/soak telemetry.
//!
//! The chaos soaks stream JSONL events (`trace.span`, `chaos.burst`) but
//! until now nothing *read* them. This module replays such a stream into
//! the time-series resilience measures of Koenig et al. (RESMETRIC):
//!
//! * **degraded-verdict fraction** — overall and per time window: the
//!   fraction of evaluated units whose verdict was not `Exact`,
//! * **recovery time** — after each seeded fault burst ends, how long
//!   degraded verdicts keep appearing before the stream is clean again,
//! * **area-under-degradation** — the integral of the windowed degraded
//!   fraction over time (fraction · seconds), RESMETRIC's "how much
//!   resilience was lost, for how long" scalar,
//! * **per-stage latency percentiles** — p50/p99/p999 (nearest-rank) over
//!   the `us` field of each pipeline stage's spans.
//!
//! Inputs are the events emitted by the tracing layer (see
//! [`crate::trace`]): `worker.exec` spans — and their exceptional
//! stand-ins `serve.brownout` (budgeted evaluation) and `serve.deadline`
//! (dropped with an expired deadline) — carry `units`/`degraded` counts
//! and (in full mode) a `t_us` timestamp; `chaos.burst` marker events
//! bracket seeded fault bursts. The analyzer is total over hostile input:
//! lines that do not parse, or parse to something other than an event, are
//! counted in [`Telemetry::skipped`] and otherwise ignored.
//!
//! The output is a [`ResilienceReport`], rendered by
//! [`ResilienceReport::to_pretty_json`] as the machine-checkable
//! `RESILIENCE.json` that `scripts/check_bench.sh` gates on: fresh
//! measures are compared against the *checked-in* thresholds, so a
//! resilience regression fails CI exactly like a perf regression.

use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Minimal JSON-line parsing (std-only, tolerant)
// ---------------------------------------------------------------------------

/// A scalar field value parsed from an event line. Nested objects/arrays
/// are skipped structurally and not represented.
#[derive(Clone, Debug, PartialEq)]
pub enum Scalar {
    /// A JSON string.
    Str(String),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Scalar {
    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-utf8 \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the line is valid UTF-8:
                    // it came in as &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    /// Parses and discards any JSON value (used for nested structures).
    fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek().ok_or("truncated value")? {
            b'"' => self.string().map(|_| ()),
            b'{' | b'[' => {
                let (open, close) = if self.peek() == Some(b'{') {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                self.pos += 1;
                let mut depth = 1usize;
                while depth > 0 {
                    match self.peek().ok_or("unbalanced nesting")? {
                        b'"' => {
                            self.string()?;
                        }
                        b if b == open => {
                            depth += 1;
                            self.pos += 1;
                        }
                        b if b == close => {
                            depth -= 1;
                            self.pos += 1;
                        }
                        _ => self.pos += 1,
                    }
                }
                Ok(())
            }
            b't' | b'f' | b'n' => {
                if self.literal("true") || self.literal("false") || self.literal("null") {
                    Ok(())
                } else {
                    Err("bad literal".into())
                }
            }
            _ => self.number().map(|_| ()),
        }
    }
}

/// Parses one JSONL event line into its top-level scalar fields, in order.
/// Nested objects and arrays are skipped (structurally validated, not
/// returned). Returns `Err` on malformed input — the caller decides
/// whether that is fatal (fixtures) or skippable (live telemetry).
pub fn parse_json_line(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    c.skip_ws();
    c.expect(b'{')?;
    let mut fields = Vec::new();
    c.skip_ws();
    if c.peek() == Some(b'}') {
        return Ok(fields);
    }
    loop {
        c.skip_ws();
        let key = c.string()?;
        c.skip_ws();
        c.expect(b':')?;
        c.skip_ws();
        match c.peek().ok_or("truncated value")? {
            b'"' => fields.push((key, Scalar::Str(c.string()?))),
            b'{' | b'[' => c.skip_value()?,
            b't' => {
                if !c.literal("true") {
                    return Err("bad literal".into());
                }
                fields.push((key, Scalar::Bool(true)));
            }
            b'f' => {
                if !c.literal("false") {
                    return Err("bad literal".into());
                }
                fields.push((key, Scalar::Bool(false)));
            }
            b'n' => {
                if !c.literal("null") {
                    return Err("bad literal".into());
                }
                fields.push((key, Scalar::Null));
            }
            _ => fields.push((key, Scalar::Num(c.number()?))),
        }
        c.skip_ws();
        match c.peek() {
            Some(b',') => c.pos += 1,
            Some(b'}') => return Ok(fields),
            _ => return Err(format!("expected ',' or '}}' at byte {}", c.pos)),
        }
    }
}

fn get<'a>(fields: &'a [(String, Scalar)], key: &str) -> Option<&'a Scalar> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Telemetry model
// ---------------------------------------------------------------------------

/// One `trace.span` event, as the analyzer sees it.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The trace id (parsed from its 16-hex-digit form).
    pub trace: u64,
    /// Stage name (`client.send`, `worker.exec`, ...).
    pub stage: String,
    /// Pipeline sequence number.
    pub seq: u32,
    /// The request id the span belongs to.
    pub id: u64,
    /// Microseconds since the trace epoch (absent in deterministic mode).
    pub t_us: Option<u64>,
    /// Stage duration in microseconds (absent in deterministic mode).
    pub us: Option<f64>,
    /// Units evaluated (present on `worker.exec`).
    pub units: Option<u64>,
    /// Units whose verdict was not `Exact` (present on `worker.exec`).
    pub degraded: Option<u64>,
}

/// One seeded fault burst, bracketed by `chaos.burst` marker events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Burst {
    /// `t_us` of the `start` marker.
    pub start_us: u64,
    /// `t_us` of the `end` marker.
    pub end_us: u64,
}

/// Parsed telemetry: spans, bursts, and a count of everything ignored.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Every parsed `trace.span` event, in input order.
    pub spans: Vec<SpanRecord>,
    /// Fault bursts, paired from `chaos.burst` start/end markers in input
    /// order (an unterminated start is dropped).
    pub bursts: Vec<Burst>,
    /// Lines that were not parseable events or not analyzer-relevant.
    pub skipped: u64,
}

impl Telemetry {
    /// Parses a JSONL stream. Non-event lines and events the analyzer does
    /// not consume are counted in [`Telemetry::skipped`], never fatal.
    pub fn from_lines<I, S>(lines: I) -> Telemetry
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut t = Telemetry::default();
        let mut open_burst: Option<u64> = None;
        for line in lines {
            let line = line.as_ref().trim();
            if line.is_empty() {
                continue;
            }
            let Ok(fields) = parse_json_line(line) else {
                t.skipped += 1;
                continue;
            };
            match get(&fields, "event").and_then(Scalar::as_str) {
                Some("trace.span") => match span_from_fields(&fields) {
                    Some(span) => t.spans.push(span),
                    None => t.skipped += 1,
                },
                Some("chaos.burst") => {
                    let phase = get(&fields, "phase").and_then(Scalar::as_str);
                    let at = get(&fields, "t_us").and_then(Scalar::as_u64);
                    match (phase, at) {
                        (Some("start"), Some(at)) => open_burst = Some(at),
                        (Some("end"), Some(at)) => {
                            if let Some(start_us) = open_burst.take() {
                                t.bursts.push(Burst {
                                    start_us,
                                    end_us: at.max(start_us),
                                });
                            } else {
                                t.skipped += 1;
                            }
                        }
                        _ => t.skipped += 1,
                    }
                }
                _ => t.skipped += 1,
            }
        }
        t
    }
}

fn span_from_fields(fields: &[(String, Scalar)]) -> Option<SpanRecord> {
    let trace = u64::from_str_radix(get(fields, "trace")?.as_str()?, 16).ok()?;
    Some(SpanRecord {
        trace,
        stage: get(fields, "stage")?.as_str()?.to_string(),
        seq: get(fields, "seq")?.as_u64()? as u32,
        id: get(fields, "id")?.as_u64()?,
        t_us: get(fields, "t_us").and_then(Scalar::as_u64),
        us: get(fields, "us").and_then(Scalar::as_f64),
        units: get(fields, "units").and_then(Scalar::as_u64),
        degraded: get(fields, "degraded").and_then(Scalar::as_u64),
    })
}

// ---------------------------------------------------------------------------
// Resilience measures
// ---------------------------------------------------------------------------

/// Analyzer knobs.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzerConfig {
    /// Width of the degraded-fraction time windows, in microseconds.
    pub window_us: u64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig { window_us: 100_000 }
    }
}

/// One degraded-fraction time window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowPoint {
    /// Window start, microseconds since the trace epoch.
    pub start_us: u64,
    /// Units evaluated in the window.
    pub units: u64,
    /// Units with a non-`Exact` verdict in the window.
    pub degraded: u64,
}

impl WindowPoint {
    /// `degraded / units` (0 when the window is empty).
    pub fn fraction(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.degraded as f64 / self.units as f64
        }
    }
}

/// Latency percentiles for one pipeline stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StageStats {
    /// Stage name.
    pub stage: String,
    /// Spans with a `us` field.
    pub count: u64,
    /// Nearest-rank 50th percentile, microseconds.
    pub p50_us: f64,
    /// Nearest-rank 99th percentile, microseconds.
    pub p99_us: f64,
    /// Nearest-rank 99.9th percentile, microseconds.
    pub p999_us: f64,
    /// Largest observed duration, microseconds.
    pub max_us: f64,
}

/// The analyzer's output: every resilience measure over one telemetry
/// stream. Serialize with [`ResilienceReport::to_pretty_json`].
#[derive(Clone, Debug)]
pub struct ResilienceReport {
    /// `worker.exec` spans seen (one per evaluated request).
    pub requests: u64,
    /// Total units evaluated.
    pub units: u64,
    /// Units with a non-`Exact` verdict.
    pub degraded_units: u64,
    /// Seeded fault bursts observed.
    pub bursts: u64,
    /// Worst-case recovery time: over all bursts, the longest gap between
    /// a burst's end and the last degraded verdict attributable to it
    /// (0 when the stream is clean after every burst).
    pub recovery_us: u64,
    /// Area under the windowed degraded-fraction curve, fraction · seconds.
    pub aud_seconds: f64,
    /// Window width used for `windows` and `aud_seconds`.
    pub window_us: u64,
    /// Degraded fraction per time window (empty without timestamps).
    pub windows: Vec<WindowPoint>,
    /// Per-stage latency percentiles, sorted by stage name.
    pub stages: Vec<StageStats>,
    /// Lines the parser skipped.
    pub skipped: u64,
}

impl ResilienceReport {
    /// Overall `degraded_units / units` (0 when no units).
    pub fn degraded_fraction(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.degraded_units as f64 / self.units as f64
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element with at least `q·n` values at or below it.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Computes every resilience measure over `telemetry`.
pub fn analyze(telemetry: &Telemetry, config: &AnalyzerConfig) -> ResilienceReport {
    let window_us = config.window_us.max(1);

    // Degradation samples: evaluation-position spans carrying unit counts.
    // `worker.exec` is the normal full-precision evaluation;
    // `serve.brownout` replaces it for budgeted (degraded-precision)
    // evaluations and `serve.deadline` for requests dropped at dequeue
    // with an expired deadline — both count toward the degraded fraction,
    // the windows, and burst recovery exactly like degraded verdicts.
    struct Sample {
        t_us: Option<u64>,
        units: u64,
        degraded: u64,
    }
    let samples: Vec<Sample> = telemetry
        .spans
        .iter()
        .filter(|s| {
            matches!(
                s.stage.as_str(),
                "worker.exec" | "serve.brownout" | "serve.deadline"
            )
        })
        .map(|s| Sample {
            t_us: s.t_us,
            units: s.units.unwrap_or(0),
            degraded: s.degraded.unwrap_or(0).min(s.units.unwrap_or(0)),
        })
        .collect();
    let requests = samples.len() as u64;
    let units: u64 = samples.iter().map(|s| s.units).sum();
    let degraded_units: u64 = samples.iter().map(|s| s.degraded).sum();

    // Windowed fractions over the timestamped samples.
    let timestamped: Vec<(u64, u64, u64)> = samples
        .iter()
        .filter_map(|s| s.t_us.map(|t| (t, s.units, s.degraded)))
        .collect();
    let mut windows = Vec::new();
    if let (Some(&(t_min, ..)), Some(&(t_max, ..))) = (
        timestamped.iter().min_by_key(|x| x.0),
        timestamped.iter().max_by_key(|x| x.0),
    ) {
        let count = ((t_max - t_min) / window_us + 1) as usize;
        windows = (0..count)
            .map(|w| WindowPoint {
                start_us: t_min + w as u64 * window_us,
                units: 0,
                degraded: 0,
            })
            .collect();
        for &(t, u, d) in &timestamped {
            let w = ((t - t_min) / window_us) as usize;
            windows[w].units += u;
            windows[w].degraded += d;
        }
    }
    let aud_seconds: f64 = windows
        .iter()
        .map(|w| w.fraction() * window_us as f64 / 1e6)
        .sum();

    // Recovery time per burst: the last degraded verdict after the burst
    // ends (and before the next burst begins) bounds how long the system
    // took to run clean again.
    let mut recovery_us = 0u64;
    for (i, burst) in telemetry.bursts.iter().enumerate() {
        let horizon = telemetry
            .bursts
            .get(i + 1)
            .map_or(u64::MAX, |next| next.start_us);
        let last_degraded = timestamped
            .iter()
            .filter(|&&(t, _, d)| d > 0 && t > burst.end_us && t < horizon)
            .map(|&(t, ..)| t)
            .max();
        if let Some(t) = last_degraded {
            recovery_us = recovery_us.max(t - burst.end_us);
        }
    }

    // Per-stage percentiles over spans that carry a duration.
    let mut by_stage: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for span in &telemetry.spans {
        if let Some(us) = span.us {
            if us.is_finite() && us >= 0.0 {
                by_stage.entry(span.stage.as_str()).or_default().push(us);
            }
        }
    }
    let stages = by_stage
        .into_iter()
        .map(|(stage, mut xs)| {
            xs.sort_by(|a, b| a.total_cmp(b));
            StageStats {
                stage: stage.to_string(),
                count: xs.len() as u64,
                p50_us: nearest_rank(&xs, 0.50),
                p99_us: nearest_rank(&xs, 0.99),
                p999_us: nearest_rank(&xs, 0.999),
                max_us: *xs.last().expect("non-empty by construction"),
            }
        })
        .collect();

    ResilienceReport {
        requests,
        units,
        degraded_units,
        bursts: telemetry.bursts.len() as u64,
        recovery_us,
        aud_seconds,
        window_us,
        windows,
        stages,
        skipped: telemetry.skipped,
    }
}

// ---------------------------------------------------------------------------
// Thresholds and the RESILIENCE.json rendering
// ---------------------------------------------------------------------------

/// The gate: a report regresses when any measure exceeds its threshold.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceThresholds {
    /// Cap on the overall degraded fraction.
    pub max_degraded_fraction: f64,
    /// Cap on the worst-case recovery time, microseconds.
    pub max_recovery_us: u64,
    /// Cap on the area-under-degradation, fraction · seconds.
    pub max_aud_seconds: f64,
}

impl ResilienceThresholds {
    /// Every threshold violation in `report`, as human-readable lines
    /// (empty = the report passes).
    pub fn violations(&self, report: &ResilienceReport) -> Vec<String> {
        let mut out = Vec::new();
        let f = report.degraded_fraction();
        if f > self.max_degraded_fraction {
            out.push(format!(
                "degraded fraction {f:.4} exceeds cap {:.4}",
                self.max_degraded_fraction
            ));
        }
        if report.recovery_us > self.max_recovery_us {
            out.push(format!(
                "recovery time {} us exceeds cap {} us",
                report.recovery_us, self.max_recovery_us
            ));
        }
        if report.aud_seconds > self.max_aud_seconds {
            out.push(format!(
                "area-under-degradation {:.4} fraction*s exceeds cap {:.4}",
                report.aud_seconds, self.max_aud_seconds
            ));
        }
        out
    }
}

impl ResilienceReport {
    /// Renders the report plus its thresholds as multi-line JSON, one
    /// top-level scalar per line — the shape `scripts/check_bench.sh`'s
    /// line-oriented extractor relies on.
    pub fn to_pretty_json(&self, thresholds: &ResilienceThresholds) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"fepia.resilience/v1\",");
        let _ = writeln!(s, "  \"requests\": {},", self.requests);
        let _ = writeln!(s, "  \"units\": {},", self.units);
        let _ = writeln!(s, "  \"degraded_units\": {},", self.degraded_units);
        let _ = writeln!(
            s,
            "  \"degraded_fraction\": {:.6},",
            self.degraded_fraction()
        );
        let _ = writeln!(
            s,
            "  \"degraded_fraction_threshold\": {:.6},",
            thresholds.max_degraded_fraction
        );
        let _ = writeln!(s, "  \"recovery_us\": {},", self.recovery_us);
        let _ = writeln!(
            s,
            "  \"recovery_us_threshold\": {},",
            thresholds.max_recovery_us
        );
        let _ = writeln!(s, "  \"aud_seconds\": {:.6},", self.aud_seconds);
        let _ = writeln!(
            s,
            "  \"aud_seconds_threshold\": {:.6},",
            thresholds.max_aud_seconds
        );
        let _ = writeln!(s, "  \"bursts\": {},", self.bursts);
        let _ = writeln!(s, "  \"window_us\": {},", self.window_us);
        let _ = writeln!(s, "  \"skipped_lines\": {},", self.skipped);
        s.push_str("  \"stages\": [");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"stage\": \"{}\", \"count\": {}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, \"max_us\": {:.3}}}",
                st.stage, st.count, st.p50_us, st.p99_us, st.p999_us, st.max_us
            );
        }
        if !self.stages.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"windows\": [");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"start_us\": {}, \"units\": {}, \"degraded\": {}, \"fraction\": {:.6}}}",
                w.start_us,
                w.units,
                w.degraded,
                w.fraction()
            );
        }
        if !self.windows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_scalars_nesting_and_escapes() {
        let fields = parse_json_line(
            r#"{"a": 1, "b": -2.5e1, "s": "x\"y\\z\nq", "t": true, "n": null, "skip": {"deep": [1, {"x": "}"}]}, "after": 7}"#,
        )
        .unwrap();
        assert_eq!(get(&fields, "a").unwrap().as_u64(), Some(1));
        assert_eq!(get(&fields, "b").unwrap().as_f64(), Some(-25.0));
        assert_eq!(get(&fields, "s").unwrap().as_str(), Some("x\"y\\z\nq"));
        assert_eq!(get(&fields, "t"), Some(&Scalar::Bool(true)));
        assert_eq!(get(&fields, "n"), Some(&Scalar::Null));
        assert!(get(&fields, "skip").is_none(), "nested values are skipped");
        assert_eq!(get(&fields, "after").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn parser_rejects_garbage_without_panicking() {
        for bad in ["", "{", "not json", "{\"a\":}", "{\"a\" 1}", "[1,2]"] {
            assert!(parse_json_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn telemetry_skips_unknown_and_pairs_bursts() {
        let t = Telemetry::from_lines([
            r#"{"schema":"fepia.event/v1","event":"solver.solve","ok":true}"#,
            "garbage",
            r#"{"event":"chaos.burst","phase":"start","t_us":100}"#,
            r#"{"event":"trace.span","trace":"00000000000000ff","stage":"worker.exec","seq":3,"id":9,"t_us":150,"units":4,"degraded":1}"#,
            r#"{"event":"chaos.burst","phase":"end","t_us":200}"#,
        ]);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].trace, 0xff);
        assert_eq!(
            t.bursts,
            vec![Burst {
                start_us: 100,
                end_us: 200
            }]
        );
        assert_eq!(t.skipped, 2);
    }

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(nearest_rank(&xs, 0.50), 50.0);
        assert_eq!(nearest_rank(&xs, 0.99), 99.0);
        assert_eq!(nearest_rank(&xs, 0.999), 100.0);
        assert_eq!(nearest_rank(&[7.5], 0.5), 7.5);
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
    }

    #[test]
    fn report_renders_gateable_json() {
        let telemetry = Telemetry::from_lines([
            r#"{"event":"trace.span","trace":"01","stage":"worker.exec","seq":3,"id":0,"t_us":0,"us":10.0,"units":2,"degraded":1}"#,
        ]);
        let report = analyze(&telemetry, &AnalyzerConfig::default());
        let json = report.to_pretty_json(&ResilienceThresholds {
            max_degraded_fraction: 0.75,
            max_recovery_us: 1_000,
            max_aud_seconds: 1.0,
        });
        assert!(json.contains("\"degraded_fraction\": 0.500000,"));
        assert!(json.contains("\"degraded_fraction_threshold\": 0.750000,"));
        assert!(json.contains("\"recovery_us\": 0,"));
        assert!(json.contains("\"aud_seconds_threshold\": 1.000000,"));
        // One top-level scalar per line, so the shell gate can extract.
        for key in ["degraded_fraction", "recovery_us", "aud_seconds"] {
            assert_eq!(
                json.lines()
                    .filter(|l| l.contains(&format!("\"{key}\":")))
                    .count(),
                1,
                "key {key} must appear on exactly one line"
            );
        }
    }

    #[test]
    fn thresholds_flag_each_violation() {
        let report = ResilienceReport {
            requests: 10,
            units: 10,
            degraded_units: 5,
            bursts: 1,
            recovery_us: 2_000,
            aud_seconds: 3.0,
            window_us: 100,
            windows: vec![],
            stages: vec![],
            skipped: 0,
        };
        let tight = ResilienceThresholds {
            max_degraded_fraction: 0.1,
            max_recovery_us: 1_000,
            max_aud_seconds: 1.0,
        };
        assert_eq!(tight.violations(&report).len(), 3);
        let loose = ResilienceThresholds {
            max_degraded_fraction: 0.5,
            max_recovery_us: 2_000,
            max_aud_seconds: 3.0,
        };
        assert!(loose.violations(&report).is_empty());
    }
}
