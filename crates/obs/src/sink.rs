//! Structured run events as JSON lines.
//!
//! An [`Event`] is a named record with typed fields. When event output is
//! enabled (see [`crate::enabled`] and the `FEPIA_OBS` environment variable)
//! each event renders as one JSON object on its own line and goes to the
//! installed [`EventSink`]. The default sink is [`NullSink`]; `FEPIA_OBS=
//! <path>` installs a [`JsonlSink`] writing to that path.
//!
//! Event lines follow a stable schema:
//! `{"schema":"fepia.event/v1","event":"<name>", ...fields}` — fields keep
//! insertion order so goldens are byte-stable for a fixed emit sequence.

use crate::json::{ObjectWriter, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// Receives rendered event lines (without trailing newline).
pub trait EventSink: Send + Sync {
    /// Consumes one rendered JSON line.
    fn emit(&self, line: &str);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _line: &str) {}
}

/// Appends events as JSON lines to a buffered file.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        // FEPIA_OBS commonly points into a results directory that the run
        // itself creates later; don't fail on a missing parent.
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, line: &str) {
        let mut out = self.out.lock().expect("jsonl sink lock");
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl sink lock").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Collects event lines in memory — for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct VecSink {
    lines: Mutex<Vec<String>>,
}

impl VecSink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lines captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("vec sink lock").clone()
    }
}

impl EventSink for VecSink {
    fn emit(&self, line: &str) {
        self.lines
            .lock()
            .expect("vec sink lock")
            .push(line.to_string());
    }
}

static SINK: RwLock<Option<Arc<dyn EventSink>>> = RwLock::new(None);

/// Installs `sink` as the destination for event lines and returns the
/// previous sink (if any). Installing does not by itself enable event
/// output — see [`crate::set_events_enabled`].
pub fn install_sink(sink: Arc<dyn EventSink>) -> Option<Arc<dyn EventSink>> {
    SINK.write().expect("sink lock").replace(sink)
}

/// Removes the installed sink (events fall back to being dropped).
pub fn clear_sink() -> Option<Arc<dyn EventSink>> {
    SINK.write().expect("sink lock").take()
}

/// Flushes the installed sink, if any.
pub fn flush_sink() {
    if let Some(sink) = SINK.read().expect("sink lock").as_ref() {
        sink.flush();
    }
}

pub(crate) fn send_line(line: &str) {
    if let Some(sink) = SINK.read().expect("sink lock").as_ref() {
        sink.emit(line);
    }
}

/// A structured event under construction. Fields render in insertion order.
#[must_use = "an event does nothing until .emit() is called"]
pub struct Event {
    writer: Option<ObjectWriter>,
}

impl Event {
    /// Starts the event `name`. When event output is disabled this is a
    /// branch and an empty struct — no allocation.
    pub fn new(name: &str) -> Self {
        let writer = crate::events_enabled().then(|| {
            let mut w = ObjectWriter::new();
            w.field("schema", "fepia.event/v1").field("event", name);
            w
        });
        Event { writer }
    }

    /// Adds a field.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        if let Some(w) = self.writer.as_mut() {
            w.field(key, value);
        }
        self
    }

    /// Adds a field rendered from a pre-built JSON fragment.
    pub fn field_raw(mut self, key: &str, json: &str) -> Self {
        if let Some(w) = self.writer.as_mut() {
            w.field_raw(key, json);
        }
        self
    }

    /// Renders the event and hands it to the installed sink.
    pub fn emit(self) {
        if let Some(w) = self.writer {
            send_line(&w.finish());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_swallows() {
        NullSink.emit("{}");
        NullSink.flush();
    }

    #[test]
    fn disabled_event_is_inert() {
        crate::set_events_enabled(false);
        let e = Event::new("x").field("k", 1u64);
        assert!(e.writer.is_none());
        e.emit();
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir().join("fepia-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit(r#"{"a":1}"#);
            sink.emit(r#"{"b":2}"#);
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn event_schema_golden() {
        // Render directly (bypassing the global toggle) to pin the schema.
        let mut w = ObjectWriter::new();
        w.field("schema", "fepia.event/v1")
            .field("event", "radius.computed");
        w.field("feature", "mach1")
            .field("radius", 0.5)
            .field("analytic", true);
        assert_eq!(
            w.finish(),
            r#"{"schema":"fepia.event/v1","event":"radius.computed","feature":"mach1","radius":0.5,"analytic":true}"#
        );
    }
}
