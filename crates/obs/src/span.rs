//! Scoped timers with per-thread aggregation.
//!
//! A [`SpanGuard`] (usually created via the [`crate::span!`] macro) times a
//! lexical scope. To keep hot loops off the registry mutex, elapsed times are
//! accumulated in a thread-local table keyed by span name and only rolled up
//! into the global registry when the local batch grows large, when the thread
//! exits, or when [`flush_thread_spans`] is called (a registry snapshot
//! flushes the calling thread automatically).
//!
//! When the obs layer is disabled ([`crate::enabled`] is false) span creation
//! is a branch and nothing else — no clock read, no thread-local access.

use crate::registry::LocalHistogram;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

/// Local batches are rolled up into the registry after this many records,
/// bounding both thread-local memory and snapshot staleness.
const FLUSH_EVERY: u64 = 1024;

struct ThreadSpans {
    table: HashMap<&'static str, LocalHistogram>,
    pending: u64,
}

impl ThreadSpans {
    fn record(&mut self, name: &'static str, ns: f64) {
        self.table
            .entry(name)
            .or_insert_with(LocalHistogram::timing_ns)
            .record(ns);
        self.pending += 1;
        if self.pending >= FLUSH_EVERY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        for (name, local) in self.table.iter_mut() {
            if local.count > 0 {
                let hist = crate::global().histogram(&format!("span.{name}.ns"));
                hist.merge_local(local);
                *local = LocalHistogram::timing_ns();
            }
        }
        self.pending = 0;
    }
}

impl Drop for ThreadSpans {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static SPANS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans {
        table: HashMap::new(),
        pending: 0,
    });
}

/// Rolls the calling thread's pending span timings up into the global
/// registry. Called automatically by [`crate::MetricsRegistry::snapshot`]
/// for the snapshotting thread; worker threads flush on exit.
pub fn flush_thread_spans() {
    // Guard against re-entrancy during thread teardown.
    let _ = SPANS.try_with(|s| {
        if let Ok(mut s) = s.try_borrow_mut() {
            s.flush();
        }
    });
}

/// Times a scope; records elapsed nanoseconds on drop under
/// `span.<name>.ns` in the global registry (via the thread-local batch).
///
/// Construct with [`SpanGuard::enter`] or the [`crate::span!`] macro. When
/// the obs layer is disabled the guard is inert.
#[must_use = "a span guard times its scope; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    start: Option<(&'static str, Instant)>,
}

impl SpanGuard {
    /// Starts timing `name` if observability is enabled.
    pub fn enter(name: &'static str) -> Self {
        SpanGuard {
            start: crate::enabled().then(|| (name, Instant::now())),
        }
    }

    /// An inert guard (used by tests and the disabled path).
    pub fn disabled() -> Self {
        SpanGuard { start: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.start.take() {
            let ns = start.elapsed().as_nanos() as f64;
            let _ = SPANS.try_with(|s| {
                if let Ok(mut s) = s.try_borrow_mut() {
                    s.record(name, ns);
                }
            });
        }
    }
}

/// Times the enclosing scope: `let _span = fepia_obs::span!("solver.refine");`.
///
/// The name must be a `'static` string literal; timings aggregate under
/// `span.<name>.ns`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_records_nothing() {
        let g = SpanGuard::disabled();
        drop(g);
        // No panic, no registry interaction — nothing to assert beyond that.
    }

    #[test]
    fn span_records_into_global_when_enabled() {
        crate::set_enabled(true);
        {
            let _g = SpanGuard::enter("obs.test.span");
            std::hint::black_box(1 + 1);
        }
        flush_thread_spans();
        let snap = crate::global().snapshot();
        let entry = snap
            .entries
            .iter()
            .find(|e| e.name == "span.obs.test.span.ns")
            .expect("span histogram registered");
        match &entry.value {
            crate::SnapshotValue::Histogram { count, .. } => assert!(*count >= 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        crate::set_enabled(false);
    }
}
