//! Metric primitives and the registry.
//!
//! Counters and gauges are single atomics; histograms are fixed-bucket
//! (bounds chosen at construction) with lock-free recording and
//! p50/p90/p99 readout by linear interpolation inside the bucket. The
//! [`MetricsRegistry`] maps names to metrics; handles are `Arc`s, so hot
//! paths look a metric up once and then touch only atomics.

use crate::json::ObjectWriter;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter. Increments **wrap** on u64 overflow
/// (an explicit, tested policy: a saturated counter would silently flatten
/// rates, a wrap is detectable from the snapshot sequence).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` (wrapping).
    pub fn add(&self, n: u64) {
        // fetch_add on AtomicU64 wraps by definition.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative; wrapping).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// `bounds` are the inclusive upper edges of the first `bounds.len()`
/// buckets; one implicit overflow bucket catches everything larger. The
/// observation sum is kept as f64 bits under a CAS loop so means stay exact
/// for non-integer observations.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (overflow)
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket edges
    /// (must be finite, strictly increasing, non-empty).
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// `n` exponential buckets: `start, start·factor, start·factor², …`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0, "bad exponential spec");
        let mut bounds = Vec::with_capacity(n);
        let mut edge = start;
        for _ in 0..n {
            bounds.push(edge);
            edge *= factor;
        }
        Histogram::with_bounds(bounds)
    }

    /// The default timing histogram: 100 ns … ~100 s in half-decade steps.
    pub fn timing_ns() -> Self {
        Histogram::exponential(100.0, 10f64.sqrt(), 19)
    }

    /// Records one observation (NaN is ignored).
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.min_bits, |m| m.min(v));
        atomic_f64_update(&self.max_bits, |m| m.max(v));
    }

    /// Merges a thread-local batch (same bounds) into this histogram.
    pub(crate) fn merge_local(&self, local: &LocalHistogram) {
        debug_assert_eq!(local.buckets.len(), self.buckets.len());
        for (dst, &src) in self.buckets.iter().zip(local.buckets.iter()) {
            if src > 0 {
                dst.fetch_add(src, Ordering::Relaxed);
            }
        }
        if local.count > 0 {
            self.count.fetch_add(local.count, Ordering::Relaxed);
            atomic_f64_update(&self.sum_bits, |s| s + local.sum);
            atomic_f64_update(&self.min_bits, |m| m.min(local.min));
            atomic_f64_update(&self.max_bits, |m| m.max(local.max));
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() / n as f64)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) estimated from bucket counts with linear
    /// interpolation inside the bucket; `None` when empty.
    ///
    /// The estimate is clamped to the observed min/max, so degenerate
    /// single-value histograms report that value for every quantile.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let target = q * total as f64;
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                // Interpolate within this bucket's range.
                let lo = if i == 0 { min } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    max
                };
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let v = lo + (hi - lo) * frac;
                return Some(v.clamp(min, max));
            }
            cum = next;
        }
        Some(max)
    }

    /// Convenience: (p50, p90, p99), `None` when empty.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.5)?,
            self.quantile(0.9)?,
            self.quantile(0.99)?,
        ))
    }

    /// Bucket upper edges (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// A non-atomic histogram batch used for per-thread span aggregation.
#[derive(Debug, Clone)]
pub(crate) struct LocalHistogram {
    pub(crate) bounds: Vec<f64>,
    pub(crate) buckets: Vec<u64>,
    pub(crate) count: u64,
    pub(crate) sum: f64,
    pub(crate) min: f64,
    pub(crate) max: f64,
}

impl LocalHistogram {
    pub(crate) fn timing_ns() -> Self {
        let h = Histogram::timing_ns();
        LocalHistogram {
            buckets: vec![0; h.bounds.len() + 1],
            bounds: h.bounds,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub(crate) fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// A name → metric map. Use [`crate::global`] for the process-wide registry
/// or construct scoped registries for tests and isolated runs.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Gets or creates the histogram `name` with default timing buckets
    /// (nanoseconds, 100 ns … ~100 s).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, Histogram::timing_ns)
    }

    /// Gets or creates the histogram `name`, building it with `make` when
    /// absent (use for non-timing bucket layouts).
    pub fn histogram_with(&self, name: &str, make: impl FnOnce() -> Histogram) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("metrics lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(make())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        crate::span::flush_thread_spans();
        let m = self.metrics.lock().expect("metrics lock");
        let entries = m
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        mean: h.mean(),
                        p50: h.quantile(0.5),
                        p90: h.quantile(0.9),
                        p99: h.quantile(0.99),
                    },
                };
                SnapshotEntry {
                    name: name.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Removes every metric (scoped registries / test isolation).
    pub fn clear(&self) {
        self.metrics.lock().expect("metrics lock").clear();
    }
}

/// The process-wide registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A snapshot of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram {
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// Mean (`None` when empty).
        mean: Option<f64>,
        /// Median estimate.
        p50: Option<f64>,
        /// 90th percentile estimate.
        p90: Option<f64>,
        /// 99th percentile estimate.
        p99: Option<f64>,
    },
}

/// One named entry of a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotEntry {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: SnapshotValue,
}

/// A point-in-time copy of a registry, renderable as JSON or text.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Entries in name order.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// Renders `{"schema":"fepia.metrics/v1","metrics":{...}}`.
    pub fn to_json(&self) -> String {
        let mut metrics = ObjectWriter::new();
        for e in &self.entries {
            let body = match &e.value {
                SnapshotValue::Counter(v) => {
                    let mut o = ObjectWriter::new();
                    o.field("type", "counter").field("value", *v);
                    o.finish()
                }
                SnapshotValue::Gauge(v) => {
                    let mut o = ObjectWriter::new();
                    o.field("type", "gauge").field("value", *v);
                    o.finish()
                }
                SnapshotValue::Histogram {
                    count,
                    sum,
                    mean,
                    p50,
                    p90,
                    p99,
                } => {
                    let mut o = ObjectWriter::new();
                    o.field("type", "histogram")
                        .field("count", *count)
                        .field("sum", *sum);
                    for (k, v) in [("mean", mean), ("p50", p50), ("p90", p90), ("p99", p99)] {
                        if let Some(v) = v {
                            o.field(k, *v);
                        }
                    }
                    o.finish()
                }
            };
            metrics.field_raw(&e.name, &body);
        }
        let mut root = ObjectWriter::new();
        root.field("schema", "fepia.metrics/v1");
        root.field_raw("metrics", &metrics.finish());
        root.finish()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|e| e.name == name).and_then(|e| {
            if let SnapshotValue::Counter(v) = e.value {
                Some(v)
            } else {
                None
            }
        })
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        for e in &self.entries {
            match &e.value {
                SnapshotValue::Counter(v) => writeln!(f, "{:<width$}  counter    {v}", e.name)?,
                SnapshotValue::Gauge(v) => writeln!(f, "{:<width$}  gauge      {v}", e.name)?,
                SnapshotValue::Histogram {
                    count,
                    mean,
                    p50,
                    p90,
                    p99,
                    ..
                } => {
                    write!(f, "{:<width$}  histogram  n={count}", e.name)?;
                    for (k, v) in [("mean", mean), ("p50", p50), ("p90", p90), ("p99", p99)] {
                        if let Some(v) = v {
                            write!(f, "  {k}={v:.1}")?;
                        }
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

#[allow(clippy::len_zero)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics_and_wrap() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Overflow policy: wrap, not saturate.
        c.add(u64::MAX);
        assert_eq!(c.get(), 41);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_quantiles_uniform() {
        // 1..=1000 in unit buckets: quantiles should be ~ q·1000.
        let h = Histogram::with_bounds((1..=1000).map(|i| i as f64).collect());
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let (p50, p90, p99) = h.percentiles().unwrap();
        assert!((p50 - 500.0).abs() <= 1.0, "p50 {p50}");
        assert!((p90 - 900.0).abs() <= 1.0, "p90 {p90}");
        assert!((p99 - 990.0).abs() <= 1.0, "p99 {p99}");
        assert!((h.mean().unwrap() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_skewed_and_overflow() {
        let h = Histogram::with_bounds(vec![10.0, 100.0]);
        for _ in 0..99 {
            h.record(5.0);
        }
        h.record(1e6); // overflow bucket
        let p50 = h.quantile(0.5).unwrap();
        assert!((5.0..=10.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= 1e6 && p99 > 5.0, "p99 {p99}");
        // Max is clamped to the observed max, not +inf.
        assert_eq!(h.quantile(1.0), Some(1e6));
    }

    #[test]
    fn histogram_single_value_degenerate() {
        let h = Histogram::timing_ns();
        h.record(250.0);
        // All quantiles clamp to the single observed value.
        assert_eq!(h.quantile(0.0), Some(250.0));
        assert_eq!(h.quantile(0.5), Some(250.0));
        assert_eq!(h.quantile(1.0), Some(250.0));
    }

    #[test]
    fn histogram_empty_and_nan() {
        let h = Histogram::timing_ns();
        assert_eq!(h.quantile(0.5), None);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        Histogram::with_bounds(vec![1.0, 1.0]);
    }

    #[test]
    fn registry_get_or_create_and_snapshot() {
        let r = MetricsRegistry::new();
        r.counter("a.calls").add(3);
        r.counter("a.calls").add(4); // same counter
        r.gauge("b.depth").set(-2);
        r.histogram("c.ns").record(1000.0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.calls"), Some(7));
        assert_eq!(snap.entries.len(), 3);
        // Names are sorted.
        let names: Vec<_> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.calls", "b.depth", "c.ns"]);
        let json = snap.to_json();
        assert!(
            json.starts_with("{\"schema\":\"fepia.metrics/v1\""),
            "{json}"
        );
        assert!(json.contains("\"a.calls\":{\"type\":\"counter\",\"value\":7}"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn display_renders_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter("calls").add(2);
        r.gauge("depth").set(1);
        r.histogram("lat").record(500.0);
        let text = r.snapshot().to_string();
        assert!(text.contains("counter"));
        assert!(text.contains("gauge"));
        assert!(text.contains("histogram"));
        assert!(text.contains("n=1"));
    }
}
