//! Minimal JSON writer (no external dependencies).
//!
//! The obs layer emits JSON-lines events and metrics snapshots; this module
//! is the single place JSON is produced so escaping and number formatting
//! stay consistent. Only writing is supported — nothing in the workspace
//! parses JSON.

use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values become strings
/// (`"inf"`, `"-inf"`, `"nan"`) since JSON has no literal for them.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is valid JSON except that it
        // can produce e.g. `1e300`; that is valid JSON too.
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// A JSON scalar the obs layer can record.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite rendered as strings).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Appends this value's JSON rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_f64(out, *v),
            Value::Str(s) => write_str(out, s),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Incremental JSON object writer: `{"k":v,...}` with insertion order kept.
#[derive(Default)]
pub struct ObjectWriter {
    buf: String,
    any: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Appends `"key": value`.
    pub fn field(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        self.key(key);
        value.into().write(&mut self.buf);
        self
    }

    /// Appends `"key"` followed by a pre-rendered JSON fragment (for nested
    /// objects/arrays produced by another writer).
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders a JSON array from pre-rendered element fragments.
pub fn array_of(elems: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, e) in elems.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quotes() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nonfinite_numbers_are_strings() {
        let mut s = String::new();
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "\"inf\"");
        s.clear();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "\"nan\"");
        s.clear();
        write_f64(&mut s, 2.5);
        assert_eq!(s, "2.5");
    }

    #[test]
    fn object_writer_orders_fields() {
        let mut o = ObjectWriter::new();
        o.field("b", 1u64).field("a", "x").field("f", 0.5);
        assert_eq!(o.finish(), r#"{"b":1,"a":"x","f":0.5}"#);
    }

    #[test]
    fn nested_raw_and_array() {
        let inner = {
            let mut o = ObjectWriter::new();
            o.field("n", 3u64);
            o.finish()
        };
        let mut outer = ObjectWriter::new();
        outer.field_raw("inner", &inner);
        outer.field_raw("xs", &array_of(["1".to_string(), "2".to_string()]));
        assert_eq!(outer.finish(), r#"{"inner":{"n":3},"xs":[1,2]}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }
}
