//! `fepia-chaos`: deterministic, seedable fault injection.
//!
//! The robustness evaluator quantifies how much perturbation a *system*
//! survives; this crate injects perturbation into the *evaluator itself* so
//! its failure handling can be exercised and measured (RESMETRIC's "resilience
//! must be measured under injected disruption" applied inward). Instrumented
//! sites in `optim`, `core`, `par` and `mapping` ask this crate whether to
//! misbehave:
//!
//! * [`poison_f64`] — replace a value with `NaN`, `±∞` or a huge finite
//!   number (cycles deterministically through the four poisons),
//! * [`should_fire`] with site `optim.nonconvergence` — force the solver to
//!   report iteration-cap exhaustion,
//! * [`maybe_panic`] — panic inside a parallel worker task,
//! * [`maybe_delay`] — add a small bounded latency spike,
//! * [`should_fire`] with sites `net.read` / `net.write` — sever a TCP
//!   connection before a request frame is read, or tear a response frame
//!   mid-write (`fepia-net` drives both; clients must recover by
//!   reconnect + retry).
//!
//! # Enabling
//!
//! Everything is off by default. The disabled path of every hook is a single
//! relaxed atomic load — instrumented code must not measurably slow down when
//! injection is off (`benches/chaos_overhead.rs` enforces < 2%). The
//! `FEPIA_CHAOS` environment variable controls startup state:
//!
//! | value            | effect                                      |
//! |------------------|---------------------------------------------|
//! | unset, ``, `0`   | disabled                                    |
//! | `<seed>:<rate>`  | enabled: e.g. `42:0.2` = seed 42, 20% rate  |
//! | `<seed>`         | enabled with the default rate 0.1           |
//!
//! Malformed values disable injection with a warning on stderr rather than
//! aborting the host program.
//!
//! Tests override the environment programmatically with [`set_for_test`] /
//! [`clear`], which also reset the per-site draw counters so a fixed seed
//! replays the same injection schedule.
//!
//! # Determinism
//!
//! Each hook call is a *draw*: the decision is a pure function of
//! `(seed, site, draw index)` via SplitMix64, so a single-threaded run with a
//! fixed seed fires the exact same faults every time. Draw indices are
//! per-site atomic counters; under parallel drivers the *assignment* of draws
//! to tasks depends on scheduling, but the sequence of decisions per site —
//! and therefore the overall fault rate — does not.
//!
//! When `fepia-obs` is enabled, every fired injection bumps a
//! `chaos.injected.<kind>` counter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
/// Firing threshold: a draw fires when `splitmix64(..) < THRESHOLD`.
/// `rate` is mapped onto `[0, u64::MAX]` once at configuration time.
static THRESHOLD: AtomicU64 = AtomicU64::new(0);
static INIT: Once = Once::new();

/// Per-site draw counters. Sites are hashed into a fixed slot array; distinct
/// sites sharing a slot simply share a draw sequence, which is still
/// deterministic.
const SITE_SLOTS: usize = 64;
static DRAWS: [AtomicU64; SITE_SLOTS] = [const { AtomicU64::new(0) }; SITE_SLOTS];

/// Default injection rate when `FEPIA_CHAOS=<seed>` gives no `:<rate>` part.
pub const DEFAULT_RATE: f64 = 0.1;

fn rate_to_threshold(rate: f64) -> u64 {
    if rate.is_nan() || rate <= 0.0 {
        return 0;
    }
    if rate >= 1.0 {
        return u64::MAX;
    }
    (rate * (u64::MAX as f64)) as u64
}

fn init_from_env() {
    let var = std::env::var("FEPIA_CHAOS").unwrap_or_default();
    match var.as_str() {
        "" | "0" => {}
        spec => match parse_spec(spec) {
            Ok((seed, rate)) => configure(Some((seed, rate))),
            Err(why) => {
                eprintln!("fepia-chaos: ignoring FEPIA_CHAOS={spec}: {why}; injection disabled");
            }
        },
    }
}

/// Parses `<seed>[:<rate>]`.
fn parse_spec(spec: &str) -> Result<(u64, f64), String> {
    let (seed_part, rate_part) = match spec.split_once(':') {
        Some((s, r)) => (s, Some(r)),
        None => (spec, None),
    };
    let seed: u64 = seed_part
        .trim()
        .parse()
        .map_err(|_| format!("bad seed {seed_part:?} (want u64)"))?;
    let rate = match rate_part {
        None => DEFAULT_RATE,
        Some(r) => {
            let rate: f64 = r
                .trim()
                .parse()
                .map_err(|_| format!("bad rate {r:?} (want float in [0,1])"))?;
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} outside [0,1]"));
            }
            rate
        }
    };
    Ok((seed, rate))
}

fn configure(cfg: Option<(u64, f64)>) {
    match cfg {
        Some((seed, rate)) => {
            SEED.store(seed, Ordering::Relaxed);
            THRESHOLD.store(rate_to_threshold(rate), Ordering::Relaxed);
            for slot in DRAWS.iter() {
                slot.store(0, Ordering::Relaxed);
            }
            ENABLED.store(true, Ordering::Relaxed);
        }
        None => {
            ENABLED.store(false, Ordering::Relaxed);
            SEED.store(0, Ordering::Relaxed);
            THRESHOLD.store(0, Ordering::Relaxed);
        }
    }
}

/// Whether fault injection is active. The first call reads `FEPIA_CHAOS`;
/// afterwards this is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    INIT.call_once(init_from_env);
    ENABLED.load(Ordering::Relaxed)
}

/// The active `(seed, rate)` configuration, or `None` when disabled.
pub fn config() -> Option<(u64, f64)> {
    if !enabled() {
        return None;
    }
    let seed = SEED.load(Ordering::Relaxed);
    let rate = THRESHOLD.load(Ordering::Relaxed) as f64 / u64::MAX as f64;
    Some((seed, rate))
}

/// Programmatically enables injection with the given seed and rate,
/// overriding the environment, and resets all draw counters so the schedule
/// replays from the start. Rate is clamped to `[0, 1]`.
pub fn set_for_test(seed: u64, rate: f64) {
    INIT.call_once(init_from_env);
    configure(Some((seed, rate.clamp(0.0, 1.0))));
}

/// Disables injection (overriding the environment).
pub fn clear() {
    INIT.call_once(init_from_env);
    configure(None);
}

/// FNV-1a over the site name: stable, cheap, good enough to spread sites
/// across slots and decorrelate their decision streams.
fn fnv1a(site: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer: one well-mixed u64 from one input u64.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One decision draw for `site`: a pure function of `(seed, site, draw
/// index)`. Returns the mixed u64 alongside the fire decision so value
/// hooks ([`poison_f64`], [`maybe_delay`]) can reuse the entropy.
fn draw(site: &str) -> (bool, u64) {
    let h = fnv1a(site);
    let idx = DRAWS[(h as usize) % SITE_SLOTS].fetch_add(1, Ordering::Relaxed);
    let mixed = splitmix64(SEED.load(Ordering::Relaxed) ^ h ^ idx.wrapping_mul(0x2545f4914f6cdd1d));
    (mixed < THRESHOLD.load(Ordering::Relaxed), mixed)
}

fn record(kind: &str) {
    if fepia_obs::enabled() {
        fepia_obs::global()
            .counter(&format!("chaos.injected.{kind}"))
            .inc();
    }
}

/// Whether the fault at `site` should fire on this draw. Always `false`
/// (after one relaxed load) when injection is disabled.
#[inline]
pub fn should_fire(site: &str) -> bool {
    if !enabled() {
        return false;
    }
    let (fire, _) = draw(site);
    if fire {
        record(site);
    }
    fire
}

/// Passes `v` through, or — when the draw at `site` fires — replaces it with
/// one of the four poisons (`NaN`, `+∞`, `−∞`, `1e308`), chosen
/// deterministically from the draw's entropy.
#[inline]
pub fn poison_f64(site: &str, v: f64) -> f64 {
    if !enabled() {
        return v;
    }
    let (fire, mixed) = draw(site);
    if !fire {
        return v;
    }
    record("poison");
    match (mixed >> 32) % 4 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => 1e308,
    }
}

/// Panics with a recognizable message when the draw at `site` fires. Hosts
/// are expected to contain it with `catch_unwind` (see `fepia-par`).
#[inline]
pub fn maybe_panic(site: &str) {
    if !enabled() {
        return;
    }
    let (fire, _) = draw(site);
    if fire {
        record("panic");
        panic!("chaos: injected panic at {site}");
    }
}

/// Sleeps for a small bounded time (≤ ~500µs) when the draw at `site` fires,
/// modelling a latency spike on one worker.
#[inline]
pub fn maybe_delay(site: &str) {
    if !enabled() {
        return;
    }
    let (fire, mixed) = draw(site);
    if fire {
        record("delay");
        let us = 50 + (mixed >> 24) % 450;
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_for_test`/`clear` mutate process-global state: serialize the
    /// tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_hooks_are_inert() {
        let _g = LOCK.lock().unwrap();
        clear();
        assert!(!enabled());
        assert!(!should_fire("x"));
        assert_eq!(poison_f64("x", 1.5).to_bits(), 1.5f64.to_bits());
        maybe_panic("x");
        maybe_delay("x");
        assert_eq!(config(), None);
    }

    #[test]
    fn rate_one_always_fires_and_rate_zero_never() {
        let _g = LOCK.lock().unwrap();
        set_for_test(7, 1.0);
        for _ in 0..100 {
            assert!(should_fire("always"));
        }
        set_for_test(7, 0.0);
        for _ in 0..100 {
            assert!(!should_fire("never"));
        }
        clear();
    }

    #[test]
    fn schedule_replays_under_same_seed() {
        let _g = LOCK.lock().unwrap();
        set_for_test(42, 0.3);
        let a: Vec<bool> = (0..200).map(|_| should_fire("replay.site")).collect();
        set_for_test(42, 0.3);
        let b: Vec<bool> = (0..200).map(|_| should_fire("replay.site")).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "rate 0.3 fired nothing in 200 draws");
        assert!(!a.iter().all(|&x| x), "rate 0.3 fired everything");
        clear();
    }

    #[test]
    fn seeds_decorrelate() {
        let _g = LOCK.lock().unwrap();
        set_for_test(1, 0.5);
        let a: Vec<bool> = (0..200).map(|_| should_fire("seed.site")).collect();
        set_for_test(2, 0.5);
        let b: Vec<bool> = (0..200).map(|_| should_fire("seed.site")).collect();
        assert_ne!(a, b);
        clear();
    }

    #[test]
    fn poison_produces_non_finite_or_huge() {
        let _g = LOCK.lock().unwrap();
        set_for_test(11, 1.0);
        let mut kinds = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let v = poison_f64("poison.site", 0.25);
            assert!(v.is_nan() || v.is_infinite() || v.abs() >= 1e308);
            kinds.insert(if v.is_nan() {
                "nan"
            } else if v == f64::INFINITY {
                "+inf"
            } else if v == f64::NEG_INFINITY {
                "-inf"
            } else {
                "huge"
            });
        }
        assert!(kinds.len() >= 3, "poisons not diverse: {kinds:?}");
        clear();
    }

    #[test]
    fn injected_panic_carries_site() {
        let _g = LOCK.lock().unwrap();
        set_for_test(3, 1.0);
        let err = std::panic::catch_unwind(|| maybe_panic("par.task")).unwrap_err();
        clear();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("par.task"), "panic message {msg:?}");
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(parse_spec("42:0.2"), Ok((42, 0.2)));
        assert_eq!(parse_spec("7"), Ok((7, DEFAULT_RATE)));
        assert!(parse_spec("x:0.2").is_err());
        assert!(parse_spec("42:1.5").is_err());
        assert!(parse_spec("42:nan").is_err());
    }
}
