//! Results directory resolution.

use std::path::PathBuf;

/// The directory experiment binaries write CSV/SVG artifacts to:
/// `$FEPIA_RESULTS` if set, else `./results`. Created if missing.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("FEPIA_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    crate::or_fail!(std::fs::create_dir_all(&dir), "create results directory");
    dir
}

/// Parses an optional `--seed N` / `--mappings N` style flag from argv.
pub fn arg_value(name: &str) -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_created() {
        // Use a scratch location to avoid touching ./results during tests.
        let scratch = std::env::temp_dir().join("fepia_results_test");
        std::env::set_var("FEPIA_RESULTS", &scratch);
        let dir = results_dir();
        assert!(dir.exists());
        std::env::remove_var("FEPIA_RESULTS");
        let _ = std::fs::remove_dir_all(scratch);
    }

    #[test]
    fn missing_flag_is_none() {
        assert_eq!(arg_value("--definitely-not-passed"), None);
    }
}
