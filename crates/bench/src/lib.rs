//! `fepia-bench` — experiment harness for the paper's evaluation section.
//!
//! One binary per table/figure (see `DESIGN.md` §4):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1` | the robustness-radius concept illustration |
//! | `fig2` | the HiPer-D DAG model drawing |
//! | `fig3` | robustness vs makespan, 1000 mappings (§4.2), plus the load-balance-index variant and the `S₁(x)` cluster-line analysis |
//! | `fig4` | robustness vs slack, 1000 mappings (§4.3) |
//! | `table2` | near-equal-slack mapping pairs with large robustness ratios |
//!
//! The sweep logic lives here (in [`fig3data`] and [`fig4data`]) so the
//! workspace integration tests can run scaled-down versions of every
//! experiment; the binaries add CSV/SVG output ([`csvout`], `fepia-plot`)
//! and console summaries.

pub mod csvout;
pub mod fatal;
pub mod fig3data;
pub mod fig4data;
pub mod outdir;
pub mod telemetry;
