//! The §4.3 sweep behind Fig. 4 and Table 2.
//!
//! A calibrated random HiPer-D system (3 sensors at the paper's rates,
//! 3 actuators, 20 applications, ≈19 paths, λ_orig = (962, 380, 240)) is
//! evaluated over 1000 random mappings; each mapping gets its system-wide
//! percentage slack and its load-robustness metric (Eq. 11).

use fepia_core::RadiusOptions;
use fepia_hiperd::path::enumerate_paths;
use fepia_hiperd::robustness::compile_load_analysis;
use fepia_hiperd::slack::system_slack_with_paths;
use fepia_hiperd::{generate_system, GenParams, HiperdMapping, HiperdSystem};
use fepia_par::{par_map_dynamic, ParConfig};
use fepia_stats::{pearson, rng_for};

/// Configuration of the Fig. 4 / Table 2 sweep.
#[derive(Clone, Debug)]
pub struct Fig4Config {
    /// Master RNG seed (system uses stream 0; mapping `i` uses `i+1`).
    pub seed: u64,
    /// Number of random mappings (1000 in the paper).
    pub mappings: usize,
    /// System generation parameters.
    pub gen: GenParams,
}

impl Fig4Config {
    /// The paper's §4.3 configuration.
    pub fn paper(seed: u64) -> Self {
        Fig4Config {
            seed,
            mappings: 1_000,
            gen: GenParams::paper_section_4_3(),
        }
    }
}

/// One evaluated mapping.
#[derive(Clone, Debug)]
pub struct Fig4Point {
    /// Index of the mapping in the sweep.
    pub index: usize,
    /// System-wide percentage slack at `λ_orig`.
    pub slack: f64,
    /// Raw robustness metric (Euclidean objects/data-set).
    pub robustness: f64,
    /// Floored metric (loads are integral).
    pub floored: f64,
    /// Name of the binding constraint.
    pub binding: String,
    /// The boundary loads `λ*`, when available.
    pub lambda_star: Option<Vec<f64>>,
    /// The mapping itself.
    pub mapping: HiperdMapping,
}

/// The sweep output.
#[derive(Debug)]
pub struct Fig4Data {
    /// The generated system.
    pub system: HiperdSystem,
    /// One point per mapping.
    pub points: Vec<Fig4Point>,
}

/// Runs the sweep (dynamic parallel scheduling: radius cost varies with the
/// binding structure).
pub fn run(config: &Fig4Config) -> Fig4Data {
    let system = generate_system(&mut rng_for(config.seed, 0), &config.gen);
    let paths = enumerate_paths(&system);
    let indices: Vec<usize> = (0..config.mappings).collect();
    let sys_ref = &system;
    let paths_ref = &paths;
    let opts = RadiusOptions::default();
    let points = par_map_dynamic(&indices, &ParConfig::default(), move |_, &i| {
        let mapping = HiperdMapping::random(
            &mut rng_for(config.seed, i as u64 + 1),
            sys_ref.n_apps,
            sys_ref.n_machines,
        );
        let slack = system_slack_with_paths(sys_ref, &mapping, paths_ref);
        // Compiled path: constraints depend on the mapping, so each item
        // compiles once; evaluation then runs the allocation-lean plan.
        let rob = compile_load_analysis(sys_ref, &mapping, paths_ref, &opts)
            .and_then(|compiled| compiled.evaluate())
            .expect("calibrated systems are well-posed");
        Fig4Point {
            index: i,
            slack,
            robustness: rob.metric,
            floored: rob.floored,
            binding: rob.binding,
            lambda_star: rob.lambda_star.map(|v| v.into_inner()),
            mapping,
        }
    });
    Fig4Data { system, points }
}

/// Pearson correlation between robustness and slack over the feasible
/// (slack > 0) mappings.
pub fn robustness_slack_correlation(data: &Fig4Data) -> Option<f64> {
    let feasible: Vec<&Fig4Point> = data.points.iter().filter(|p| p.slack > 0.0).collect();
    if feasible.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = feasible.iter().map(|p| p.slack).collect();
    let ys: Vec<f64> = feasible.iter().map(|p| p.robustness).collect();
    pearson(&xs, &ys)
}

/// A Table-2-style pair: two near-equal-slack mappings with very different
/// robustness.
#[derive(Clone, Debug)]
pub struct Table2Pair {
    /// Index (into the sweep) of the less robust mapping A.
    pub a: usize,
    /// Index of the more robust mapping B.
    pub b: usize,
    /// |slack_A − slack_B|.
    pub slack_gap: f64,
    /// robustness_B / robustness_A (≥ 1).
    pub ratio: f64,
}

/// Finds the feasible pair maximizing the robustness ratio subject to a
/// slack gap of at most `max_slack_gap` (the paper's pair differs by
/// ≈ 0.005 in slack and ≈ 3.3× in robustness).
pub fn best_table2_pair(data: &Fig4Data, max_slack_gap: f64) -> Option<Table2Pair> {
    // Sort feasible points by slack; candidate pairs are slack-neighbors
    // within the gap, so a sorted sweep finds the global optimum in
    // O(n·k) where k is the window width.
    let mut feasible: Vec<&Fig4Point> = data
        .points
        .iter()
        .filter(|p| p.slack > 0.0 && p.robustness.is_finite() && p.robustness > 0.0)
        .collect();
    feasible.sort_by(|a, b| a.slack.partial_cmp(&b.slack).expect("slack is never NaN"));
    let mut best: Option<Table2Pair> = None;
    for i in 0..feasible.len() {
        for j in (i + 1)..feasible.len() {
            let gap = feasible[j].slack - feasible[i].slack;
            if gap > max_slack_gap {
                break;
            }
            let (lo, hi) = if feasible[i].robustness <= feasible[j].robustness {
                (feasible[i], feasible[j])
            } else {
                (feasible[j], feasible[i])
            };
            let ratio = hi.robustness / lo.robustness;
            if best.as_ref().is_none_or(|b| ratio > b.ratio) {
                best = Some(Table2Pair {
                    a: lo.index,
                    b: hi.index,
                    slack_gap: gap,
                    ratio,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig4Data {
        run(&Fig4Config {
            mappings: 150,
            ..Fig4Config::paper(7)
        })
    }

    #[test]
    fn sweep_shape() {
        let d = small();
        assert_eq!(d.points.len(), 150);
        for p in &d.points {
            assert!(p.robustness >= 0.0);
            assert!(p.floored <= p.robustness);
            assert!(!p.binding.is_empty());
        }
    }

    #[test]
    fn mostly_feasible_and_correlated() {
        let d = small();
        let feasible = d.points.iter().filter(|p| p.slack > 0.0).count();
        assert!(feasible > 90, "only {feasible}/150 feasible");
        let r = robustness_slack_correlation(&d).unwrap();
        assert!(r > 0.3, "robustness–slack correlation too weak: {r}");
    }

    #[test]
    fn zero_slack_means_zero_robustness_direction() {
        // A violated mapping (negative slack) must have robustness 0.
        let d = small();
        for p in &d.points {
            if p.slack < 0.0 {
                assert_eq!(p.robustness, 0.0, "violated mapping with ρ > 0");
            }
        }
    }

    #[test]
    fn table2_pair_exists_with_large_ratio() {
        let d = small();
        let pair = best_table2_pair(&d, 0.01).expect("a pair exists");
        assert!(pair.slack_gap <= 0.01);
        assert!(
            pair.ratio >= 1.5,
            "best near-equal-slack ratio only {}",
            pair.ratio
        );
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        for (pa, pb) in a.points.iter().zip(b.points.iter()) {
            assert_eq!(pa.robustness, pb.robustness);
            assert_eq!(pa.slack, pb.slack);
        }
    }
}
