//! Run telemetry for the figure binaries.
//!
//! Every figure run writes two JSON documents next to its CSV/SVG outputs:
//! a `RunManifest` describing the run (binary, parameters, output files) and
//! a snapshot of the global `fepia-obs` metrics registry. A results
//! directory is therefore self-describing: which command produced it, with
//! which seed, and what the solver/dispatch/parallelism counters looked
//! like. When `FEPIA_OBS` names a path, the structured event stream lands
//! there as JSON lines as well.

use fepia_obs::RunManifest;
use std::path::Path;

/// Writes `<stem>_manifest.json` and `<stem>_metrics.json` into `dir` and
/// flushes any installed event sink. Failures are reported, not fatal — a
/// figure run must not die on telemetry I/O.
pub fn write_run_telemetry(dir: &Path, stem: &str, manifest: &RunManifest) {
    let manifest_path = dir.join(format!("{stem}_manifest.json"));
    if let Err(err) = manifest.write_to(&manifest_path) {
        eprintln!("warning: cannot write {}: {err}", manifest_path.display());
    }
    let metrics_path = dir.join(format!("{stem}_metrics.json"));
    let json = fepia_obs::global().snapshot().to_json();
    if let Err(err) = std::fs::write(&metrics_path, json + "\n") {
        eprintln!("warning: cannot write {}: {err}", metrics_path.display());
    }
    fepia_obs::flush_sink();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_files_are_written() {
        let dir = std::env::temp_dir().join("fepia-bench-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = RunManifest::new("test").param("seed", 7u64).output("x.csv");
        write_run_telemetry(&dir, "test", &manifest);
        let m = std::fs::read_to_string(dir.join("test_manifest.json")).unwrap();
        assert!(m.contains("\"schema\":\"fepia.manifest/v1\""));
        let s = std::fs::read_to_string(dir.join("test_metrics.json")).unwrap();
        assert!(s.contains("\"schema\":\"fepia.metrics/v1\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
