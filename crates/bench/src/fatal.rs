//! Fatal-exit handling for the experiment binaries.
//!
//! The drivers are batch programs: on an unrecoverable error (unwritable
//! results directory, a sweep that produced no usable data) the right move
//! is a diagnostic naming the failing call site and a non-zero exit, not a
//! panic with a backtrace pointing into library code. [`OrFail`] replaces
//! the `.expect("write CSV")` pattern: [`or_fail!`] captures `file!()` /
//! `line!()` at the call site and routes the error text to stderr.

use std::fmt::Display;

/// Exit code used by the experiment binaries for unrecoverable errors.
pub const FATAL_EXIT_CODE: i32 = 2;

/// Formats the diagnostic printed before a fatal exit.
pub fn fatal_message(context: &str, detail: Option<&str>, file: &str, line: u32) -> String {
    match detail {
        Some(d) => format!("fatal: {context} at {file}:{line}: {d}"),
        None => format!("fatal: {context} at {file}:{line}"),
    }
}

/// Extension trait unwrapping `Result`/`Option` with a call-site diagnostic
/// and a clean process exit instead of a panic. Use via [`or_fail!`].
pub trait OrFail<T> {
    /// The error detail this carrier reports, if any.
    fn fail_detail(&self) -> Option<String>;
    /// The success value, if present.
    fn into_ok(self) -> Option<T>;

    /// Unwraps, or prints `fatal: <context> at <file>:<line>[: <error>]` to
    /// stderr and exits with [`FATAL_EXIT_CODE`].
    fn or_fail_at(self, context: &str, file: &str, line: u32) -> T
    where
        Self: Sized,
    {
        let detail = self.fail_detail();
        match self.into_ok() {
            Some(v) => v,
            None => {
                eprintln!("{}", fatal_message(context, detail.as_deref(), file, line));
                std::process::exit(FATAL_EXIT_CODE);
            }
        }
    }
}

impl<T, E: Display> OrFail<T> for Result<T, E> {
    fn fail_detail(&self) -> Option<String> {
        self.as_ref().err().map(|e| e.to_string())
    }

    fn into_ok(self) -> Option<T> {
        self.ok()
    }
}

impl<T> OrFail<T> for Option<T> {
    fn fail_detail(&self) -> Option<String> {
        None
    }

    fn into_ok(self) -> Option<T> {
        self
    }
}

/// Unwraps a `Result`/`Option`, exiting the process with a diagnostic that
/// names this call site on failure: `or_fail!(csv.save(&path), "write CSV")`.
#[macro_export]
macro_rules! or_fail {
    ($expr:expr, $context:expr) => {
        $crate::fatal::OrFail::or_fail_at($expr, $context, file!(), line!())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_includes_site_and_detail() {
        let m = fatal_message("write CSV", Some("permission denied"), "bin/fig3.rs", 53);
        assert_eq!(m, "fatal: write CSV at bin/fig3.rs:53: permission denied");
        let m = fatal_message("a pair exists", None, "bin/table2.rs", 89);
        assert_eq!(m, "fatal: a pair exists at bin/table2.rs:89");
    }

    #[test]
    fn success_values_pass_through() {
        let r: Result<u32, std::io::Error> = Ok(7);
        assert_eq!(or_fail!(r, "never fires"), 7);
        assert_eq!(or_fail!(Some("x"), "never fires"), "x");
    }

    #[test]
    fn detail_extraction() {
        let r: Result<(), String> = Err("boom".into());
        assert_eq!(r.fail_detail().as_deref(), Some("boom"));
        let o: Option<()> = None;
        assert_eq!(o.fail_detail(), None);
    }
}
