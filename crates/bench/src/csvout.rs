//! A tiny CSV writer (no external crate; fields are numbers and simple
//! identifiers, so quoting only handles commas and quotes).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An in-memory CSV table with a fixed header.
#[derive(Clone, Debug)]
pub struct CsvTable {
    columns: usize,
    body: String,
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl CsvTable {
    /// Creates a table with the given header.
    ///
    /// # Panics
    /// Panics on an empty header.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "CSV needs at least one column");
        let mut body = String::new();
        let _ = writeln!(
            body,
            "{}",
            header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        CsvTable {
            columns: header.len(),
            body,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header.
    pub fn row(&mut self, fields: &[String]) {
        assert_eq!(
            fields.len(),
            self.columns,
            "row has {} fields, header has {}",
            fields.len(),
            self.columns
        );
        let _ = writeln!(
            self.body,
            "{}",
            fields
                .iter()
                .map(|f| quote(f))
                .collect::<Vec<_>>()
                .join(",")
        );
    }

    /// The rendered CSV text.
    pub fn render(&self) -> &str {
        &self.body
    }

    /// Writes the table to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, &self.body)
    }
}

/// Formats an `f64` for CSV (6 significant-ish digits, `inf` spelled out).
pub fn num(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "inf".into()
        } else {
            "-inf".into()
        }
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["x,y".into(), "q\"z".into()]);
        let text = t.render();
        assert!(text.starts_with("a,b\n"));
        assert!(text.contains("1,2\n"));
        assert!(text.contains("\"x,y\",\"q\"\"z\"\n"));
    }

    #[test]
    #[should_panic(expected = "fields")]
    fn rejects_ragged_row() {
        let mut t = CsvTable::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(1.5), "1.500000");
        assert_eq!(num(f64::INFINITY), "inf");
        assert_eq!(num(f64::NEG_INFINITY), "-inf");
    }
}
