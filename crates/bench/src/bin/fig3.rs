//! Regenerates **Fig. 3**: robustness against makespan for 1000 randomly
//! generated mappings (§4.2), plus the robustness-against-load-balance-index
//! plot the paper mentions but does not show, plus the `S₁(x)` cluster-line
//! analysis explaining the figure's straight-line groups.
//!
//! Outputs: `results/fig3_robustness_vs_makespan.svg`,
//! `results/fig3b_robustness_vs_lbi.svg`, `results/fig3_points.csv`,
//! `results/fig3_clusters.csv`, and a console summary recorded in
//! `EXPERIMENTS.md`.

use fepia_bench::csvout::{num, CsvTable};
use fepia_bench::fig3data::{
    robustness_makespan_correlation, run, s1_cluster_fits, s1_theory_slope, Fig3Config,
};
use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_plot::{Chart, Series};
use fepia_stats::{pearson, Summary};

fn main() {
    // Experiment harness: always collect run metrics for the telemetry
    // snapshot. Events stay opt-in via FEPIA_OBS=<path>.
    fepia_obs::set_enabled(true);
    let seed = arg_value("--seed").unwrap_or(2003);
    let mappings = arg_value("--mappings").unwrap_or(1_000) as usize;
    let config = Fig3Config {
        mappings,
        ..Fig3Config::paper(seed)
    };
    let data = run(&config);
    let dir = results_dir();

    // --- CSV: every point. ---
    let mut csv = CsvTable::new(&[
        "index",
        "makespan",
        "load_balance_index",
        "robustness",
        "makespan_machine_occupancy",
        "max_occupancy",
        "in_s1",
    ]);
    for p in &data.points {
        csv.row(&[
            p.index.to_string(),
            num(p.makespan),
            num(p.load_balance_index),
            num(p.robustness),
            p.makespan_machine_occupancy.to_string(),
            p.max_occupancy.to_string(),
            p.in_s1.to_string(),
        ]);
    }
    or_fail!(csv.save(dir.join("fig3_points.csv")), "write CSV");

    // --- SVG: the Fig. 3 scatter. ---
    let cloud: Vec<(f64, f64)> = data
        .points
        .iter()
        .map(|p| (p.makespan, p.robustness))
        .collect();
    let mut chart = Chart::new(
        format!("Fig. 3 — robustness vs makespan ({mappings} random mappings, τ = 1.2)"),
        "makespan (s)",
        "robustness (s)",
    );
    chart.add(Series::points("mappings", cloud));
    or_fail!(
        chart
            .render(760.0, 560.0)
            .save(dir.join("fig3_robustness_vs_makespan.svg")),
        "write SVG"
    );

    // --- SVG: the "not shown" LBI variant. ---
    let lbi_cloud: Vec<(f64, f64)> = data
        .points
        .iter()
        .map(|p| (p.load_balance_index, p.robustness))
        .collect();
    let mut chart_b = Chart::new(
        "Fig. 3b — robustness vs load balance index (plot the paper describes but omits)",
        "load balance index",
        "robustness (s)",
    );
    chart_b.add(Series::points("mappings", lbi_cloud));
    or_fail!(
        chart_b
            .render(760.0, 560.0)
            .save(dir.join("fig3b_robustness_vs_lbi.svg")),
        "write SVG"
    );

    // --- SVG: robustness distribution histogram. ---
    let hist = fepia_stats::Histogram::of(
        &data.points.iter().map(|p| p.robustness).collect::<Vec<_>>(),
        12,
    );
    let mut hist_chart = fepia_plot::BarChart::new(
        "Fig. 3 supplement — distribution of the robustness metric over the sweep",
        "mappings",
    );
    for (i, &count) in hist.counts().iter().enumerate() {
        let (a, b) = hist.bin_range(i);
        hist_chart.add(format!("{:.0}–{:.0}", a, b), count as f64);
    }
    or_fail!(
        hist_chart
            .render(760.0, 420.0)
            .save(dir.join("fig3_robustness_hist.svg")),
        "write SVG"
    );

    // --- Cluster analysis (the straight lines of Fig. 3). ---
    let fits = s1_cluster_fits(&data);
    let mut cluster_csv = CsvTable::new(&[
        "occupancy_x",
        "points",
        "fitted_slope",
        "theory_slope",
        "fitted_intercept",
        "r2",
    ]);
    println!("Fig. 3 (seed {seed}, {mappings} mappings)");
    println!("  S1(x) cluster lines (robustness = slope × makespan):");
    for (x, (fit, n)) in &fits {
        let theory = s1_theory_slope(data.tau, *x);
        println!(
            "    x = {x:>2}: {n:>4} mappings, slope {:.5} (theory {:.5}), r² = {:.6}",
            fit.slope, theory, fit.r2
        );
        cluster_csv.row(&[
            x.to_string(),
            n.to_string(),
            num(fit.slope),
            num(theory),
            num(fit.intercept),
            num(fit.r2),
        ]);
    }
    or_fail!(cluster_csv.save(dir.join("fig3_clusters.csv")), "write CSV");

    // --- Console summary (the claims EXPERIMENTS.md records). ---
    let r = robustness_makespan_correlation(&data).unwrap_or(f64::NAN);
    let lbi_r = pearson(
        &data
            .points
            .iter()
            .map(|p| p.load_balance_index)
            .collect::<Vec<_>>(),
        &data.points.iter().map(|p| p.robustness).collect::<Vec<_>>(),
    )
    .unwrap_or(f64::NAN);
    let outliers = data.points.iter().filter(|p| !p.in_s1).count();
    let rob = Summary::of(&data.points.iter().map(|p| p.robustness).collect::<Vec<_>>());
    let mk = Summary::of(&data.points.iter().map(|p| p.makespan).collect::<Vec<_>>());
    println!("  robustness–makespan Pearson r = {r:.4}");
    println!("  robustness–LBI Pearson r      = {lbi_r:.4}");
    println!(
        "  makespan ∈ [{:.1}, {:.1}] (mean {:.1}); robustness ∈ [{:.2}, {:.2}] (mean {:.2})",
        mk.min, mk.max, mk.mean, rob.min, rob.max, rob.mean
    );
    println!(
        "  S2−S1 outliers (makespan machine ≠ max occupancy): {outliers} / {}",
        data.points.len()
    );

    // Vertical-spread check: similar makespans, very different robustness.
    let mut sorted: Vec<&fepia_bench::fig3data::Fig3Point> = data.points.iter().collect();
    sorted.sort_by(|a, b| a.makespan.total_cmp(&b.makespan));
    let mut best_ratio: f64 = 1.0;
    for w in sorted.windows(8) {
        let lo = w.iter().map(|p| p.robustness).fold(f64::INFINITY, f64::min);
        let hi = w.iter().map(|p| p.robustness).fold(0.0, f64::max);
        if lo > 0.0 && (w[7].makespan - w[0].makespan) / w[0].makespan < 0.01 {
            best_ratio = best_ratio.max(hi / lo);
        }
    }
    println!("  sharpest same-makespan (±1%) robustness difference: {best_ratio:.2}×");
    println!("  wrote fig3_robustness_vs_makespan.svg, fig3b_robustness_vs_lbi.svg, fig3_robustness_hist.svg, fig3_points.csv, fig3_clusters.csv in {}", dir.display());

    // --- Run telemetry: manifest + metrics snapshot next to the outputs. ---
    let manifest = fepia_obs::RunManifest::new("fig3")
        .param("seed", seed)
        .param("mappings", mappings)
        .param("tau", data.tau)
        .output("fig3_points.csv")
        .output("fig3_clusters.csv")
        .output("fig3_robustness_vs_makespan.svg")
        .output("fig3b_robustness_vs_lbi.svg")
        .output("fig3_robustness_hist.svg");
    fepia_bench::telemetry::write_run_telemetry(&dir, "fig3", &manifest);
}
