//! Regenerates **Fig. 1**: the possible directions of increase of a
//! 2-element perturbation parameter, the boundary curve
//! `{π | f(π) = β^max}`, and the closest boundary point `π*` whose distance
//! to `π_orig` is the robustness radius.
//!
//! The paper's figure is conceptual; we instantiate it with a concrete
//! convex impact function `f(π) = π₁² / 40 + π₂` (mixing a quadratic and a
//! linear term so the boundary visibly curves), β^max = 8, and
//! π_orig = (2, 1), then solve Eq. 1 numerically with the same machinery
//! the experiments use.
//!
//! Output: `results/fig1_radius_concept.svg` plus a console summary.

use fepia_bench::{or_fail, outdir::results_dir};
use fepia_core::{FeatureSpec, FnImpact, Perturbation, RadiusOptions, Tolerance};
use fepia_optim::VecN;
use fepia_plot::{Chart, Series};

fn main() {
    let beta_max = 8.0;
    let origin = VecN::from([2.0, 1.0]);

    let f = |v: &VecN| v[0] * v[0] / 40.0 + v[1];
    let impact = FnImpact::new(f).with_dim(2);
    // As in the paper's figure, the β^min boundary is the coordinate axes;
    // only the β^max curve is interesting, so the tolerance is upper-only.
    let feature = FeatureSpec::new("φ_i", Tolerance::upper(beta_max));
    let pert = Perturbation::continuous("π_j", origin.clone());
    let result = or_fail!(
        fepia_core::radius::robustness_radius(&feature, &impact, &pert, &RadiusOptions::default()),
        "well-posed concept instance"
    );
    let star = or_fail!(
        result.boundary_point.clone(),
        "reachable boundary has a witness point"
    );

    println!("Fig. 1 concept instance");
    println!("  f(π) = π₁²/40 + π₂,  β^max = {beta_max},  π_orig = (2, 1)");
    println!(
        "  robustness radius r_μ(φ_i, π_j) = {:.4}  (method {:?})",
        result.radius, result.method
    );
    println!(
        "  closest boundary point π* = ({:.4}, {:.4})",
        star[0], star[1]
    );

    // Boundary curve: π₂ = β − π₁²/40 for π₁ ∈ [0, √(40β)].
    let max_x = (40.0 * beta_max).sqrt();
    let curve: Vec<(f64, f64)> = (0..=200)
        .map(|k| {
            let x = k as f64 / 200.0 * max_x;
            (x, beta_max - x * x / 40.0)
        })
        .collect();

    // The radius circle around π_orig (the "possible directions" disk rim).
    let circle: Vec<(f64, f64)> = (0..=120)
        .map(|k| {
            let a = k as f64 / 120.0 * std::f64::consts::TAU;
            (
                origin[0] + result.radius * a.cos(),
                origin[1] + result.radius * a.sin(),
            )
        })
        .collect();

    let mut chart = Chart::new(
        "Fig. 1 — boundary curve, perturbation disk, and the closest point π*",
        "π_j1",
        "π_j2",
    );
    chart.add(Series::line("f(π) = β^max", curve));
    chart.add(Series::line("radius disk rim", circle));
    chart.add(Series::points("π_orig", vec![(origin[0], origin[1])]));
    chart.add(Series::points("π*", vec![(star[0], star[1])]));

    let out = results_dir().join("fig1_radius_concept.svg");
    or_fail!(chart.render(720.0, 540.0).save(&out), "write SVG");
    println!("  wrote {}", out.display());
}
