//! Extension sweep: how the §4.2 robustness metric scales with the
//! makespan tolerance τ.
//!
//! Eq. 6 predicts exact linearity for each mapping:
//! `ρ(τ) = (τ·M − F_b)/√n_b` is affine in τ as long as the binding machine
//! `b` stays the same — and the binding machine *can* switch as τ grows
//! (the `τM − F_j` spread grows while the √n_j weights stay fixed), making
//! ρ(τ) piecewise linear and concave. This sweep measures ρ(τ) for a
//! sample of mappings and reports where binding switches happen.
//!
//! Output: `results/sweep_tau.csv` + `results/sweep_tau.svg`.

use fepia_bench::csvout::{num, CsvTable};
use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::{makespan_robustness, Mapping};
use fepia_plot::{Chart, Series};
use fepia_stats::rng_for;

fn main() {
    let seed = arg_value("--seed").unwrap_or(2003);
    let params = EtcParams::paper_section_4_2();
    let etc = generate_cvb(&mut rng_for(seed, 0), &params);
    let taus: Vec<f64> = (0..=40).map(|k| 1.0 + 0.02 * k as f64).collect();
    let n_mappings = 6;

    let mut csv = CsvTable::new(&["mapping", "tau", "metric", "binding_machine"]);
    let mut chart = Chart::new(
        "Extension — ρ(τ): piecewise-linear, concave growth with the tolerance",
        "tolerance τ",
        "robustness ρ (s)",
    );
    println!("ρ(τ) sweep (seed {seed}, {n_mappings} random mappings, τ ∈ [1.0, 1.8])");

    for m_idx in 0..n_mappings {
        let mapping = Mapping::random(
            &mut rng_for(seed, m_idx as u64 + 1),
            params.apps,
            params.machines,
        );
        let mut pts = Vec::new();
        let mut bindings = Vec::new();
        for &tau in &taus {
            let rob = or_fail!(makespan_robustness(&mapping, &etc, tau), "τ ≥ 1");
            csv.row(&[
                m_idx.to_string(),
                num(tau),
                num(rob.metric),
                rob.binding_machine.to_string(),
            ]);
            pts.push((tau, rob.metric));
            bindings.push(rob.binding_machine);
        }
        let switches = bindings.windows(2).filter(|w| w[0] != w[1]).count();
        println!(
            "  mapping {m_idx}: ρ(1.0) = {:.3} → ρ(1.8) = {:.3}, binding-machine switches: {switches}",
            or_fail!(pts.first(), "nonempty").1,
            or_fail!(pts.last(), "nonempty").1
        );
        chart.add(Series::line(format!("mapping {m_idx}"), pts));

        // Concavity check: piecewise-linear min of affine functions.
        let ys: Vec<f64> = taus
            .iter()
            .map(|&t| or_fail!(makespan_robustness(&mapping, &etc, t), "τ ≥ 1").metric)
            .collect();
        for w in ys.windows(3) {
            assert!(
                w[1] >= (w[0] + w[2]) / 2.0 - 1e-9,
                "ρ(τ) not concave for mapping {m_idx}"
            );
        }
    }

    let dir = results_dir();
    or_fail!(csv.save(dir.join("sweep_tau.csv")), "write CSV");
    or_fail!(
        chart.render(760.0, 560.0).save(dir.join("sweep_tau.svg")),
        "write SVG"
    );
    println!("wrote sweep_tau.csv, sweep_tau.svg in {}", dir.display());
}
