//! Regenerates **Fig. 2**: the DAG model for the applications (circles) and
//! data transfers (arrows), with sensors as diamonds and actuators as
//! rectangles — drawn for a generated §4.3-scale system (the paper's exact
//! topology is unpublished; see DESIGN.md).
//!
//! Output: `results/fig2_dag_model.svg`, plus the enumerated path listing
//! (trigger/update) on the console.

use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_hiperd::dag::topological_order;
use fepia_hiperd::path::{enumerate_paths, Terminal};
use fepia_hiperd::{generate_system, GenParams, Node};
use fepia_plot::{DagLayer, DagNodeKind, DagPlot};
use fepia_stats::rng_for;

fn main() {
    let seed = arg_value("--seed").unwrap_or(2003);
    let sys = generate_system(&mut rng_for(seed, 0), &GenParams::paper_section_4_3());
    let paths = enumerate_paths(&sys);

    println!(
        "Fig. 2 system (seed {seed}): {} sensors, {} applications, {} actuators, {} paths",
        sys.n_sensors(),
        sys.n_apps,
        sys.n_actuators,
        paths.len()
    );
    for (k, p) in paths.iter().enumerate() {
        let kind = match p.terminal {
            Terminal::Actuator(t) => format!("trigger → act{t}"),
            Terminal::UpdateApp(i) => format!("update → a{i}"),
            Terminal::DeadEnd => "dead-end".to_string(),
        };
        let apps: Vec<String> = p.apps.iter().map(|i| format!("a{i}")).collect();
        println!("  P_{k:<2} s{} → {} ({kind})", p.sensor, apps.join(" → "));
    }

    // Node ids: sensors 0..S, apps S..S+A, actuators S+A...
    let s = sys.n_sensors();
    let app_id = |i: usize| s + i;
    let act_id = |t: usize| s + sys.n_apps + t;

    // Layer applications by longest-path depth from the sensors.
    let mut depth = vec![0usize; sys.n_apps];
    for i in topological_order(&sys) {
        for p in sys.successors(i) {
            depth[p] = depth[p].max(depth[i] + 1);
        }
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);

    let mut layers = Vec::new();
    layers.push(DagLayer {
        nodes: (0..s)
            .map(|z| (format!("s{z}"), DagNodeKind::Sensor, z))
            .collect(),
    });
    for d in 0..=max_depth {
        layers.push(DagLayer {
            nodes: (0..sys.n_apps)
                .filter(|&i| depth[i] == d)
                .map(|i| (format!("a{i}"), DagNodeKind::App, app_id(i)))
                .collect(),
        });
    }
    layers.push(DagLayer {
        nodes: (0..sys.n_actuators)
            .map(|t| (format!("act{t}"), DagNodeKind::Actuator, act_id(t)))
            .collect(),
    });

    let to_id = |n: Node| match n {
        Node::Sensor(z) => z,
        Node::App(i) => app_id(i),
        Node::Actuator(t) => act_id(t),
    };
    let edges: Vec<(usize, usize)> = sys
        .edges
        .iter()
        .map(|e| (to_id(e.from), to_id(e.to)))
        .collect();

    let plot = DagPlot {
        title: format!(
            "Fig. 2 — HiPer-D DAG model ({} paths; diamonds: sensors, circles: apps, rectangles: actuators)",
            paths.len()
        ),
        layers,
        edges,
    };
    let out = results_dir().join("fig2_dag_model.svg");
    or_fail!(plot.render(1100.0, 640.0).save(&out), "write SVG");
    println!("wrote {}", out.display());
}
