//! Large-scale Monte-Carlo validation of the robustness guarantee
//! (failure injection), for both example systems.
//!
//! §3.1's interpretation of Eq. 7: errors with `‖e‖₂ ≤ ρ` never push the
//! makespan past `τ·M_orig`; §3.2's Eq. 11 makes the analogous promise for
//! loads. This binary hammers both claims: thousands of random inside-
//! radius injections per instance must produce **zero** violations, and a
//! probe just beyond the binding boundary must always violate.
//!
//! Output: console summary + `results/validate.csv`.

use fepia_bench::csvout::{num, CsvTable};
use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_core::RadiusOptions;
use fepia_etc::{generate_cvb, EtcParams};
use fepia_hiperd::path::enumerate_paths;
use fepia_hiperd::robustness::{build_constraints, load_robustness_with_paths};
use fepia_hiperd::{generate_system, GenParams, HiperdMapping};
use fepia_mapping::{validate_radius_guarantee, Mapping};
use fepia_optim::VecN;
use fepia_stats::dist::standard_normal;
use fepia_stats::rng_for;
use rand::Rng;

fn main() {
    let seed = arg_value("--seed").unwrap_or(2003);
    let instances = arg_value("--instances").unwrap_or(50) as usize;
    let trials = arg_value("--trials").unwrap_or(2_000) as usize;
    let mut csv = CsvTable::new(&[
        "system",
        "instance",
        "metric",
        "trials",
        "false_violations",
        "boundary_violates",
    ]);

    // --- §3.1: independent application allocation. ---
    let mut total_trials = 0usize;
    let mut total_false = 0usize;
    let mut probes_ok = 0usize;
    for k in 0..instances {
        let s = seed + k as u64;
        let etc = generate_cvb(&mut rng_for(s, 0), &EtcParams::paper_section_4_2());
        let mapping = Mapping::random(&mut rng_for(s, 1), 20, 5);
        let out = or_fail!(
            validate_radius_guarantee(&mapping, &etc, 1.2, trials, &mut rng_for(s, 2)),
            "valid instance"
        );
        total_trials += out.trials;
        total_false += out.false_violations;
        probes_ok += usize::from(out.boundary_probe_violates);
        csv.row(&[
            "independent".into(),
            k.to_string(),
            num(out.metric),
            out.trials.to_string(),
            out.false_violations.to_string(),
            out.boundary_probe_violates.to_string(),
        ]);
    }
    println!(
        "§3.1 independent allocation: {instances} instances × {trials} injections = {total_trials} trials, \
         {total_false} false violations, {probes_ok}/{instances} boundary probes violated as expected"
    );
    assert_eq!(total_false, 0, "Eq. 7 guarantee failed");
    assert_eq!(probes_ok, instances, "a boundary probe failed to violate");

    // --- §3.2: HiPer-D. ---
    let sys = generate_system(&mut rng_for(seed, 0), &GenParams::paper_section_4_3());
    let paths = enumerate_paths(&sys);
    let opts = RadiusOptions::default();
    let lambda_orig = VecN::new(sys.lambda_orig.clone());
    let mut rng = rng_for(seed, 99);
    let mut hp_trials = 0usize;
    let mut hp_false = 0usize;
    let mut hp_probes = 0usize;
    let mut hp_instances = 0usize;
    for k in 0..instances {
        let mapping = HiperdMapping::random(
            &mut rng_for(seed, 200 + k as u64),
            sys.n_apps,
            sys.n_machines,
        );
        let rob = or_fail!(
            load_robustness_with_paths(&sys, &mapping, &paths, &opts),
            "well-posed"
        );
        if !(rob.metric.is_finite() && rob.metric > 1.0) {
            continue;
        }
        hp_instances += 1;
        let set = build_constraints(&sys, &mapping, &paths);
        let mut false_violations = 0usize;
        for _ in 0..trials {
            let dir: Vec<f64> = (0..sys.n_sensors())
                .map(|_| standard_normal(&mut rng))
                .collect();
            let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                continue;
            }
            let scale = rng.gen_range(0.0..1.0) * rob.metric / norm;
            let lambda = lambda_orig.add_scaled(scale, &VecN::new(dir));
            if set
                .constraints
                .iter()
                .any(|c| c.value(&lambda) > c.bound * (1.0 + 1e-9))
            {
                false_violations += 1;
            }
        }
        let star = or_fail!(rob.lambda_star.clone(), "finite metric has witness");
        let overshoot = lambda_orig.add_scaled(1.005, &(&star - &lambda_orig));
        let probe = set
            .constraints
            .iter()
            .any(|c| c.value(&overshoot) > c.bound);
        hp_trials += trials;
        hp_false += false_violations;
        hp_probes += usize::from(probe);
        csv.row(&[
            "hiperd".into(),
            k.to_string(),
            num(rob.metric),
            trials.to_string(),
            false_violations.to_string(),
            probe.to_string(),
        ]);
    }
    println!(
        "§3.2 HiPer-D: {hp_instances} mappings × {trials} injections = {hp_trials} trials, \
         {hp_false} false violations, {hp_probes}/{hp_instances} boundary probes violated as expected"
    );
    assert_eq!(hp_false, 0, "Eq. 11 guarantee failed");
    assert_eq!(
        hp_probes, hp_instances,
        "a HiPer-D boundary probe failed to violate"
    );

    let dir = results_dir();
    or_fail!(csv.save(dir.join("validate.csv")), "write CSV");
    println!("wrote validate.csv in {}", dir.display());
}
