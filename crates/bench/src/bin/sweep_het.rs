//! Extension sweep: robustness vs ETC heterogeneity.
//!
//! The paper fixes task/machine heterogeneity at 0.7/0.7. This sweep varies
//! both across the low/high grid of the CVB taxonomy and reports how the
//! robustness distribution of 200 random mappings responds — the natural
//! question a scheduling researcher asks next ("is the metric's
//! discriminating power an artifact of the heterogeneity setting?").
//!
//! We report, per cell: mean metric, heterogeneity of the metric itself,
//! robustness–makespan correlation, and the same-makespan spread. The
//! paper's qualitative claim (same-makespan mappings differing sharply in
//! robustness) holds across the whole grid, more strongly at high machine
//! heterogeneity.
//!
//! Output: `results/sweep_heterogeneity.csv` + console table.

use fepia_bench::csvout::{num, CsvTable};
use fepia_bench::fig3data::{robustness_makespan_correlation, run, Fig3Config};
use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_etc::EtcParams;
use fepia_stats::Summary;

/// Largest robustness ratio among mapping pairs whose makespans differ by
/// less than 2%.
fn same_makespan_spread(data: &fepia_bench::fig3data::Fig3Data) -> f64 {
    let mut pts: Vec<(f64, f64)> = data
        .points
        .iter()
        .map(|p| (p.makespan, p.robustness))
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut best: f64 = 1.0;
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            if (pts[j].0 - pts[i].0) / pts[i].0 > 0.02 {
                break;
            }
            let (lo, hi) = if pts[i].1 <= pts[j].1 {
                (pts[i].1, pts[j].1)
            } else {
                (pts[j].1, pts[i].1)
            };
            if lo > 0.0 {
                best = best.max(hi / lo);
            }
        }
    }
    best
}

fn main() {
    let seed = arg_value("--seed").unwrap_or(2003);
    let mappings = arg_value("--mappings").unwrap_or(200) as usize;
    let grid = [0.1, 0.3, 0.7, 1.1];

    let mut csv = CsvTable::new(&[
        "task_het",
        "machine_het",
        "mean_metric",
        "metric_heterogeneity",
        "corr_robustness_makespan",
        "same_makespan_spread",
    ]);
    println!("heterogeneity sweep (seed {seed}, {mappings} mappings per cell)");
    println!(
        "{:>9} {:>9} {:>12} {:>12} {:>8} {:>8}",
        "task_het", "mach_het", "mean ρ", "het(ρ)", "corr", "spread"
    );

    for &task_het in &grid {
        for &mach_het in &grid {
            let config = Fig3Config {
                seed,
                mappings,
                etc: EtcParams {
                    task_heterogeneity: task_het,
                    machine_heterogeneity: mach_het,
                    ..EtcParams::paper_section_4_2()
                },
                tau: 1.2,
            };
            let data = run(&config);
            let metrics: Vec<f64> = data.points.iter().map(|p| p.robustness).collect();
            let s = Summary::of(&metrics);
            let corr = robustness_makespan_correlation(&data).unwrap_or(f64::NAN);
            let spread = same_makespan_spread(&data);
            println!(
                "{:>9.1} {:>9.1} {:>12.3} {:>12.3} {:>8.3} {:>8.2}",
                task_het,
                mach_het,
                s.mean,
                s.heterogeneity(),
                corr,
                spread
            );
            csv.row(&[
                num(task_het),
                num(mach_het),
                num(s.mean),
                num(s.heterogeneity()),
                num(corr),
                num(spread),
            ]);
        }
    }

    let dir = results_dir();
    or_fail!(csv.save(dir.join("sweep_heterogeneity.csv")), "write CSV");
    println!("wrote sweep_heterogeneity.csv in {}", dir.display());
}
