//! RESMETRIC-style resilience report over chaos telemetry.
//!
//! Two modes:
//!
//! * **Soak mode** (no path argument, the CI/bench default): drives a
//!   fixed-seed mixed workload through a real `Service` + `NetServer` over
//!   TCP with full tracing on, alternating clean phases with seeded chaos
//!   bursts (`fepia_chaos::set_for_test` / `clear`, bracketed by
//!   `chaos.burst` marker events). The resulting span stream is written to
//!   `$FEPIA_RESULTS/resilience_trace.jsonl`.
//! * **Replay mode** (`resilience_report path/to/telemetry.jsonl`):
//!   analyzes an existing JSONL stream instead of generating one.
//!
//! Either way the telemetry is folded through [`fepia_obs::analyze`] into
//! the paper-style resilience measures — overall and windowed degraded
//! fraction, worst-case recovery time after a burst, area-under-degradation,
//! per-stage latency percentiles — rendered as
//! `$FEPIA_RESULTS/RESILIENCE.json` with the thresholds embedded, and the
//! process exits non-zero if any threshold is violated (the shape
//! `scripts/check_bench.sh` gates on).

use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia_obs::trace;
use fepia_obs::{
    analyze, AnalyzerConfig, Event, JsonlSink, ResilienceReport, ResilienceThresholds,
};
use fepia_serve::workload::{request, scenario_pool, WorkloadSpec};
use fepia_serve::{Service, ServiceConfig};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Client threads driving each phase.
const CLIENTS: u64 = 4;
/// Requests per phase (clean or burst).
const PHASE_REQUESTS: u64 = 400;
/// Seeded fault bursts in the soak.
const BURSTS: usize = 3;
/// Injection rate during a burst: high enough that every burst degrades
/// some verdicts (`worker_attempts: 1` turns injected worker panics into
/// `Failed`), low enough that the retry budget always recovers transport
/// faults.
const CHAOS_RATE: f64 = 0.05;

/// The gate. Generous against scheduling noise — the soak's expected
/// degraded fraction is ≈ `CHAOS_RATE` scaled by the burst duty cycle
/// (~0.02 overall), recovery ends with the burst's in-flight tail, and AUD
/// is the fraction integrated over a run of a few seconds.
const THRESHOLDS: ResilienceThresholds = ResilienceThresholds {
    max_degraded_fraction: 0.15,
    max_recovery_us: 2_000_000,
    max_aud_seconds: 1.5,
};

fn main() {
    // Positional argument = replay an existing JSONL; `--flag value` pairs
    // are consumed by `arg_value`.
    let mut jsonl_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a.starts_with("--") {
            let _ = args.next();
        } else {
            jsonl_arg = Some(PathBuf::from(a));
        }
    }

    let dir = results_dir();
    let trace_path = match &jsonl_arg {
        Some(path) => path.clone(),
        None => {
            let path = dir.join("resilience_trace.jsonl");
            run_soak(&path);
            path
        }
    };

    let file = or_fail!(std::fs::File::open(&trace_path), "open telemetry JSONL");
    let lines: Vec<String> = std::io::BufReader::new(file)
        .lines()
        .map(|l| or_fail!(l, "read telemetry JSONL"))
        .collect();
    let telemetry = fepia_obs::Telemetry::from_lines(&lines);
    let report = analyze(&telemetry, &AnalyzerConfig::default());

    let json = report.to_pretty_json(&THRESHOLDS);
    let out = dir.join("RESILIENCE.json");
    or_fail!(std::fs::write(&out, &json), "write RESILIENCE.json");
    print_summary(&trace_path, &report);
    println!("wrote RESILIENCE.json in {}", dir.display());

    let violations = THRESHOLDS.violations(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("resilience gate: {v}");
        }
        std::process::exit(fepia_bench::fatal::FATAL_EXIT_CODE);
    }
}

fn print_summary(trace_path: &Path, report: &ResilienceReport) {
    println!(
        "analyzed {}: {} requests, {} units, degraded fraction {:.4}, \
         {} bursts, recovery {} us, AUD {:.4} fraction*s",
        trace_path.display(),
        report.requests,
        report.units,
        report.degraded_fraction(),
        report.bursts,
        report.recovery_us,
        report.aud_seconds,
    );
    for s in &report.stages {
        println!(
            "  stage {:<12} n={:<6} p50={:>10.1}us p99={:>10.1}us p999={:>10.1}us",
            s.stage, s.count, s.p50_us, s.p99_us, s.p999_us
        );
    }
}

/// Silences the panic hook for chaos-injected panics only; everything else
/// still reports (the workers catch injected panics by design, and a
/// thousand backtraces would drown the report).
fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let text = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if !text.contains("chaos: injected panic") {
            previous(info);
        }
    }));
}

/// Drives the traced chaos-burst soak over TCP, appending every span and
/// burst marker to `trace_path`.
fn run_soak(trace_path: &Path) {
    let seed = arg_value("--seed").unwrap_or(2003);
    silence_injected_panics();

    // Full-trace telemetry into the JSONL file. Programmatic setup so the
    // run does not depend on FEPIA_OBS/FEPIA_TRACE being exported.
    let sink = or_fail!(JsonlSink::create(trace_path), "create trace JSONL");
    fepia_obs::install_sink(Arc::new(sink));
    fepia_obs::set_enabled(true);
    fepia_obs::set_events_enabled(true);
    trace::set_trace_enabled(true);
    trace::set_trace_wall(true);
    fepia_chaos::clear();

    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    // `worker_attempts: 1` is what makes bursts *observable*: an injected
    // worker panic becomes a `Failed` (degraded) verdict instead of being
    // retried back to `Exact`.
    let service = Arc::new(Service::start(ServiceConfig {
        worker_attempts: 1,
        ..ServiceConfig::default()
    }));
    let server = or_fail!(
        NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()),
        "start TCP server"
    );
    let addr = server.local_addr();

    // Alternating phases: clean, burst, clean, burst, ... ending clean so
    // every burst has a post-burst tail for the recovery measure.
    let next_index = AtomicU64::new(0);
    let drive_phase = |label: &str| {
        let start = next_index.load(Ordering::Relaxed);
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                let next_index = &next_index;
                let pool = &pool;
                let spec = &spec;
                scope.spawn(move || {
                    let mut client = or_fail!(
                        NetClient::connect(addr, ClientConfig::default()),
                        "connect soak client"
                    );
                    loop {
                        // Ids only need to be unique across the run, not
                        // dense, so an overshot final fetch is harmless.
                        let index = next_index.fetch_add(1, Ordering::Relaxed);
                        if index >= start + PHASE_REQUESTS {
                            break;
                        }
                        let req = request(spec, pool, index);
                        or_fail!(client.call(&req), "soak call");
                    }
                });
            }
        });
        if fepia_obs::events_enabled() {
            Event::new("soak.phase").field("label", label).emit();
        }
    };

    for burst in 0..BURSTS {
        drive_phase("clean");
        Event::new("chaos.burst")
            .field("phase", "start")
            .field("burst", burst as u64)
            .field("t_us", trace::epoch_us())
            .emit();
        fepia_chaos::set_for_test(seed ^ (burst as u64 + 1), CHAOS_RATE);
        drive_phase("burst");
        fepia_chaos::clear();
        Event::new("chaos.burst")
            .field("phase", "end")
            .field("burst", burst as u64)
            .field("t_us", trace::epoch_us())
            .emit();
    }
    drive_phase("clean");

    server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("server released its service handle")
        .shutdown();
    fepia_obs::flush_sink();
    fepia_obs::set_events_enabled(false);
    fepia_obs::clear_sink();
}
