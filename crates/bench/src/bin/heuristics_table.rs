//! Extension experiment: heuristic comparison with uncertainty.
//!
//! Runs every §3.1 mapping heuristic over many random instances — the
//! paper's CVB setting plus two Braun et al. benchmark classes — and
//! reports mean makespan and mean robustness with 95% bootstrap confidence
//! intervals. Answers the question the paper's §1 poses (which mapping
//! strategies are robust?) with error bars instead of a single instance.
//!
//! Output: `results/heuristics_table.csv` + console tables.

use fepia_bench::csvout::{num, CsvTable};
use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_etc::{
    generate_braun, generate_cvb, BraunClass, Consistency, EtcMatrix, EtcParams, HiLo,
};
use fepia_mapping::heuristics::all_heuristics;
use fepia_mapping::makespan_robustness;
use fepia_par::{par_map_dynamic, ParConfig};
use fepia_stats::{bootstrap_mean_ci, rng_for};

fn instance(kind: &str, seed: u64) -> EtcMatrix {
    let mut rng = rng_for(seed, 0);
    match kind {
        "cvb_0.7_0.7" => generate_cvb(&mut rng, &EtcParams::paper_section_4_2()),
        "braun_i_hihi" => generate_braun(
            &mut rng,
            BraunClass {
                consistency: Consistency::Inconsistent,
                task: HiLo::Hi,
                machine: HiLo::Hi,
            },
            20,
            5,
        ),
        "braun_c_lolo" => generate_braun(
            &mut rng,
            BraunClass {
                consistency: Consistency::Consistent,
                task: HiLo::Lo,
                machine: HiLo::Lo,
            },
            20,
            5,
        ),
        other => panic!("unknown instance kind {other}"),
    }
}

fn main() {
    let seed = arg_value("--seed").unwrap_or(2003);
    let instances = arg_value("--instances").unwrap_or(30) as usize;
    let tau = 1.2;
    let kinds = ["cvb_0.7_0.7", "braun_i_hihi", "braun_c_lolo"];

    let mut csv = CsvTable::new(&[
        "instance_class",
        "heuristic",
        "mean_makespan",
        "makespan_ci_lo",
        "makespan_ci_hi",
        "mean_robustness",
        "robustness_ci_lo",
        "robustness_ci_hi",
    ]);

    for kind in kinds {
        println!(
            "\ninstance class {kind} ({instances} instances, 20 apps × 5 machines, τ = {tau}):"
        );
        println!(
            "{:<22} {:>24} {:>30}",
            "heuristic", "makespan (95% CI)", "robustness ρ (95% CI)"
        );
        println!("{}", "-".repeat(78));
        let ks: Vec<u64> = (0..instances as u64).collect();
        for h in all_heuristics(1_000) {
            // Dynamic scheduling: instance cost varies wildly across
            // heuristics (OLB vs. annealing), so let idle workers steal.
            // Results come back in input order, so the CSV is unchanged.
            let h_ref = &h;
            let pairs = par_map_dynamic(&ks, &ParConfig::default(), move |_, &k| {
                let etc = instance(kind, seed + k);
                let mapping = h_ref.map(&etc, &mut rng_for(seed + k, 1));
                let rob = or_fail!(makespan_robustness(&mapping, &etc, tau), "valid instance");
                (rob.makespan, rob.metric)
            });
            let makespans: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let metrics: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let mut rng = rng_for(seed, 777);
            let mk = bootstrap_mean_ci(&makespans, 2_000, 0.95, &mut rng);
            let rb = bootstrap_mean_ci(&metrics, 2_000, 0.95, &mut rng);
            println!(
                "{:<22} {:>9.1} [{:>8.1},{:>8.1}] {:>9.2} [{:>8.2},{:>8.2}]",
                h.name(),
                mk.estimate,
                mk.lo,
                mk.hi,
                rb.estimate,
                rb.lo,
                rb.hi
            );
            csv.row(&[
                kind.to_string(),
                h.name().to_string(),
                num(mk.estimate),
                num(mk.lo),
                num(mk.hi),
                num(rb.estimate),
                num(rb.lo),
                num(rb.hi),
            ]);
        }
    }

    let dir = results_dir();
    or_fail!(csv.save(dir.join("heuristics_table.csv")), "write CSV");
    println!("\nwrote heuristics_table.csv in {}", dir.display());
}
