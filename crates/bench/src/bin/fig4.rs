//! Regenerates **Fig. 4**: robustness against slack for 1000 randomly
//! generated mappings of the §4.3 HiPer-D system.
//!
//! Outputs: `results/fig4_robustness_vs_slack.svg`,
//! `results/fig4_points.csv`, and a console summary (correlation, the
//! same-slack robustness spread, the binding-constraint mix, and the
//! flat-robustness band the paper points out).

use fepia_bench::csvout::{num, CsvTable};
use fepia_bench::fig4data::{robustness_slack_correlation, run, Fig4Config};
use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_plot::{Chart, Series};
use fepia_stats::Summary;
use std::collections::BTreeMap;

fn main() {
    // Experiment harness: always collect run metrics for the telemetry
    // snapshot. Events stay opt-in via FEPIA_OBS=<path>.
    fepia_obs::set_enabled(true);
    let seed = arg_value("--seed").unwrap_or(2003);
    let mappings = arg_value("--mappings").unwrap_or(1_000) as usize;
    let config = Fig4Config {
        mappings,
        ..Fig4Config::paper(seed)
    };
    let data = run(&config);
    let dir = results_dir();

    // --- CSV. ---
    let mut csv = CsvTable::new(&[
        "index",
        "slack",
        "robustness",
        "floored",
        "binding",
        "lambda1_star",
        "lambda2_star",
        "lambda3_star",
    ]);
    for p in &data.points {
        let star = p.lambda_star.clone().unwrap_or_default();
        let get = |k: usize| star.get(k).copied().map(num).unwrap_or_default();
        csv.row(&[
            p.index.to_string(),
            num(p.slack),
            num(p.robustness),
            num(p.floored),
            p.binding.clone(),
            get(0),
            get(1),
            get(2),
        ]);
    }
    or_fail!(csv.save(dir.join("fig4_points.csv")), "write CSV");

    // --- SVG. ---
    let feasible: Vec<&fepia_bench::fig4data::Fig4Point> =
        data.points.iter().filter(|p| p.slack > 0.0).collect();
    let cloud: Vec<(f64, f64)> = feasible.iter().map(|p| (p.slack, p.robustness)).collect();
    let mut chart = Chart::new(
        format!("Fig. 4 — robustness vs slack ({mappings} random mappings, HiPer-D system)"),
        "slack",
        "robustness (objects per data set)",
    );
    chart.add(Series::points("mappings", cloud));
    or_fail!(
        chart
            .render(760.0, 560.0)
            .save(dir.join("fig4_robustness_vs_slack.svg")),
        "write SVG"
    );

    // --- Console summary. ---
    println!("Fig. 4 (seed {seed}, {mappings} mappings)");
    println!(
        "  feasible mappings (slack > 0): {} / {}",
        feasible.len(),
        data.points.len()
    );
    if let Some(r) = robustness_slack_correlation(&data) {
        println!("  robustness–slack Pearson r = {r:.4}");
    }
    if !feasible.is_empty() {
        let s = Summary::of(&feasible.iter().map(|p| p.slack).collect::<Vec<_>>());
        let rob = Summary::of(&feasible.iter().map(|p| p.robustness).collect::<Vec<_>>());
        println!(
            "  slack ∈ [{:.3}, {:.3}]; robustness ∈ [{:.1}, {:.1}] (mean {:.1})",
            s.min, s.max, rob.min, rob.max, rob.mean
        );
    }

    // Binding-constraint mix (throughput vs latency).
    let mut mix: BTreeMap<&str, usize> = BTreeMap::new();
    for p in &data.points {
        let family = if p.binding.starts_with("throughput") {
            "throughput"
        } else if p.binding.starts_with("latency") {
            "latency"
        } else {
            "comm"
        };
        *mix.entry(family).or_default() += 1;
    }
    println!("  binding constraint mix: {mix:?}");

    // Same-slack robustness spread (the paper's headline observation).
    let mut sorted = feasible.clone();
    sorted.sort_by(|a, b| a.slack.total_cmp(&b.slack));
    let mut best_ratio: f64 = 1.0;
    for i in 0..sorted.len() {
        for j in (i + 1)..sorted.len() {
            if sorted[j].slack - sorted[i].slack > 0.01 {
                break;
            }
            let (lo, hi) = if sorted[i].robustness <= sorted[j].robustness {
                (sorted[i].robustness, sorted[j].robustness)
            } else {
                (sorted[j].robustness, sorted[i].robustness)
            };
            if lo > 0.0 {
                best_ratio = best_ratio.max(hi / lo);
            }
        }
    }
    println!("  sharpest same-slack (±0.01) robustness difference: {best_ratio:.2}×");

    // The flat-robustness band: the most common floored metric and the
    // slack range it spans (cf. "mappings with slack 0.2–0.5 all have
    // robustness ≈ 250").
    let mut by_value: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    for p in &feasible {
        by_value.entry(p.floored as i64).or_default().push(p.slack);
    }
    if let Some((v, slacks)) = by_value.iter().max_by_key(|(_, s)| s.len()) {
        let s = Summary::of(slacks);
        println!(
            "  largest constant-robustness band: ρ = {v} shared by {} mappings with slack ∈ [{:.3}, {:.3}]",
            slacks.len(),
            s.min,
            s.max
        );
    }
    println!(
        "  wrote fig4_robustness_vs_slack.svg, fig4_points.csv in {}",
        dir.display()
    );

    // --- Run telemetry: manifest + metrics snapshot next to the outputs. ---
    let manifest = fepia_obs::RunManifest::new("fig4")
        .param("seed", seed)
        .param("mappings", mappings)
        .output("fig4_points.csv")
        .output("fig4_robustness_vs_slack.svg");
    fepia_bench::telemetry::write_run_telemetry(&dir, "fig4", &manifest);
}
