//! Regenerates **Table 2**: two mappings of the §4.3 HiPer-D system with
//! nearly identical slack values but sharply different robustness, printed
//! in the paper's layout (robustness, slack, λ*, per-machine application
//! assignments, and the per-application computation-time functions with the
//! multitasking factor outside the parentheses).
//!
//! The paper's pair differs by ≈ 0.5% in slack and 3.3× in robustness; this
//! binary searches the same 1000-mapping sweep as `fig4` for the pair that
//! maximizes the robustness ratio under a slack-gap cap.
//!
//! Outputs: `results/table2.txt` and the same text on the console.

use fepia_bench::fig4data::{best_table2_pair, run, Fig4Config};
use fepia_bench::{or_fail, outdir::arg_value, outdir::results_dir};
use fepia_hiperd::{HiperdMapping, HiperdSystem, Shape};
use std::fmt::Write as _;

/// Formats an effective computation-time function in the Table 2 style:
/// multitasking factor outside, linear combination inside, e.g.
/// `5.20(3.1λ1 + 14.0λ2)`.
fn format_comp_fn(sys: &HiperdSystem, mapping: &HiperdMapping, app: usize) -> String {
    let f = mapping.effective_comp(sys, app);
    let base = &sys.comp[app][mapping.machine_of(app)];
    let factor = if base.scale > 0.0 {
        f.scale / base.scale
    } else {
        1.0
    };
    let inner: Vec<String> = base
        .coeffs
        .iter()
        .enumerate()
        .filter(|(_, &b)| b > 0.0)
        .map(|(z, &b)| format!("{:.2}λ{}", b * base.scale, z + 1))
        .collect();
    let shape = match base.shape {
        Shape::Linear => String::new(),
        other => format!(" [{other:?}]"),
    };
    if inner.is_empty() {
        "0".to_string()
    } else {
        format!("{factor:.2}({}){shape}", inner.join(" + "))
    }
}

fn describe(
    out: &mut String,
    label: &str,
    sys: &HiperdSystem,
    point: &fepia_bench::fig4data::Fig4Point,
) {
    let _ = writeln!(out, "mapping {label}:");
    let _ = writeln!(
        out,
        "  robustness          {:.1} objects/data set (floored {:.0})",
        point.robustness, point.floored
    );
    let _ = writeln!(out, "  slack               {:.4}", point.slack);
    let _ = writeln!(out, "  binding constraint  {}", point.binding);
    if let Some(star) = &point.lambda_star {
        let s: Vec<String> = star.iter().map(|v| format!("{v:.0}")).collect();
        let _ = writeln!(out, "  λ₁*, λ₂*, λ₃*        {}", s.join(", "));
    }
    let _ = writeln!(out, "  assignments:");
    for j in 0..sys.n_machines {
        let apps: Vec<String> = point
            .mapping
            .assignment()
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m == j)
            .map(|(i, _)| format!("a{i}"))
            .collect();
        let _ = writeln!(out, "    m{}: {}", j + 1, apps.join(", "));
    }
}

fn main() {
    let seed = arg_value("--seed").unwrap_or(2003);
    let mappings = arg_value("--mappings").unwrap_or(1_000) as usize;
    let max_gap = 0.01;
    let data = run(&Fig4Config {
        mappings,
        ..Fig4Config::paper(seed)
    });

    let pair = or_fail!(
        best_table2_pair(&data, max_gap),
        "a feasible near-equal-slack pair exists in a 1000-mapping sweep"
    );
    let a = &data.points[pair.a];
    let b = &data.points[pair.b];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 reproduction (seed {seed}, {mappings} mappings, slack gap ≤ {max_gap})"
    );
    let _ = writeln!(
        out,
        "initial sensor loads: λ = ({}, {}, {})",
        data.system.lambda_orig[0], data.system.lambda_orig[1], data.system.lambda_orig[2]
    );
    let _ = writeln!(
        out,
        "selected pair: slack gap {:.4}, robustness ratio {:.2}× (paper's pair: ≈0.005, 3.3×)\n",
        pair.slack_gap, pair.ratio
    );
    describe(&mut out, "A (less robust)", &data.system, a);
    let _ = writeln!(out);
    describe(&mut out, "B (more robust)", &data.system, b);

    let _ = writeln!(out, "\ncomputation time functions T_ij^c(λ):");
    let _ = writeln!(
        out,
        "  {:<6} {:<40} {:<40}",
        "app", "mapping A", "mapping B"
    );
    for i in 0..data.system.n_apps {
        let _ = writeln!(
            out,
            "  a{:<5} {:<40} {:<40}",
            i,
            format_comp_fn(&data.system, &a.mapping, i),
            format_comp_fn(&data.system, &b.mapping, i)
        );
    }

    print!("{out}");
    let path = results_dir().join("table2.txt");
    or_fail!(std::fs::write(&path, &out), "write table");
    println!("wrote {}", path.display());
}
