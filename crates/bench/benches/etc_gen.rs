//! ETC generation throughput: the CVB method vs the range-based baseline,
//! plus consistency shaping cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fepia_etc::consistency::apply_consistency;
use fepia_etc::{generate_cvb, generate_range, Consistency, EtcParams};
use fepia_stats::rng_for;
use std::hint::black_box;

fn bench_etc_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("etc_gen");
    for &(apps, machines) in &[(20usize, 5usize), (200, 20), (2_000, 50)] {
        let cells = (apps * machines) as u64;
        group.throughput(Throughput::Elements(cells));
        let params = EtcParams {
            apps,
            machines,
            ..EtcParams::paper_section_4_2()
        };
        group.bench_with_input(
            BenchmarkId::new("cvb", format!("{apps}x{machines}")),
            &params,
            |b, p| {
                b.iter(|| {
                    let mut rng = rng_for(7, 0);
                    black_box(generate_cvb(&mut rng, p))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("range", format!("{apps}x{machines}")),
            &(apps, machines),
            |b, &(a, m)| {
                b.iter(|| {
                    let mut rng = rng_for(7, 1);
                    black_box(generate_range(&mut rng, a, m, 100.0, 10.0))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("consistency_sort", format!("{apps}x{machines}")),
            &params,
            |b, p| {
                let matrix = generate_cvb(&mut rng_for(7, 2), p);
                b.iter(|| {
                    let mut m = matrix.clone();
                    apply_consistency(&mut m, Consistency::Consistent, &mut rng_for(7, 3));
                    black_box(m)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_etc_gen);
criterion_main!(benches);
