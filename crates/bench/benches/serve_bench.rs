//! Service throughput: cached move evaluations through `fepia-serve`.
//!
//! Backs the README "Serving" section. A sharded service is warmed so
//! every scenario's plan is cache-resident, then a moves-heavy workload
//! (64 single-app reassignment probes per request) is driven from 4
//! client threads. Each probe runs on [`fepia_mapping::DeltaEval`]
//! (O(2 machines) incremental update) against the cached plan — the hot
//! scheduler-probe path the service exists for.
//!
//! Reported: sustained cached move-evals/sec, client-observed p50/p99
//! request latency, and the plan-cache hit rate. Acceptance bars:
//! ≥ 50_000 evals/sec and hit rate ≥ 0.90.
//!
//! Correctness first: before timing, one request per scenario is checked
//! bitwise against the closed-form [`fepia_mapping::makespan_robustness`]
//! on the moved mapping. Results are written to
//! `results/BENCH_serve.json` (`$FEPIA_RESULTS` honored). Custom harness
//! (`harness = false`): full run via `cargo bench --bench serve_bench`;
//! under `cargo test` (`--test` flag) a quick pass checks the bitwise
//! oracle and skips the throughput bars.

use fepia_bench::outdir::results_dir;
use fepia_mapping::makespan_robustness;
use fepia_serve::workload::{moves_request, scenario_pool, WorkloadSpec};
use fepia_serve::{EvalKind, Service, ServiceConfig};
use std::time::Instant;

const CLIENTS: usize = 4;

fn bench_spec(quick: bool) -> (WorkloadSpec, u64) {
    let spec = WorkloadSpec {
        seed: 9001,
        scenarios: 8,
        apps: 64,
        machines: 8,
        moves_per_request: 64,
        ..WorkloadSpec::default()
    };
    let requests: u64 = if quick { 64 } else { 4_096 };
    (spec, requests)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let (spec, requests) = bench_spec(quick);
    let pool = scenario_pool(&spec);
    let service = Service::start(ServiceConfig {
        shards: 4,
        workers_per_shard: 2,
        queue_capacity: 256,
        cache_capacity: pool.len(),
        ..ServiceConfig::default()
    });

    // Warm + verify: one request per scenario, checked bitwise against the
    // legacy closed form. After this loop every plan is cache-resident.
    for (s, scenario) in pool.iter().enumerate() {
        let req = moves_request(&spec, &pool[s..=s], s as u64);
        let EvalKind::Moves(moves) = req.kind.clone() else {
            unreachable!("moves_request always yields Moves");
        };
        let resp = service.call_blocking(req).expect("warmup accepted");
        for (v, &(app, dst)) in resp.verdicts.iter().zip(&moves) {
            let mut moved = scenario.mapping().clone();
            moved.reassign(app, dst);
            let oracle = makespan_robustness(&moved, scenario.etc(), scenario.tau())
                .expect("valid instance");
            assert_eq!(
                v.metric_hi.to_bits(),
                oracle.metric.to_bits(),
                "served move verdict drifted from the closed form"
            );
        }
    }
    let warm = service.stats().totals();

    // Timed section: CLIENTS threads, closed-loop (one request in flight
    // per thread — latencies are honest), moves-only workload.
    let t0 = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (spec, pool, service) = (&spec, &pool, &service);
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity((requests as usize) / CLIENTS + 1);
                    let mut index = t as u64;
                    while index < requests {
                        let req = moves_request(spec, pool, 1_000 + index);
                        let t1 = Instant::now();
                        let resp = service.call_blocking(req).expect("bench accepted");
                        lats.push(t1.elapsed().as_nanos() as f64 / 1_000.0);
                        assert_eq!(resp.verdicts.len(), spec.moves_per_request);
                        index += CLIENTS as u64;
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let totals = service.stats().totals();
    service.shutdown();

    let evals = requests as f64 * spec.moves_per_request as f64;
    let evals_per_sec = evals / elapsed;
    let hit_rate = {
        // Hit rate over the timed section only (the warmup necessarily
        // compiles once per scenario and shard).
        let hits =
            (totals.cache_hits + totals.cache_coalesced) - (warm.cache_hits + warm.cache_coalesced);
        let misses = totals.cache_misses - warm.cache_misses;
        hits as f64 / (hits + misses).max(1) as f64
    };
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    let (p50_us, p99_us) = (pct(0.50), pct(0.99));

    println!(
        "serve throughput ({} apps x {} machines, {} moves/request, {} clients):",
        spec.apps, spec.machines, spec.moves_per_request, CLIENTS
    );
    println!("  requests: {requests} in {elapsed:.3} s");
    println!("  cached move-evals/sec: {evals_per_sec:>12.0} (bar: 50000)");
    println!("  request latency: p50 {p50_us:.1} us, p99 {p99_us:.1} us");
    println!("  plan-cache hit rate (timed section): {hit_rate:.4} (bar: 0.90)");

    if !quick {
        let json = format!(
            "{{\n  \"bench\": \"serve\",\n  \"apps\": {},\n  \"machines\": {},\n  \"moves_per_request\": {},\n  \"clients\": {},\n  \"requests\": {},\n  \"elapsed_s\": {:.3},\n  \"evals_per_sec\": {:.0},\n  \"p50_us\": {:.1},\n  \"p99_us\": {:.1},\n  \"cache_hit_rate\": {:.4},\n  \"evals_per_sec_threshold\": 50000.0,\n  \"hit_rate_threshold\": 0.9\n}}\n",
            spec.apps,
            spec.machines,
            spec.moves_per_request,
            CLIENTS,
            requests,
            elapsed,
            evals_per_sec,
            p50_us,
            p99_us,
            hit_rate
        );
        let path = results_dir().join("BENCH_serve.json");
        std::fs::write(&path, json).expect("write BENCH_serve.json");
        println!("wrote {}", path.display());
        assert!(
            evals_per_sec >= 50_000.0,
            "cached move-eval throughput {evals_per_sec:.0}/s below the 50k bar"
        );
        assert!(
            hit_rate >= 0.90,
            "plan-cache hit rate {hit_rate:.4} below the 0.90 bar"
        );
        println!("OK: throughput and hit-rate bars met");
    } else {
        println!("quick mode: bitwise oracle checked, throughput bars skipped");
    }
}
