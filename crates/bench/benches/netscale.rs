//! Connection scaling on the event-loop I/O plane.
//!
//! Backs the README "I/O plane" section and ROADMAP item 3. The old
//! thread-per-connection server paid two OS threads per socket, so 1024
//! connections meant 2048 threads of stack and scheduler pressure. The
//! readiness loop multiplexes every connection on one thread, so
//! throughput must hold as the connection count grows.
//!
//! Measured: sustained cached move-evals/sec through pipelined clients
//! at **1, 64 and 1024 connections**, same total request volume at each
//! scale (connection setup is part of the cost — that is the point).
//! Every client sends its share in pipelined chunks of 64 (the server's
//! per-connection in-flight window), so the server sees deep pipelines,
//! batched writes and a full poll set at once.
//!
//! Acceptance bars (full mode): ≥ 25_000 evals/sec at 64 connections,
//! and the 1024-connection figure within 2× of the 64-connection one
//! (`scale_ratio_1024_vs_64 >= 0.5`). Results go to
//! `results/BENCH_netscale.json` (`$FEPIA_RESULTS` honored) and are
//! gated by `scripts/check_bench.sh`. Under `cargo test` (`--test`
//! flag) a quick pass verifies the pipelined path bitwise against an
//! in-process reference at small scale and skips the bars.

use fepia_bench::outdir::results_dir;
use fepia_net::wire::encode_response;
use fepia_net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia_serve::workload::{moves_request, scenario_pool, WorkloadSpec};
use fepia_serve::{Service, ServiceConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Pipelined chunk per `call_pipelined` — matches the server's default
/// per-connection in-flight window, so each chunk can be fully in
/// flight without tripping backpressure.
const PIPELINE: usize = 64;
const EVALS_PER_SEC_BAR: f64 = 25_000.0;
const SCALE_RATIO_BAR: f64 = 0.5;

fn bench_spec() -> WorkloadSpec {
    WorkloadSpec {
        seed: 9_007,
        scenarios: 8,
        apps: 64,
        machines: 8,
        moves_per_request: 64,
        ..WorkloadSpec::default()
    }
}

/// Drives `requests` moves-requests through `conns` pipelined
/// connections (each connection sends its share in chunks of
/// [`PIPELINE`]) and returns the elapsed wall time, connect included.
fn run_scale(
    addr: SocketAddr,
    spec: &WorkloadSpec,
    pool: &[Arc<fepia_serve::Scenario>],
    conns: usize,
    requests: usize,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                std::thread::Builder::new()
                    .name(format!("netscale-{t}"))
                    // 1024 driver threads on one box: keep stacks small.
                    .stack_size(256 * 1024)
                    .spawn_scoped(scope, move || {
                        let mut client =
                            NetClient::connect(addr, ClientConfig::default()).expect("connect");
                        let mine: Vec<usize> = (t..requests).step_by(conns).collect();
                        for chunk in mine.chunks(PIPELINE) {
                            let reqs: Vec<_> = chunk
                                .iter()
                                .map(|&i| moves_request(spec, pool, 100_000 + i as u64))
                                .collect();
                            let resps = client.call_pipelined(&reqs).expect("pipelined batch");
                            for resp in &resps {
                                assert_eq!(resp.verdicts.len(), spec.moves_per_request);
                            }
                        }
                    })
                    .expect("spawn driver thread")
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    t0.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let spec = bench_spec();
    let pool = scenario_pool(&spec);
    let requests: usize = if quick { 64 } else { 2_048 };
    let scales: &[usize] = if quick { &[1, 4, 8] } else { &[1, 64, 1024] };

    let service = Arc::new(Service::start(ServiceConfig {
        shards: 4,
        workers_per_shard: 2,
        // Deep enough for every connection's full pipeline window at the
        // largest scale — this bench measures transport scaling, not
        // admission control (sheds fail the batch and the run).
        queue_capacity: 8_192,
        cache_capacity: pool.len(),
        ..ServiceConfig::default()
    }));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr();

    // Warm + verify: the whole scenario pool as ONE pipelined batch must
    // come back bitwise identical to a twin in-process service answering
    // the same stream sequentially.
    let reference = Service::start(ServiceConfig {
        shards: 4,
        workers_per_shard: 2,
        queue_capacity: 8_192,
        cache_capacity: pool.len(),
        ..ServiceConfig::default()
    });
    let warm_reqs: Vec<_> = (0..pool.len())
        .map(|s| moves_request(&spec, &pool[s..=s], s as u64))
        .collect();
    let mut warm_client = NetClient::connect(addr, ClientConfig::default()).expect("connect");
    let over_tcp = warm_client
        .call_pipelined(&warm_reqs)
        .expect("pipelined warmup");
    for (s, (req, got)) in warm_reqs.iter().zip(&over_tcp).enumerate() {
        let expected = reference.call_blocking(req.clone()).expect("reference");
        assert_eq!(
            encode_response(got),
            encode_response(&expected),
            "scenario {s}: pipelined response differs from in-process (bitwise)"
        );
    }
    reference.shutdown();
    drop(warm_client);

    let evals = requests as f64 * spec.moves_per_request as f64;
    let mut per_scale: Vec<(usize, f64)> = Vec::new();
    for &conns in scales {
        let elapsed = run_scale(addr, &spec, &pool, conns, requests);
        let eps = evals / elapsed;
        per_scale.push((conns, eps));
        println!(
            "  {conns:>5} connections: {requests} requests ({evals:.0} evals) in \
             {elapsed:.3} s -> {eps:>12.0} evals/sec"
        );
    }

    let net_stats = server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("server released the service")
        .shutdown();

    println!(
        "netscale ({} apps x {} machines, {} moves/request, pipeline window {}):",
        spec.apps, spec.machines, spec.moves_per_request, PIPELINE
    );
    println!(
        "  server: {} connections, {} frames read, {} written, max pipeline depth {}, {} errors",
        net_stats.connections,
        net_stats.frames_read,
        net_stats.frames_written,
        net_stats.max_pipeline_depth,
        net_stats.decode_errors + net_stats.overloaded + net_stats.invalid
    );
    assert_eq!(
        net_stats.decode_errors + net_stats.overloaded + net_stats.invalid,
        0,
        "scaling run must be shed- and error-free"
    );
    assert!(
        net_stats.max_pipeline_depth >= 8,
        "pipelined drivers must keep the server's in-flight window busy"
    );

    if quick {
        println!("quick mode: pipelined bitwise equivalence checked, scaling bars skipped");
        return;
    }

    let eps_at = |c: usize| {
        per_scale
            .iter()
            .find(|(conns, _)| *conns == c)
            .map(|&(_, eps)| eps)
            .expect("scale measured")
    };
    let (eps_1, eps_64, eps_1024) = (eps_at(1), eps_at(64), eps_at(1024));
    let scale_ratio = eps_1024 / eps_64;
    println!(
        "  1024-vs-64 connection throughput ratio: {scale_ratio:.3} (bar: >= {SCALE_RATIO_BAR})"
    );

    let json = format!(
        "{{\n  \"bench\": \"netscale\",\n  \"apps\": {},\n  \"machines\": {},\n  \"moves_per_request\": {},\n  \"requests_per_scale\": {},\n  \"pipeline_window\": {},\n  \"evals_per_sec_1\": {:.0},\n  \"evals_per_sec_64\": {:.0},\n  \"evals_per_sec_1024\": {:.0},\n  \"scale_ratio_1024_vs_64\": {:.3},\n  \"max_pipeline_depth\": {},\n  \"evals_per_sec_threshold\": {:.1},\n  \"scale_ratio_threshold\": {:.2}\n}}\n",
        spec.apps,
        spec.machines,
        spec.moves_per_request,
        requests,
        PIPELINE,
        eps_1,
        eps_64,
        eps_1024,
        scale_ratio,
        net_stats.max_pipeline_depth,
        EVALS_PER_SEC_BAR,
        SCALE_RATIO_BAR
    );
    let path = results_dir().join("BENCH_netscale.json");
    std::fs::write(&path, json).expect("write BENCH_netscale.json");
    println!("wrote {}", path.display());

    assert!(
        eps_64 >= EVALS_PER_SEC_BAR,
        "64-connection pipelined throughput {eps_64:.0}/s below the {EVALS_PER_SEC_BAR:.0} bar"
    );
    assert!(
        scale_ratio >= SCALE_RATIO_BAR,
        "1024-connection throughput fell to {scale_ratio:.3} of the 64-connection figure \
         (bar: {SCALE_RATIO_BAR})"
    );
    println!("OK: connection-scaling bars met");
}
