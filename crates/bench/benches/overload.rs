//! Goodput under overload: the brownout gate.
//!
//! Backs the "graceful degradation" contract: when offered load exceeds
//! worker capacity several times over, the server must keep *answering* —
//! full precision when it can, budgeted (brownout) precision under
//! pressure, typed deadline/overload outcomes otherwise — instead of
//! stalling or failing untyped. Two figures are recorded and gated:
//!
//! * **goodput** — verdict units per second delivered in `Full` or
//!   `Brownout` responses while 16 blocking drivers (8× the two workers)
//!   hammer the server with deadline-carrying requests;
//! * **typed-outcome fraction** — the share of offered calls that resolved
//!   to a response or a *typed* error (`Overloaded`, `DeadlineExceeded`,
//!   retries exhausted on those). Transport or protocol errors are
//!   untyped; the bar is 1.0 — availability degrades typed or not at all.
//!
//! Results go to `results/BENCH_overload.json` (`$FEPIA_RESULTS` honored)
//! and are gated by `scripts/check_bench.sh` against the checked-in
//! thresholds. Under `cargo test` (`--test` flag) a quick pass checks the
//! plumbing and skips the bars.

use fepia_bench::outdir::results_dir;
use fepia_net::{ClientConfig, NetClient, NetError, NetServer, ServerConfig};
use fepia_serve::workload::{moves_request, scenario_pool, WorkloadSpec};
use fepia_serve::{Disposition, Service, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DRIVERS: usize = 16;
const GOODPUT_BAR: f64 = 10_000.0;
const TYPED_FRACTION_BAR: f64 = 1.0;
/// Every Nth request carries a deliberately hopeless deadline, exercising
/// the expired-at-dequeue drop path under real concurrency.
const TIGHT_EVERY: u64 = 8;

fn bench_spec() -> WorkloadSpec {
    WorkloadSpec {
        seed: 9_008,
        scenarios: 8,
        apps: 64,
        machines: 8,
        moves_per_request: 64,
        ..WorkloadSpec::default()
    }
}

#[derive(Default)]
struct Outcomes {
    full: AtomicU64,
    brownout: AtomicU64,
    expired_wire: AtomicU64,
    typed_errors: AtomicU64,
    untyped_errors: AtomicU64,
    goodput_units: AtomicU64,
}

/// Whether an error is a *typed* degradation outcome (vs a transport or
/// protocol failure, which would mean availability was lost untyped).
fn is_typed(err: &NetError) -> bool {
    match err {
        NetError::Overloaded { .. } | NetError::DeadlineExceeded { .. } => true,
        NetError::RetriesExhausted { last, .. } => is_typed(last),
        NetError::Io(_) | NetError::Decode(_) | NetError::Invalid(_) | NetError::Protocol(_) => {
            false
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let spec = bench_spec();
    let pool = scenario_pool(&spec);
    let requests: u64 = if quick { 64 } else { 4_096 };

    let service = Arc::new(Service::start(ServiceConfig {
        shards: 1,
        workers_per_shard: 2,
        queue_capacity: 256,
        cache_capacity: pool.len(),
        ..ServiceConfig::default()
    }));
    let server = NetServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            // 16 blocking drivers keep up to 16 requests in flight against
            // 2 workers: brownout pressure is the steady state, shedding
            // the spike reserve.
            brownout_in_flight: 4,
            shed_in_flight: 12,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    let outcomes = Outcomes::default();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..DRIVERS {
            let spec = &spec;
            let pool = &pool;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let mut client = NetClient::connect(
                    addr,
                    ClientConfig {
                        max_attempts: 4,
                        backoff_base: Duration::from_micros(200),
                        backoff_cap: Duration::from_millis(2),
                        ..ClientConfig::default()
                    },
                )
                .expect("connect");
                let mut i = t as u64;
                while i < requests {
                    let req = moves_request(spec, pool, 200_000 + i);
                    let deadline = if i.is_multiple_of(TIGHT_EVERY) {
                        // Hopeless on purpose: expires while queued.
                        Duration::from_micros(50)
                    } else {
                        Duration::from_millis(500)
                    };
                    match client.call_with_deadline(&req, deadline) {
                        Ok(resp) => match resp.disposition {
                            Disposition::Full => {
                                outcomes.full.fetch_add(1, Ordering::Relaxed);
                                outcomes
                                    .goodput_units
                                    .fetch_add(resp.verdicts.len() as u64, Ordering::Relaxed);
                            }
                            Disposition::Brownout => {
                                outcomes.brownout.fetch_add(1, Ordering::Relaxed);
                                outcomes
                                    .goodput_units
                                    .fetch_add(resp.verdicts.len() as u64, Ordering::Relaxed);
                            }
                            Disposition::DeadlineExceeded => {
                                assert_eq!(
                                    resp.attempts, 0,
                                    "expired requests must not be evaluated"
                                );
                                assert!(resp.verdicts.is_empty());
                                outcomes.expired_wire.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(e) if is_typed(&e) => {
                            outcomes.typed_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("untyped outcome for request {i}: {e}");
                            outcomes.untyped_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += DRIVERS as u64;
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let net_stats = server.shutdown();
    let totals = Arc::try_unwrap(service)
        .ok()
        .expect("server released the service")
        .shutdown()
        .totals();

    let full = outcomes.full.load(Ordering::Relaxed);
    let brownout = outcomes.brownout.load(Ordering::Relaxed);
    let expired_wire = outcomes.expired_wire.load(Ordering::Relaxed);
    let typed_errors = outcomes.typed_errors.load(Ordering::Relaxed);
    let untyped = outcomes.untyped_errors.load(Ordering::Relaxed);
    let goodput_units = outcomes.goodput_units.load(Ordering::Relaxed);
    let goodput = goodput_units as f64 / elapsed;
    let typed_fraction = (requests - untyped) as f64 / requests as f64;

    println!(
        "overload ({DRIVERS} drivers, {requests} requests, {} moves each, tight 1/{TIGHT_EVERY}):",
        spec.moves_per_request
    );
    println!(
        "  outcomes: {full} full, {brownout} brownout, {expired_wire} expired, \
         {typed_errors} typed errors, {untyped} untyped"
    );
    println!(
        "  server: {} admission brownouts, {} admission sheds; \
         service: {} brownout evals, {} deadline drops",
        net_stats.admission_brownout,
        net_stats.admission_shed,
        totals.brownout_evals,
        totals.deadline_expired
    );
    println!(
        "  goodput: {goodput_units} units in {elapsed:.3} s -> {goodput:.0} units/sec \
         (bar: >= {GOODPUT_BAR})"
    );
    println!("  typed-outcome fraction: {typed_fraction:.4} (bar: >= {TYPED_FRACTION_BAR})");

    if quick {
        assert_eq!(untyped, 0, "quick run must still resolve every call typed");
        println!("quick mode: typed plumbing checked, throughput bars skipped");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"overload\",\n  \"drivers\": {DRIVERS},\n  \"requests\": {requests},\n  \"moves_per_request\": {},\n  \"answered_full\": {full},\n  \"answered_brownout\": {brownout},\n  \"expired_wire\": {expired_wire},\n  \"typed_errors\": {typed_errors},\n  \"untyped_errors\": {untyped},\n  \"admission_brownout\": {},\n  \"admission_shed\": {},\n  \"service_brownout_evals\": {},\n  \"service_deadline_expired\": {},\n  \"goodput_units_per_sec\": {goodput:.0},\n  \"typed_outcome_fraction\": {typed_fraction:.4},\n  \"goodput_threshold\": {GOODPUT_BAR:.1},\n  \"typed_fraction_threshold\": {TYPED_FRACTION_BAR:.2}\n}}\n",
        spec.moves_per_request,
        net_stats.admission_brownout,
        net_stats.admission_shed,
        totals.brownout_evals,
        totals.deadline_expired,
    );
    let path = results_dir().join("BENCH_overload.json");
    std::fs::write(&path, json).expect("write BENCH_overload.json");
    println!("wrote {}", path.display());

    assert!(
        typed_fraction >= TYPED_FRACTION_BAR,
        "availability degraded untyped: {untyped} calls failed with transport/protocol errors"
    );
    assert!(
        goodput >= GOODPUT_BAR,
        "goodput under overload regressed: {goodput:.0} < {GOODPUT_BAR} units/sec"
    );
}
