//! Compiled-plan speedup: delta-vs-full move evaluation and batched
//! evaluation vs per-item compile.
//!
//! Two scenarios back the Performance section of the README:
//!
//! 1. **Move evaluation** (§3.1 local search): a sequence of single-app
//!    reassignments is costed with [`fepia_mapping::DeltaEval::apply`]
//!    (O(2 machines) incremental update) vs the legacy path of calling
//!    [`fepia_mapping::makespan_robustness`] from scratch after every move.
//!    Final metrics are asserted bitwise identical before timing counts.
//!    Acceptance bar: ≥ 5× speedup.
//!
//! 2. **Batched sweeps**: a fixed affine feature set is evaluated at many
//!    perturbed origins via a single [`fepia_core::AnalysisPlan`] +
//!    `evaluate_batch`, vs rebuilding a `FepiaAnalysis` (and therefore
//!    recompiling the plan) for every origin. Metrics asserted bitwise
//!    identical. Acceptance bar: ≥ 1.5× speedup.
//!
//! Results are written to `results/BENCH_plan.json` (`$FEPIA_RESULTS`
//! honored). Custom harness (`harness = false`): full run via
//! `cargo bench --bench plan_speedup`; under `cargo test` (`--test` flag)
//! a quick pass checks the bitwise equivalences and skips the speedup
//! assertions (timings are too short to be stable).

use fepia_bench::outdir::results_dir;
use fepia_core::{
    FeatureSpec, FepiaAnalysis, LinearImpact, Perturbation, RadiusOptions, Tolerance,
};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::{makespan_robustness, DeltaEval, Mapping};
use fepia_optim::VecN;
use fepia_stats::rng_for;
use rand::Rng;
use std::hint::black_box;
use std::time::Instant;

/// Median of per-iteration nanoseconds over `samples` runs of `f`, where
/// `f` reports how many work items one run covered.
fn time_ns_per_item<F: FnMut() -> usize>(mut f: F, samples: usize) -> f64 {
    let mut xs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let items = f();
        xs.push(t0.elapsed().as_nanos() as f64 / items as f64);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Scenario 1: DeltaEval incremental move costing vs full re-analysis.
fn move_eval(quick: bool) -> (f64, f64) {
    let apps = 128;
    let machines = 16;
    let tau = 1.2;
    let etc = generate_cvb(
        &mut rng_for(11, 0),
        &EtcParams {
            apps,
            machines,
            ..EtcParams::paper_section_4_2()
        },
    );
    let start = Mapping::random(&mut rng_for(11, 1), apps, machines);
    let n_moves = if quick { 200 } else { 5_000 };
    let moves: Vec<(usize, usize)> = {
        let mut rng = rng_for(11, 2);
        (0..n_moves)
            .map(|_| (rng.gen_range(0..apps), rng.gen_range(0..machines)))
            .collect()
    };

    // Correctness first: the incremental metric must track the full
    // recomputation bitwise over the whole move sequence.
    let mut delta = DeltaEval::new(&etc, &start, tau);
    let mut legacy = start.clone();
    for &(app, dst) in &moves {
        delta.apply(app, dst);
        legacy.reassign(app, dst);
    }
    let full = makespan_robustness(&legacy, &etc, tau).expect("valid instance");
    assert_eq!(
        delta.metric().to_bits(),
        full.metric.to_bits(),
        "incremental metric drifted from the full analysis"
    );

    let samples = if quick { 3 } else { 15 };
    let legacy_ns = time_ns_per_item(
        || {
            let mut m = start.clone();
            let mut acc = 0.0;
            for &(app, dst) in &moves {
                m.reassign(app, dst);
                acc += makespan_robustness(&m, &etc, tau)
                    .expect("valid instance")
                    .metric;
            }
            black_box(acc);
            moves.len()
        },
        samples,
    );
    let delta_ns = time_ns_per_item(
        || {
            let mut d = DeltaEval::new(&etc, &start, tau);
            let mut acc = 0.0;
            for &(app, dst) in &moves {
                d.apply(app, dst);
                acc += d.metric();
            }
            black_box(acc);
            moves.len()
        },
        samples,
    );
    (legacy_ns, delta_ns)
}

fn affine_features(dim: usize, n: usize) -> Vec<(FeatureSpec, LinearImpact)> {
    let mut rng = rng_for(23, 0);
    (0..n)
        .map(|k| {
            let coeffs: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0f64)).collect();
            let c = rng.gen_range(0.0..0.5f64);
            (
                FeatureSpec::new(format!("phi_{k}"), Tolerance::upper(50.0 + k as f64)),
                LinearImpact::new(VecN::from(coeffs), c),
            )
        })
        .collect()
}

/// Scenario 2: one compiled plan over a batch of origins vs a fresh
/// analysis (compile included) per origin.
fn batch_eval(quick: bool) -> (f64, f64) {
    let dim = 16;
    let n_features = 32;
    let n_origins = if quick { 32 } else { 512 };
    let features = affine_features(dim, n_features);
    let origins: Vec<VecN> = {
        let mut rng = rng_for(23, 1);
        (0..n_origins)
            .map(|_| {
                VecN::from(
                    (0..dim)
                        .map(|_| rng.gen_range(-2.0..2.0f64))
                        .collect::<Vec<f64>>(),
                )
            })
            .collect()
    };
    let opts = RadiusOptions::default();

    let fresh_analysis = |origin: &VecN| {
        let mut analysis = FepiaAnalysis::new(Perturbation::continuous("pi", origin.clone()));
        for (spec, impact) in &features {
            analysis.add_feature(spec.clone(), impact.clone());
        }
        analysis
    };

    // Correctness first: batched plan metrics == per-item compile metrics,
    // bitwise.
    let plan = fresh_analysis(&origins[0])
        .compile(&opts)
        .expect("compiles");
    let batched = plan.evaluate_batch(&origins).expect("evaluates");
    for (origin, evaluation) in origins.iter().zip(&batched) {
        let report = fresh_analysis(origin).run(&opts).expect("runs");
        assert_eq!(
            evaluation.metric.to_bits(),
            report.metric.to_bits(),
            "batched metric differs from the per-item path"
        );
    }

    let samples = if quick { 3 } else { 15 };
    let per_item_ns = time_ns_per_item(
        || {
            let mut acc = 0.0;
            for origin in &origins {
                acc += fresh_analysis(origin).run(&opts).expect("runs").metric;
            }
            black_box(acc);
            origins.len()
        },
        samples,
    );
    let batch_ns = time_ns_per_item(
        || {
            let plan = fresh_analysis(&origins[0])
                .compile(&opts)
                .expect("compiles");
            let evaluations = plan.evaluate_batch(&origins).expect("evaluates");
            black_box(&evaluations);
            origins.len()
        },
        samples,
    );
    (per_item_ns, batch_ns)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");

    let (legacy_ns, delta_ns) = move_eval(quick);
    let move_speedup = legacy_ns / delta_ns;
    println!("move evaluation (128 apps x 16 machines):");
    println!("  full makespan_robustness per move: {legacy_ns:>10.0} ns/move");
    println!("  DeltaEval::apply per move:         {delta_ns:>10.0} ns/move");
    println!("  speedup: {move_speedup:.1}x (bar: 5x)");

    let (per_item_ns, batch_ns) = batch_eval(quick);
    let batch_speedup = per_item_ns / batch_ns;
    println!("batched sweep (32 affine features, dim 16):");
    println!("  fresh analysis + compile per origin: {per_item_ns:>8.0} ns/origin");
    println!("  compile once + evaluate_batch:       {batch_ns:>8.0} ns/origin");
    println!("  speedup: {batch_speedup:.2}x (bar: 1.5x)");

    if !quick {
        let json = format!(
            "{{\n  \"bench\": \"plan_speedup\",\n  \"move_eval\": {{\n    \"apps\": 128,\n    \"machines\": 16,\n    \"legacy_ns_per_move\": {legacy_ns:.1},\n    \"delta_ns_per_move\": {delta_ns:.1},\n    \"speedup\": {move_speedup:.2},\n    \"threshold\": 5.0\n  }},\n  \"batch_eval\": {{\n    \"features\": 32,\n    \"dim\": 16,\n    \"per_item_ns_per_origin\": {per_item_ns:.1},\n    \"batch_ns_per_origin\": {batch_ns:.1},\n    \"speedup\": {batch_speedup:.2},\n    \"threshold\": 1.5\n  }}\n}}\n"
        );
        let path = results_dir().join("BENCH_plan.json");
        std::fs::write(&path, json).expect("write BENCH_plan.json");
        println!("wrote {}", path.display());
        assert!(
            move_speedup >= 5.0,
            "DeltaEval move-eval speedup {move_speedup:.2}x below the 5x bar"
        );
        assert!(
            batch_speedup >= 1.5,
            "batched sweep speedup {batch_speedup:.2}x below the 1.5x bar"
        );
        println!("OK: both speedup bars met");
    } else {
        println!("quick mode: bitwise equivalences checked, speedup bars skipped");
    }
}
