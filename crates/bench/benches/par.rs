//! Parallel sweep speedup: the Fig. 3 evaluation body under `fepia-par`
//! with 1/2/4/8 threads, static vs dynamic scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::{makespan_robustness, Mapping};
use fepia_par::{par_map, par_map_dynamic, ParConfig};
use fepia_stats::rng_for;
use std::hint::black_box;

fn bench_par(c: &mut Criterion) {
    let params = EtcParams {
        apps: 200, // larger than the paper's 20 so each item has real work
        machines: 10,
        ..EtcParams::paper_section_4_2()
    };
    let etc = generate_cvb(&mut rng_for(9, 0), &params);
    let indices: Vec<usize> = (0..1_000).collect();
    let body = |_: usize, &i: &usize| {
        let m = Mapping::random(&mut rng_for(9, i as u64 + 1), params.apps, params.machines);
        makespan_robustness(&m, &etc, 1.2).unwrap().metric
    };

    let mut group = c.benchmark_group("par_sweep");
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    for &threads in &[1usize, 2, 4, 8] {
        if threads > max {
            continue;
        }
        let cfg = ParConfig::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("static", threads), &cfg, |b, cfg| {
            b.iter(|| black_box(par_map(&indices, cfg, body)))
        });
        group.bench_with_input(BenchmarkId::new("dynamic", threads), &cfg, |b, cfg| {
            b.iter(|| black_box(par_map_dynamic(&indices, cfg, body)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_par);
criterion_main!(benches);
