//! TCP throughput: cached move evaluations through `fepia-net`.
//!
//! Backs the README "Networking" section. The same warmed, sharded
//! service as `serve_bench`, but every request now crosses the wire:
//! encode → localhost TCP → decode → submit → evaluate → encode → TCP →
//! decode. Four blocking clients (one connection each, closed-loop) drive
//! a moves-heavy workload; the gap between this number and
//! `BENCH_serve.json`'s in-process figure *is* the protocol cost.
//!
//! Reported: sustained cached move-evals/sec over TCP and client-observed
//! p50/p99 request latency. Acceptance bar: ≥ 25_000 evals/sec (the wire
//! may cost parallelism and syscalls, but not the service).
//!
//! Correctness first: before timing, one request per scenario is served
//! both over TCP and in-process and the encoded responses must be
//! byte-identical (the bitwise equivalence guarantee, spot-checked at
//! bench scale). Results go to `results/BENCH_net.json` (`$FEPIA_RESULTS`
//! honored). Custom harness: full run via `cargo bench --bench
//! net_bench`; under `cargo test` (`--test` flag) a quick pass checks the
//! equivalence oracle and skips the throughput bars.

use fepia_bench::outdir::results_dir;
use fepia_net::wire::encode_response;
use fepia_net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia_serve::workload::{moves_request, scenario_pool, WorkloadSpec};
use fepia_serve::{Service, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 4;
const EVALS_PER_SEC_BAR: f64 = 25_000.0;

fn bench_spec(quick: bool) -> (WorkloadSpec, u64) {
    let spec = WorkloadSpec {
        seed: 9_005,
        scenarios: 8,
        apps: 64,
        machines: 8,
        moves_per_request: 64,
        ..WorkloadSpec::default()
    };
    let requests: u64 = if quick { 64 } else { 4_096 };
    (spec, requests)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let (spec, requests) = bench_spec(quick);
    let pool = scenario_pool(&spec);
    let service = Arc::new(Service::start(ServiceConfig {
        shards: 4,
        workers_per_shard: 2,
        queue_capacity: 256,
        cache_capacity: pool.len(),
        ..ServiceConfig::default()
    }));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr();

    // Warm + verify: one request per scenario over the wire must be
    // byte-identical to the in-process answer from a twin service fed the
    // same sequential stream.
    let reference = Service::start(ServiceConfig {
        shards: 4,
        workers_per_shard: 2,
        queue_capacity: 256,
        cache_capacity: pool.len(),
        ..ServiceConfig::default()
    });
    let mut warm_client = NetClient::connect(addr, ClientConfig::default()).expect("connect");
    for s in 0..pool.len() {
        let req = moves_request(&spec, &pool[s..=s], s as u64);
        let expected = reference.call_blocking(req.clone()).expect("reference");
        let over_tcp = warm_client.call(&req).expect("warmup over TCP");
        assert_eq!(
            encode_response(&over_tcp),
            encode_response(&expected),
            "scenario {s}: TCP response differs from in-process (bitwise)"
        );
    }
    reference.shutdown();
    drop(warm_client);

    // Timed section: CLIENTS connections, closed-loop, moves-only.
    let t0 = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (spec, pool) = (&spec, &pool);
                scope.spawn(move || {
                    let mut client =
                        NetClient::connect(addr, ClientConfig::default()).expect("connect");
                    let mut lats = Vec::with_capacity((requests as usize) / CLIENTS + 1);
                    let mut index = t as u64;
                    while index < requests {
                        let req = moves_request(spec, pool, 1_000 + index);
                        let t1 = Instant::now();
                        let resp = client.call(&req).expect("bench call");
                        lats.push(t1.elapsed().as_nanos() as f64 / 1_000.0);
                        assert_eq!(resp.verdicts.len(), spec.moves_per_request);
                        index += CLIENTS as u64;
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let net_stats = server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("server released the service")
        .shutdown();

    let evals = requests as f64 * spec.moves_per_request as f64;
    let evals_per_sec = evals / elapsed;
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
    let (p50_us, p99_us) = (pct(0.50), pct(0.99));

    println!(
        "net throughput ({} apps x {} machines, {} moves/request, {} TCP clients):",
        spec.apps, spec.machines, spec.moves_per_request, CLIENTS
    );
    println!("  requests: {requests} in {elapsed:.3} s");
    println!(
        "  cached move-evals/sec over TCP: {evals_per_sec:>12.0} (bar: {EVALS_PER_SEC_BAR:.0})"
    );
    println!("  request latency: p50 {p50_us:.1} us, p99 {p99_us:.1} us");
    println!(
        "  server frames: {} read, {} written, {} errors",
        net_stats.frames_read,
        net_stats.frames_written,
        net_stats.decode_errors + net_stats.overloaded + net_stats.invalid
    );

    if !quick {
        let json = format!(
            "{{\n  \"bench\": \"net\",\n  \"apps\": {},\n  \"machines\": {},\n  \"moves_per_request\": {},\n  \"clients\": {},\n  \"requests\": {},\n  \"elapsed_s\": {:.3},\n  \"evals_per_sec\": {:.0},\n  \"p50_us\": {:.1},\n  \"p99_us\": {:.1},\n  \"evals_per_sec_threshold\": {:.1}\n}}\n",
            spec.apps,
            spec.machines,
            spec.moves_per_request,
            CLIENTS,
            requests,
            elapsed,
            evals_per_sec,
            p50_us,
            p99_us,
            EVALS_PER_SEC_BAR
        );
        let path = results_dir().join("BENCH_net.json");
        std::fs::write(&path, json).expect("write BENCH_net.json");
        println!("wrote {}", path.display());
        assert!(
            evals_per_sec >= EVALS_PER_SEC_BAR,
            "TCP move-eval throughput {evals_per_sec:.0}/s below the {EVALS_PER_SEC_BAR:.0} bar"
        );
        println!("OK: TCP throughput bar met");
    } else {
        println!("quick mode: bitwise equivalence checked, throughput bar skipped");
    }
}
