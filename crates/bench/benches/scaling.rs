//! Scaling of the §4.2 metric evaluation with |A| and |M|.
//!
//! The Fig. 3 experiment evaluates 1000 mappings; this bench shows the
//! per-mapping cost is linear in the problem size, so full-paper sweeps are
//! milliseconds and parameter studies are cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::{makespan_robustness, Mapping};
use fepia_stats::rng_for;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");

    // Scale applications at fixed machines.
    for &apps in &[20usize, 80, 320, 1280] {
        let params = EtcParams {
            apps,
            machines: 5,
            ..EtcParams::paper_section_4_2()
        };
        let etc = generate_cvb(&mut rng_for(2, 0), &params);
        let mapping = Mapping::random(&mut rng_for(2, 1), apps, 5);
        group.throughput(Throughput::Elements(apps as u64));
        group.bench_with_input(BenchmarkId::new("apps", apps), &apps, |b, _| {
            b.iter(|| makespan_robustness(black_box(&mapping), black_box(&etc), 1.2).unwrap())
        });
    }

    // Scale machines at fixed applications.
    for &machines in &[5usize, 20, 80] {
        let params = EtcParams {
            apps: 320,
            machines,
            ..EtcParams::paper_section_4_2()
        };
        let etc = generate_cvb(&mut rng_for(3, 0), &params);
        let mapping = Mapping::random(&mut rng_for(3, 1), 320, machines);
        group.throughput(Throughput::Elements(machines as u64));
        group.bench_with_input(BenchmarkId::new("machines", machines), &machines, |b, _| {
            b.iter(|| makespan_robustness(black_box(&mapping), black_box(&etc), 1.2).unwrap())
        });
    }

    // The full Fig. 3 paper-scale sweep body (ETC + 1000 mappings),
    // sequential, as the end-to-end unit.
    group.bench_function("fig3_paper_sweep_sequential", |b| {
        let params = EtcParams::paper_section_4_2();
        let etc = generate_cvb(&mut rng_for(4, 0), &params);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1_000u64 {
                let m = Mapping::random(&mut rng_for(4, i + 1), params.apps, params.machines);
                acc += makespan_robustness(&m, &etc, 1.2).unwrap().metric;
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
