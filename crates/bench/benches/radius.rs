//! Ablation: analytic (Eq. 6 hyperplane) vs generic numeric radius.
//!
//! Measures the cost of the exact closed form, the generic analysis path
//! that *detects* linearity, and the black-box numeric solver forced to
//! treat the same function as non-linear — i.e. what the FePIA generality
//! costs when you don't exploit structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fepia_core::{
    radius::robustness_radius, FeatureSpec, FnImpact, Perturbation, RadiusOptions, SumSelected,
    Tolerance,
};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::{makespan_robustness, Mapping};
use fepia_optim::VecN;
use fepia_stats::rng_for;
use std::hint::black_box;

fn bench_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("radius");
    for &apps in &[20usize, 100, 400] {
        let params = EtcParams {
            apps,
            machines: 5,
            ..EtcParams::paper_section_4_2()
        };
        let etc = generate_cvb(&mut rng_for(1, 0), &params);
        let mapping = Mapping::random(&mut rng_for(1, 1), apps, 5);

        group.bench_with_input(BenchmarkId::new("analytic_eq6", apps), &apps, |b, _| {
            b.iter(|| makespan_robustness(black_box(&mapping), black_box(&etc), 1.2).unwrap())
        });

        // Generic path, one machine's feature: linearity detected.
        let on0 = mapping.apps_on(0);
        let c_orig = VecN::new(mapping.assigned_times(&etc));
        let bound = 1.2 * mapping.makespan(&etc);
        let pert = Perturbation::continuous("C", c_orig.clone());
        let feature = FeatureSpec::new("F_0", Tolerance::upper(bound));
        let linear_impact = SumSelected::new(on0.clone(), apps);
        group.bench_with_input(BenchmarkId::new("generic_linear", apps), &apps, |b, _| {
            b.iter(|| {
                robustness_radius(
                    black_box(&feature),
                    black_box(&linear_impact),
                    black_box(&pert),
                    &RadiusOptions::default(),
                )
                .unwrap()
            })
        });

        // Same function as an opaque closure: numeric solver engaged.
        let on0c = on0.clone();
        let blackbox =
            FnImpact::new(move |v: &VecN| on0c.iter().map(|&i| v[i]).sum::<f64>()).with_dim(apps);
        group.bench_with_input(BenchmarkId::new("numeric_blackbox", apps), &apps, |b, _| {
            b.iter(|| {
                robustness_radius(
                    black_box(&feature),
                    black_box(&blackbox),
                    black_box(&pert),
                    &RadiusOptions::default(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_radius);
criterion_main!(benches);
