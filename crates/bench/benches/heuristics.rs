//! Mapping heuristic cost on the paper's 20×5 instance and a larger 100×10
//! one. (Quality comparisons live in the `heuristic_comparison` example;
//! this measures time.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::heuristics::all_heuristics;
use fepia_stats::rng_for;
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    for &(apps, machines) in &[(20usize, 5usize), (100, 10)] {
        let params = EtcParams {
            apps,
            machines,
            ..EtcParams::paper_section_4_2()
        };
        let etc = generate_cvb(&mut rng_for(8, 0), &params);
        for h in all_heuristics(500) {
            group.bench_with_input(
                BenchmarkId::new(h.name(), format!("{apps}x{machines}")),
                &etc,
                |b, etc| {
                    b.iter(|| {
                        let mut rng = rng_for(8, 1);
                        black_box(h.map(etc, &mut rng))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
