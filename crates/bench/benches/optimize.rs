//! Optimizer-job throughput: seeded heuristic populations through the
//! [`fepia_serve::JobTable`] (the PR 10 tentpole bench).
//!
//! Backs the README "Optimizer jobs" section. An annealing-heavy
//! population is run as one job on the §4.2 system (20 apps × 5
//! machines): every candidate is a pure function of `(seed, k)`, every
//! annealing step is one [`fepia_mapping::DeltaEval`] probe, and the
//! results fold into a makespan × robustness Pareto front in index
//! order. Reported: sustained delta-evals/sec through the whole job
//! machinery (admission, batching, fan-out, front folds, snapshot
//! publication) and the mean cost of one incremental front update
//! ([`ParetoFront::offer`]) over a large adversarial candidate stream.
//!
//! Acceptance bars (checked in as `BENCH_optimize.json`, enforced by
//! `scripts/check_bench.sh`): ≥ 1_000_000 delta-evals/sec and a mean
//! front update ≤ 5 µs.
//!
//! Correctness first: before timing, the same seed is run twice at
//! different thread counts and the front digests must match bitwise.
//! Custom harness (`harness = false`): full run via
//! `cargo bench --bench optimize`; under `cargo test` (`--test` flag) a
//! quick pass checks the determinism oracle and skips the bars.

use fepia_bench::outdir::results_dir;
use fepia_etc::{generate_cvb, EtcMatrix, EtcParams};
use fepia_mapping::{FrontPoint, ParetoFront};
use fepia_serve::{JobHeuristic, JobSpec, JobTable, JobTableConfig};
use fepia_stats::rng_for;
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;

fn bench_spec(etc: &Arc<EtcMatrix>, quick: bool) -> JobSpec {
    let iterations = if quick { 2_000 } else { 100_000 };
    let population = if quick { 16 } else { 256 };
    JobSpec {
        etc: Arc::clone(etc),
        tau: 1.2,
        seed: 2003,
        population,
        batches: 8,
        heuristics: vec![JobHeuristic::Annealing {
            iterations,
            initial_temperature: 0.1,
            cooling: 0.9999,
        }],
        threads: 0,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let etc = Arc::new(generate_cvb(
        &mut rng_for(2003, 1_000),
        &EtcParams::paper_section_4_2(),
    ));
    let table = JobTable::new(JobTableConfig::default());

    // Determinism oracle: the same seed at 1 and 2 worker threads must
    // serve a bitwise-identical front before any number is trusted.
    let mut probe = bench_spec(&etc, true);
    probe.threads = 1;
    let one = table.run(probe.clone()).expect("probe job runs");
    probe.threads = 2;
    let two = table.run(probe).expect("probe job runs");
    assert_eq!(
        ParetoFront::from_points(one.front.clone()).digest(),
        ParetoFront::from_points(two.front.clone()).digest(),
        "front digest drifted across thread counts"
    );

    // Timed job: the whole pipeline (admission, batch fan-out, delta
    // evaluations, index-order folds, snapshot publication).
    let spec = bench_spec(&etc, quick);
    let (population, batches) = (spec.population, spec.batches);
    let t0 = Instant::now();
    let snap = table.run(spec).expect("bench job runs");
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(snap.evals_done, snap.evals_total, "job must finish");
    let delta_evals_per_sec = snap.evals_done as f64 / elapsed;

    // Front-update latency: fold a large adversarial candidate stream
    // (random coordinates — inserts, rejections, and evictions all hit)
    // and charge the mean per offer.
    let updates: u64 = if quick { 10_000 } else { 1_000_000 };
    let mut rng = rng_for(2003, 2_000);
    let candidates: Vec<FrontPoint> = (0..updates)
        .map(|k| FrontPoint {
            index: k,
            makespan: rng.gen_range(1.0..100.0),
            metric: rng.gen_range(0.1..10.0),
            heuristic: String::new(),
            assignment: Vec::new(),
        })
        .collect();
    let mut front = ParetoFront::new();
    let t1 = Instant::now();
    for c in candidates {
        front.offer(c);
    }
    let front_update_us = t1.elapsed().as_secs_f64() * 1e6 / updates as f64;

    println!(
        "optimizer job ({} apps x {} machines, population {population}, {batches} batches):",
        etc.apps(),
        etc.machines()
    );
    println!(
        "  delta-evals/sec: {delta_evals_per_sec:>12.0} (bar: 1000000) over {} evals in {elapsed:.3} s",
        snap.evals_done
    );
    println!(
        "  front update: {front_update_us:.4} us mean over {updates} offers (bar: 5 us), final front {} points",
        front.len()
    );

    if !quick {
        let json = format!(
            "{{\n  \"bench\": \"optimize\",\n  \"apps\": {},\n  \"machines\": {},\n  \"population\": {},\n  \"batches\": {},\n  \"evals\": {},\n  \"elapsed_s\": {:.3},\n  \"delta_evals_per_sec\": {:.0},\n  \"front_update_us\": {:.4},\n  \"front_points\": {},\n  \"delta_evals_threshold\": 1000000.0,\n  \"front_update_us_threshold\": 5.0\n}}\n",
            etc.apps(),
            etc.machines(),
            population,
            batches,
            snap.evals_done,
            elapsed,
            delta_evals_per_sec,
            front_update_us,
            front.len()
        );
        let path = results_dir().join("BENCH_optimize.json");
        std::fs::write(&path, json).expect("write BENCH_optimize.json");
        println!("wrote {}", path.display());
        assert!(
            delta_evals_per_sec >= 1_000_000.0,
            "delta-eval throughput {delta_evals_per_sec:.0}/s below the 1M bar"
        );
        assert!(
            front_update_us <= 5.0,
            "mean front update {front_update_us:.4} us above the 5 us bar"
        );
        println!("OK: throughput and front-update bars met");
    } else {
        println!("quick mode: determinism oracle checked, throughput bars skipped");
    }
}
