//! Norm ablation: the robustness metric under ℓ₁ / ℓ₂ / ℓ∞ / weighted-ℓ₂,
//! via the generic analysis path on the §4.2 system (all-affine impacts, so
//! every norm has an exact dual-norm radius).
//!
//! Besides cost, the run prints the metric under each norm once, making the
//! ordering `ρ_∞ ≤ ρ₂ ≤ ρ₁` visible in bench logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fepia_core::RadiusOptions;
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::{makespan_robustness_generic, Mapping};
use fepia_optim::Norm;
use fepia_stats::rng_for;
use std::hint::black_box;

fn bench_norms(c: &mut Criterion) {
    let params = EtcParams::paper_section_4_2();
    let etc = generate_cvb(&mut rng_for(10, 0), &params);
    let mapping = Mapping::random(&mut rng_for(10, 1), params.apps, params.machines);
    let norms: Vec<(&str, Norm)> = vec![
        ("l1", Norm::L1),
        ("l2", Norm::L2),
        ("linf", Norm::LInf),
        ("weighted_l2", Norm::WeightedL2(vec![2.0; params.apps])),
    ];

    for (name, norm) in &norms {
        let opts = RadiusOptions {
            norm: norm.clone(),
            solver: Default::default(),
        };
        let metric = makespan_robustness_generic(&mapping, &etc, 1.2, &opts)
            .unwrap()
            .metric;
        println!("norm {name}: ρ = {metric:.4}");
    }

    let mut group = c.benchmark_group("norms");
    for (name, norm) in norms {
        let opts = RadiusOptions {
            norm,
            solver: Default::default(),
        };
        group.bench_with_input(BenchmarkId::new("metric", name), &opts, |b, opts| {
            b.iter(|| {
                black_box(
                    makespan_robustness_generic(&mapping, &etc, 1.2, opts)
                        .unwrap()
                        .metric,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_norms);
criterion_main!(benches);
