//! Proof that the fepia-obs disabled path is free.
//!
//! The acceptance bar is "< 2% overhead on `robustness_radius` with
//! `FEPIA_OBS` unset". A before/after comparison against un-instrumented
//! code is impossible (the un-instrumented solver no longer exists), so the
//! bench bounds the overhead from above instead: it measures (a) one full
//! numeric `robustness_radius` solve with observability disabled and (b) the
//! cost of the disabled-path instrumentation primitives themselves
//! (`enabled()` checks and inert `SpanGuard`s), then charges a generous 10
//! primitive operations per solve (the real count is 4: two spans and two
//! `enabled()` branches). The bound must come out below 2%.
//!
//! The same bound is established for the request-tracing layer: with
//! `FEPIA_TRACE` unset, every span site in the TCP request path costs one
//! relaxed `trace_enabled()` load. The bench measures a real traced-path
//! TCP round-trip (tracing off), measures the disabled trace primitive,
//! charges a generous 16 primitives per request (the real count is 7:
//! client mint + send/recv, server read/write, queue.wait, worker.exec)
//! and asserts the bound stays under the same 2% budget.
//!
//! Custom harness (`harness = false`): run with
//! `cargo bench --bench obs_overhead`; under `cargo test` (`--test` flag)
//! it does one quick pass with the same assertion.

use fepia_core::{
    robustness_radius, FeatureSpec, FnImpact, Perturbation, RadiusOptions, Tolerance,
};
use fepia_net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia_optim::VecN;
use fepia_serve::workload::{request, scenario_pool, WorkloadSpec};
use fepia_serve::Service;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn solve_once() -> f64 {
    let impact = FnImpact::new(|v: &VecN| v.dot(v) + (v[0] * v[1]).tanh()).with_dim(3);
    let pert = Perturbation::continuous("p", VecN::from([0.1, -0.2, 0.3]));
    let feature = FeatureSpec::new("f", Tolerance::upper(9.0));
    robustness_radius(&feature, &impact, &pert, &RadiusOptions::default())
        .expect("radius solve")
        .radius
}

/// Median of per-call nanoseconds over `samples` batches of `batch` calls.
fn time_ns<F: FnMut()>(mut f: F, batch: u64, samples: usize) -> f64 {
    let mut xs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        xs.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    assert!(
        !fepia_obs::enabled(),
        "obs must be disabled for the overhead bound (unset FEPIA_OBS)"
    );

    let (solve_batch, solve_samples, prim_batch) = if quick {
        (1, 5, 10_000)
    } else {
        (4, 25, 1_000_000)
    };

    // Warm-up.
    black_box(solve_once());

    let solve_ns = time_ns(
        || {
            black_box(solve_once());
        },
        solve_batch,
        solve_samples,
    );

    // The complete disabled-path footprint of one instrumented call:
    // an `enabled()` load plus an inert span guard, measured together.
    let prim_ns = time_ns(
        || {
            black_box(fepia_obs::enabled());
            let g = fepia_obs::SpanGuard::enter("bench.noop");
            black_box(&g);
        },
        prim_batch,
        15,
    );

    const PRIMITIVES_PER_SOLVE: f64 = 10.0; // real count is 4; bound generously
    let overhead_pct = 100.0 * PRIMITIVES_PER_SOLVE * prim_ns / solve_ns;
    println!("robustness_radius (obs disabled): {solve_ns:.0} ns/solve");
    println!("disabled instrumentation primitive: {prim_ns:.2} ns");
    println!(
        "bounded overhead: {PRIMITIVES_PER_SOLVE} x {prim_ns:.2} ns = {overhead_pct:.4}% of a solve"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled-path overhead bound {overhead_pct:.3}% exceeds the 2% budget"
    );
    println!("OK: disabled-path overhead bound is below 2%");

    // --- Traced TCP path, tracing disabled -------------------------------
    assert!(
        !fepia_obs::trace_enabled(),
        "tracing must be disabled for the overhead bound (unset FEPIA_TRACE)"
    );

    let spec = WorkloadSpec::default();
    let pool = scenario_pool(&spec);
    let service = Arc::new(Service::start(Default::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("start TCP server");
    let mut client =
        NetClient::connect(server.local_addr(), ClientConfig::default()).expect("connect client");

    // Warm the plan caches so the round-trip measures the steady state the
    // span sites sit on, not one-off compilation.
    for i in 0..32u64 {
        black_box(client.call(&request(&spec, &pool, i)).expect("warm call"));
    }

    let (rt_batch, rt_samples) = if quick { (8, 5) } else { (64, 25) };
    let mut i = 0u64;
    let roundtrip_ns = time_ns(
        || {
            let req = request(&spec, &pool, 1_000 + i % 32);
            black_box(client.call(&req).expect("bench call"));
            i += 1;
        },
        rt_batch,
        rt_samples,
    );

    // One span site's disabled footprint: a relaxed trace_enabled() load.
    let trace_prim_ns = time_ns(
        || {
            black_box(fepia_obs::trace_enabled());
        },
        prim_batch,
        15,
    );

    server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("server released its service handle")
        .shutdown();

    const SPAN_SITES_PER_REQUEST: f64 = 16.0; // real count is 7; bound generously
    let trace_pct = 100.0 * SPAN_SITES_PER_REQUEST * trace_prim_ns / roundtrip_ns;
    println!("TCP round-trip (trace disabled): {roundtrip_ns:.0} ns/request");
    println!("disabled trace primitive: {trace_prim_ns:.2} ns");
    println!(
        "bounded trace overhead: {SPAN_SITES_PER_REQUEST} x {trace_prim_ns:.2} ns = {trace_pct:.4}% of a round-trip"
    );
    assert!(
        trace_pct < 2.0,
        "disabled-trace overhead bound {trace_pct:.3}% exceeds the 2% budget"
    );
    println!("OK: disabled-trace TCP overhead bound is below 2%");
}
