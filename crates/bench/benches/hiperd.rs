//! HiPer-D robustness cost: path count, feature count, and the
//! linear-fast-path vs numeric-solver ablation on the same system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fepia_core::RadiusOptions;
use fepia_hiperd::loadfn::{LoadFn, Shape};
use fepia_hiperd::path::enumerate_paths;
use fepia_hiperd::robustness::load_robustness_with_paths;
use fepia_hiperd::slack::system_slack_with_paths;
use fepia_hiperd::{generate_system, GenParams, HiperdMapping};
use fepia_stats::rng_for;
use std::hint::black_box;

fn bench_hiperd(c: &mut Criterion) {
    let mut group = c.benchmark_group("hiperd");

    // Robustness cost vs system scale (paths/features grow together).
    for &(apps, target_paths) in &[(10usize, 8usize), (20, 19), (40, 40)] {
        let params = GenParams {
            apps,
            target_paths,
            ..GenParams::paper_section_4_3()
        };
        let sys = generate_system(&mut rng_for(5, apps as u64), &params);
        let paths = enumerate_paths(&sys);
        let mapping = HiperdMapping::random(&mut rng_for(5, 999), apps, sys.n_machines);
        let opts = RadiusOptions::default();
        group.bench_with_input(
            BenchmarkId::new(
                "robustness_linear",
                format!("{apps}apps_{}paths", paths.len()),
            ),
            &apps,
            |b, _| {
                b.iter(|| {
                    load_robustness_with_paths(black_box(&sys), black_box(&mapping), &paths, &opts)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("slack", format!("{apps}apps_{}paths", paths.len())),
            &apps,
            |b, _| b.iter(|| system_slack_with_paths(black_box(&sys), black_box(&mapping), &paths)),
        );
    }

    // Ablation: the same paper-scale system with every computation function
    // made nonlinear (Power 1.5) — forces the numeric solver per feature.
    let params = GenParams::paper_section_4_3();
    let mut sys = generate_system(&mut rng_for(6, 0), &params);
    let paths = enumerate_paths(&sys);
    let mapping = HiperdMapping::random(&mut rng_for(6, 999), sys.n_apps, sys.n_machines);
    let opts = RadiusOptions::default();
    group.bench_function("robustness_linear_paper", |b| {
        b.iter(|| load_robustness_with_paths(&sys, &mapping, &paths, &opts).unwrap())
    });
    for row in &mut sys.comp {
        for f in row {
            // Re-shape to u^1.5 with the scale adjusted to preserve rough
            // magnitudes at the operating point (value^1.5 would explode).
            let approx_u: f64 = f
                .coeffs
                .iter()
                .zip(&[962.0, 380.0, 240.0])
                .map(|(b, l)| b * l)
                .sum();
            let rescale = if approx_u > 0.0 {
                approx_u.powf(-0.5)
            } else {
                1.0
            };
            *f = LoadFn::new(f.coeffs.clone(), Shape::Power(1.5), f.scale * rescale);
        }
    }
    group.bench_function("robustness_nonlinear_paper", |b| {
        b.iter(|| load_robustness_with_paths(&sys, &mapping, &paths, &opts).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_hiperd);
criterion_main!(benches);
