//! Degradation-curve throughput: the amortization gate.
//!
//! A `Curve` request answers N tolerance levels off *one* compiled plan —
//! one compilation, one warm workspace, N tolerance swaps — where the
//! naive client would issue N single-τ `Verdict` requests, each paying a
//! full scenario compile. Two figures are recorded and gated:
//!
//! * **curve points/sec** — τ levels answered per second by repeated
//!   warm-cache `Curve` requests (33-level dense grid) against a running
//!   service;
//! * **warm-vs-cold amortization ratio** — curve points/sec divided by
//!   the points/sec of the equivalent per-level single-τ `Verdict`
//!   stream, where every level is a fresh scenario fingerprint and
//!   therefore a fresh compile (the pre-curve serving cost). The bar is
//!   2x; the curve path shares the compile and the affine bracketing, so
//!   anything lower means the sweep engine lost its reason to exist.
//!
//! Results go to `results/BENCH_curve.json` (`$FEPIA_RESULTS` honored)
//! and are gated by `scripts/check_bench.sh` against the checked-in
//! thresholds. Under `cargo test` (`--test` flag) a quick pass checks the
//! plumbing and skips the bars.

use fepia_bench::outdir::results_dir;
use fepia_core::dense_grid;
use fepia_serve::workload::{scenario_pool, WorkloadSpec};
use fepia_serve::{
    CacheOutcome, CurveGrid, CurveSpec, EvalKind, EvalRequest, Scenario, Service, ServiceConfig,
};
use std::sync::Arc;
use std::time::Instant;

const CURVE_POINTS_BAR: f64 = 50_000.0;
const AMORTIZATION_BAR: f64 = 2.0;

fn bench_spec() -> WorkloadSpec {
    WorkloadSpec {
        seed: 9_009,
        scenarios: 4,
        apps: 64,
        machines: 8,
        ..WorkloadSpec::default()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let spec = bench_spec();
    let pool = scenario_pool(&spec);
    // Depth-5 dense dyadic grid: 33 τ levels per curve request.
    let levels = dense_grid(1.0, 3.0, 5);
    let (warm_sweeps, cold_sweeps): (u64, u64) = if quick { (4, 2) } else { (400, 40) };

    let service = Service::start(ServiceConfig {
        shards: 1,
        workers_per_shard: 1,
        cache_capacity: 64,
        ..ServiceConfig::default()
    });
    let curve_req = |id: u64, s: usize| EvalRequest {
        id,
        scenario: Arc::clone(&pool[s]),
        kind: EvalKind::Curve(CurveSpec {
            grid: CurveGrid::Explicit(levels.clone()),
        }),
    };

    // Populate the plan cache so the curve phase measures the warm path.
    for s in 0..pool.len() {
        let resp = service
            .call_blocking(curve_req(s as u64, s))
            .expect("warmup accepted");
        assert_eq!(resp.verdicts.len(), levels.len());
    }

    // Warm: repeated curve requests, every one a plan-cache hit.
    let t0 = Instant::now();
    for i in 0..warm_sweeps {
        let resp = service
            .call_blocking(curve_req(1_000 + i, (i as usize) % pool.len()))
            .expect("warm curve accepted");
        assert_eq!(resp.cache, Some(CacheOutcome::Hit), "warm phase must hit");
        assert_eq!(resp.verdicts.len(), levels.len());
    }
    let warm_elapsed = t0.elapsed().as_secs_f64();
    let warm_points = warm_sweeps * levels.len() as u64;
    let curve_points_per_sec = warm_points as f64 / warm_elapsed;

    // Cold: the same τ levels as independent single-τ Verdict requests.
    // Each level is a distinct scenario fingerprint (τ jittered per sweep
    // so no sweep revisits a cached plan) — every point pays the compile
    // a curve request pays once.
    let base = &pool[0];
    let t0 = Instant::now();
    for i in 0..cold_sweeps {
        for (k, &tau) in levels.iter().enumerate() {
            let solo = Arc::new(
                Scenario::new(
                    Arc::clone(base.etc()),
                    base.mapping().clone(),
                    tau + 1e-7 * (i as f64 + 1.0),
                    base.opts().clone(),
                )
                .expect("jittered tau stays valid"),
            );
            let resp = service
                .call_blocking(EvalRequest {
                    id: 100_000 + i * levels.len() as u64 + k as u64,
                    scenario: solo,
                    kind: EvalKind::Verdict,
                })
                .expect("cold verdict accepted");
            assert_eq!(
                resp.cache,
                Some(CacheOutcome::Compiled),
                "cold phase must compile every point"
            );
        }
    }
    let cold_elapsed = t0.elapsed().as_secs_f64();
    let cold_points = cold_sweeps * levels.len() as u64;
    let cold_points_per_sec = cold_points as f64 / cold_elapsed;
    let amortization = curve_points_per_sec / cold_points_per_sec;

    service.shutdown();

    println!(
        "curve ({} levels, {} apps x {} machines):",
        levels.len(),
        spec.apps,
        spec.machines
    );
    println!(
        "  warm: {warm_points} points in {warm_elapsed:.3} s -> {curve_points_per_sec:.0} \
         points/sec (bar: >= {CURVE_POINTS_BAR})"
    );
    println!(
        "  cold: {cold_points} points in {cold_elapsed:.3} s -> {cold_points_per_sec:.0} \
         points/sec (one compile per point)"
    );
    println!("  amortization ratio: {amortization:.2}x (bar: >= {AMORTIZATION_BAR})");

    if quick {
        assert!(amortization.is_finite() && amortization > 0.0);
        println!("quick mode: plumbing checked, throughput bars skipped");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"curve\",\n  \"levels\": {},\n  \"apps\": {},\n  \"machines\": {},\n  \"warm_sweeps\": {warm_sweeps},\n  \"cold_sweeps\": {cold_sweeps},\n  \"curve_points_per_sec\": {curve_points_per_sec:.0},\n  \"cold_points_per_sec\": {cold_points_per_sec:.0},\n  \"warm_cold_ratio\": {amortization:.2},\n  \"curve_points_threshold\": {CURVE_POINTS_BAR:.1},\n  \"amortization_threshold\": {AMORTIZATION_BAR:.1}\n}}\n",
        levels.len(),
        spec.apps,
        spec.machines,
    );
    let path = results_dir().join("BENCH_curve.json");
    std::fs::write(&path, json).expect("write BENCH_curve.json");
    println!("wrote {}", path.display());

    assert!(
        curve_points_per_sec >= CURVE_POINTS_BAR,
        "curve throughput regressed: {curve_points_per_sec:.0} < {CURVE_POINTS_BAR} points/sec"
    );
    assert!(
        amortization >= AMORTIZATION_BAR,
        "curve amortization regressed: {amortization:.2}x < {AMORTIZATION_BAR}x"
    );
}
