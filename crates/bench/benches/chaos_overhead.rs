//! Proof that the fepia-chaos disabled path is free (PR 3 acceptance).
//!
//! The acceptance bar is "< 2% overhead on the verdict evaluation path with
//! `FEPIA_CHAOS` unset". Like `obs_overhead`, the bench bounds the overhead
//! from above: it measures (a) one full numeric `evaluate_verdict` solve
//! with chaos disabled and (b) the disabled-path cost of the chaos
//! primitives themselves (`enabled()` plus an inert `poison_f64`), then
//! charges a generous 32 primitive operations per evaluation (far more
//! sites than any single verdict actually crosses). The bound must come out
//! below 2%. The exact (PR 2) path is timed alongside as an informational
//! end-to-end comparison and recorded in `BENCH_chaos.json`.
//!
//! Custom harness (`harness = false`): run with
//! `cargo bench --bench chaos_overhead`; under `cargo test` (`--test` flag)
//! it does one quick pass with the same assertion.

use fepia_bench::outdir::results_dir;
use fepia_core::{
    AnalysisPlan, FeatureSpec, FepiaAnalysis, FnImpact, Perturbation, RadiusOptions,
    ResiliencePolicy, Tolerance,
};
use fepia_optim::VecN;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn plan() -> Arc<AnalysisPlan> {
    let mut analysis =
        FepiaAnalysis::new(Perturbation::continuous("p", VecN::from([0.1, -0.2, 0.3])));
    analysis.add_feature(
        FeatureSpec::new("f", Tolerance::upper(9.0)),
        FnImpact::new(|v: &VecN| v.dot(v) + (v[0] * v[1]).tanh()).with_dim(3),
    );
    analysis
        .compile(&RadiusOptions::default())
        .expect("compiles")
}

/// Median of per-call nanoseconds over `samples` batches of `batch` calls.
fn time_ns<F: FnMut()>(mut f: F, batch: u64, samples: usize) -> f64 {
    let mut xs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        xs.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    assert!(
        !fepia_chaos::enabled(),
        "chaos must be disabled for the overhead bound (unset FEPIA_CHAOS)"
    );

    let (solve_batch, solve_samples, prim_batch) = if quick {
        (1, 5, 10_000)
    } else {
        (4, 25, 1_000_000)
    };

    let plan = plan();
    let origin = VecN::from([0.1, -0.2, 0.3]);
    let policy = ResiliencePolicy::default();

    // Warm-up.
    black_box(plan.evaluate_verdict(&origin, &policy));

    let verdict_ns = time_ns(
        || {
            black_box(plan.evaluate_verdict(&origin, &policy));
        },
        solve_batch,
        solve_samples,
    );
    let exact_ns = time_ns(
        || {
            black_box(plan.evaluate(&origin).expect("evaluates"));
        },
        solve_batch,
        solve_samples,
    );

    // The complete disabled-path footprint of one chaos site: an `enabled()`
    // load plus an inert value-poisoning hook.
    let prim_ns = time_ns(
        || {
            black_box(fepia_chaos::enabled());
            black_box(fepia_chaos::poison_f64("bench.noop", 1.0));
        },
        prim_batch,
        15,
    );

    const PRIMITIVES_PER_EVAL: f64 = 32.0; // real count per verdict is far lower
    let overhead_pct = 100.0 * PRIMITIVES_PER_EVAL * prim_ns / verdict_ns;
    println!("evaluate_verdict (chaos disabled):  {verdict_ns:.0} ns/origin");
    println!("evaluate (exact PR 2 path):         {exact_ns:.0} ns/origin");
    println!("disabled chaos primitive:           {prim_ns:.2} ns");
    println!(
        "bounded overhead: {PRIMITIVES_PER_EVAL} x {prim_ns:.2} ns = {overhead_pct:.4}% of an evaluation"
    );

    if !quick {
        let json = format!(
            "{{\n  \"bench\": \"chaos_overhead\",\n  \"verdict_ns_per_origin\": {verdict_ns:.1},\n  \"exact_ns_per_origin\": {exact_ns:.1},\n  \"disabled_primitive_ns\": {prim_ns:.3},\n  \"primitives_charged_per_eval\": {PRIMITIVES_PER_EVAL},\n  \"bounded_overhead_pct\": {overhead_pct:.4},\n  \"threshold_pct\": 2.0\n}}\n"
        );
        let path = results_dir().join("BENCH_chaos.json");
        std::fs::write(&path, json).expect("write BENCH_chaos.json");
        println!("wrote {}", path.display());
    }
    assert!(
        overhead_pct < 2.0,
        "disabled-path chaos overhead bound {overhead_pct:.3}% exceeds the 2% budget"
    );
    println!("OK: disabled-path chaos overhead bound is below 2%");
}
