//! `fepia-par` — deterministic parallelism substrate.
//!
//! The paper's experiments evaluate 1000 random mappings per system; each
//! evaluation is independent, so the sweeps are embarrassingly parallel.
//! This crate provides the small amount of machinery the harness needs,
//! built directly on `std::thread::scope` (no global thread pool, no
//! work-stealing runtime — the work units are coarse):
//!
//! * [`par_map`] — static chunking; lowest overhead when work items are
//!   uniform (e.g. makespan evaluation).
//! * [`par_map_dynamic`] — an atomic work queue; better when item cost is
//!   skewed (e.g. the numeric robustness solver converges in a varying
//!   number of iterations).
//!
//! Both are **deterministic**: results are returned in input order and each
//! closure receives its item index, so callers that derive per-item RNGs
//! (see `fepia_stats::rng_for`) get bitwise-identical results for any thread
//! count, including 1.
//!
//! # Observability
//!
//! When `fepia-obs` is enabled, the drivers record per-worker items
//! processed, busy vs. idle nanoseconds, and collect-lock contention into
//! the global metrics registry (`par.*`). Instrumentation only observes —
//! results are bitwise identical whether or not it is on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for the parallel drivers.
#[derive(Clone, Copy, Debug)]
pub struct ParConfig {
    /// Worker threads; `None` uses [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Below this many items, run sequentially (thread spawn not worth it).
    pub sequential_below: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: None,
            sequential_below: 32,
        }
    }
}

impl ParConfig {
    /// A config pinned to exactly `n` threads.
    pub fn with_threads(n: usize) -> Self {
        assert!(n > 0, "thread count must be positive");
        ParConfig {
            threads: Some(n),
            sequential_below: 0,
        }
    }

    fn effective_threads(&self, items: usize) -> usize {
        let hw = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        hw.max(1).min(items.max(1))
    }
}

/// Per-worker accounting, recorded into the global registry when obs is on.
struct WorkerStats {
    observe: bool,
    items: u64,
    busy_ns: f64,
    started: Option<Instant>,
}

impl WorkerStats {
    fn begin(observe: bool) -> Self {
        WorkerStats {
            observe,
            items: 0,
            busy_ns: 0.0,
            started: observe.then(Instant::now),
        }
    }

    /// Times one work item; `run` is always executed, timing is optional.
    fn item<U>(&mut self, run: impl FnOnce() -> U) -> U {
        self.items += 1;
        if self.observe {
            let t0 = Instant::now();
            let out = run();
            self.busy_ns += t0.elapsed().as_nanos() as f64;
            out
        } else {
            run()
        }
    }

    /// Flushes this worker's tallies (`driver` is `"static"`/`"dynamic"`).
    fn finish(self, driver: &str) {
        if let Some(started) = self.started {
            let wall_ns = started.elapsed().as_nanos() as f64;
            let reg = fepia_obs::global();
            reg.counter(&format!("par.{driver}.items")).add(self.items);
            reg.histogram(&format!("par.{driver}.items_per_worker"))
                .record(self.items as f64);
            reg.histogram(&format!("par.{driver}.worker.busy_ns"))
                .record(self.busy_ns);
            reg.histogram(&format!("par.{driver}.worker.idle_ns"))
                .record((wall_ns - self.busy_ns).max(0.0));
        }
    }
}

/// Applies `f(index, &item)` to every item, in parallel, returning results in
/// input order. Static contiguous chunking.
///
/// Panics in `f` propagate to the caller (via `std::thread::scope`).
pub fn par_map<T, U, F>(items: &[T], cfg: &ParConfig, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(items, cfg, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker scratch state: `init()` runs once on each
/// worker thread and the resulting state is threaded through every item that
/// worker processes (`f(&mut state, index, &item)`).
///
/// This is the batch driver used by compiled analysis plans: each worker
/// builds one reusable evaluation workspace instead of allocating per item.
/// Determinism is unchanged — results depend only on `(index, item)`, never
/// on which worker ran them, so any state must be pure scratch.
pub fn par_map_with<T, U, S, I, F>(items: &[T], cfg: &ParConfig, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cfg.effective_threads(n);
    if threads == 1 || n < cfg.sequential_below {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    let observe = fepia_obs::enabled();
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        // Hand each worker a disjoint &mut of the output: safe, lock-free.
        for (w, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let init = &init;
            let base = w * chunk;
            let items = &items[base..base + out_chunk.len()];
            s.spawn(move || {
                let mut stats = WorkerStats::begin(observe);
                let mut state = init();
                for (off, (slot, item)) in out_chunk.iter_mut().zip(items.iter()).enumerate() {
                    *slot = Some(stats.item(|| f(&mut state, base + off, item)));
                }
                stats.finish("static");
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("chunk worker skipped a slot"))
        .collect()
}

/// Like [`par_map`], but items are claimed one at a time from an atomic
/// counter, so skewed per-item costs balance across workers. Results are
/// still returned in input order.
pub fn par_map_dynamic<T, U, F>(items: &[T], cfg: &ParConfig, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_dynamic_with(items, cfg, || (), |(), i, t| f(i, t))
}

/// [`par_map_dynamic`] with per-worker scratch state (see [`par_map_with`]).
pub fn par_map_dynamic_with<T, U, S, I, F>(items: &[T], cfg: &ParConfig, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cfg.effective_threads(n);
    if threads == 1 || n < cfg.sequential_below {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    let observe = fepia_obs::enabled();
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let collected = &collected;
            let f = &f;
            let init = &init;
            s.spawn(move || {
                let mut stats = WorkerStats::begin(observe);
                let mut state = init();
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, stats.item(|| f(&mut state, i, &items[i]))));
                }
                // The collect lock is the only shared mutable state; when obs
                // is on, record whether this worker had to wait for it.
                if observe {
                    let t0 = Instant::now();
                    let mut guard = match collected.try_lock() {
                        Ok(g) => g,
                        Err(_) => {
                            fepia_obs::global()
                                .counter("par.dynamic.collect_contended")
                                .inc();
                            collected.lock().expect("collect lock poisoned")
                        }
                    };
                    guard.extend(local);
                    drop(guard);
                    fepia_obs::global()
                        .histogram("par.dynamic.collect_wait_ns")
                        .record(t0.elapsed().as_nanos() as f64);
                } else {
                    collected
                        .lock()
                        .expect("collect lock poisoned")
                        .extend(local);
                }
                stats.finish("dynamic");
            });
        }
    });

    let mut pairs = collected.into_inner().expect("collect lock poisoned");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// Why a task in the catching driver failed after all attempts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError {
    /// The task closure (or an injected fault) panicked on every attempt.
    Panicked {
        /// Attempts consumed (initial run + re-dispatches).
        attempts: usize,
        /// The last panic's message.
        message: String,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked { attempts, message } => {
                write!(f, "task panicked after {attempts} attempts: {message}")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// Panic-containment policy for [`par_map_dynamic_catch_with`].
#[derive(Clone, Copy, Debug)]
pub struct CatchConfig {
    /// Total attempts per task: the initial run plus bounded re-dispatches
    /// of quarantined (panicked) tasks. `1` disables re-dispatch.
    pub max_attempts: usize,
}

impl Default for CatchConfig {
    fn default() -> Self {
        CatchConfig { max_attempts: 2 }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-isolating variant of [`par_map_dynamic_with`]: each task runs under
/// `catch_unwind`, so one panicking item (a poisoned input, a buggy impact
/// function, an injected fault) cannot abort the whole sweep.
///
/// A panicked task is **quarantined** instead of retried in place: its
/// worker re-initializes its scratch state (the panic may have left it
/// inconsistent) and moves on, and the quarantined indices are re-dispatched
/// together in up to `catch.max_attempts − 1` follow-up rounds. Tasks that
/// panic on every attempt resolve to [`TaskError::Panicked`] carrying the
/// last panic message; everything else resolves to `Ok`, in input order —
/// the call itself never panics and never hangs.
///
/// Fault-injection hooks: when `fepia-chaos` is enabled, each task may
/// receive an artificial latency spike (`par.task` delay site) or an
/// injected panic (`par.task` panic site) before the real work runs.
/// Disabled, both hooks are one relaxed atomic load.
///
/// When `fepia-obs` is enabled, `par.catch.panics` / `par.catch.redispatched`
/// / `par.catch.failed` count containment activity.
pub fn par_map_dynamic_catch_with<T, U, S, I, F>(
    items: &[T],
    cfg: &ParConfig,
    catch: &CatchConfig,
    init: I,
    f: F,
) -> Vec<Result<U, TaskError>>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let max_attempts = catch.max_attempts.max(1);
    let observe = fepia_obs::enabled();

    // One guarded execution of task `i` against the given worker state;
    // rebuilds the state after a panic (it may be mid-mutation).
    let run_one = |state: &mut S, i: usize| -> Result<U, String> {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            fepia_chaos::maybe_delay("par.task");
            fepia_chaos::maybe_panic("par.task");
            f(state, i, &items[i])
        }));
        match attempt {
            Ok(u) => Ok(u),
            Err(payload) => {
                *state = init(); // self-heal: discard possibly-corrupt scratch
                if observe {
                    fepia_obs::global().counter("par.catch.panics").inc();
                }
                Err(panic_message(payload))
            }
        }
    };

    let mut out: Vec<Option<Result<U, TaskError>>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<usize> = (0..n).collect();

    for attempt in 1..=max_attempts {
        if pending.is_empty() {
            break;
        }
        let threads = cfg.effective_threads(pending.len());
        let round: Vec<(usize, Result<U, String>)> =
            if threads == 1 || pending.len() < cfg.sequential_below {
                let mut state = init();
                pending
                    .iter()
                    .map(|&i| (i, run_one(&mut state, i)))
                    .collect()
            } else {
                let next = AtomicUsize::new(0);
                let collected: Mutex<Vec<(usize, Result<U, String>)>> =
                    Mutex::new(Vec::with_capacity(pending.len()));
                let pending_ref = &pending;
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        let next = &next;
                        let collected = &collected;
                        let run_one = &run_one;
                        let init = &init;
                        s.spawn(move || {
                            let mut state = init();
                            let mut local: Vec<(usize, Result<U, String>)> = Vec::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= pending_ref.len() {
                                    break;
                                }
                                let i = pending_ref[k];
                                local.push((i, run_one(&mut state, i)));
                            }
                            collected
                                .lock()
                                .expect("collect lock poisoned")
                                .extend(local);
                        });
                    }
                });
                collected.into_inner().expect("collect lock poisoned")
            };

        let mut failed: Vec<usize> = Vec::new();
        for (i, res) in round {
            match res {
                Ok(u) => out[i] = Some(Ok(u)),
                Err(message) => {
                    if attempt == max_attempts {
                        out[i] = Some(Err(TaskError::Panicked {
                            attempts: attempt,
                            message,
                        }));
                    } else {
                        failed.push(i);
                    }
                }
            }
        }
        if observe && !failed.is_empty() {
            fepia_obs::global()
                .counter("par.catch.redispatched")
                .add(failed.len() as u64);
        }
        failed.sort_unstable();
        pending = failed;
    }

    if observe {
        let failures = out.iter().filter(|r| matches!(r, Some(Err(_)))).count();
        if failures > 0 {
            fepia_obs::global()
                .counter("par.catch.failed")
                .add(failures as u64);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every task resolved"))
        .collect()
}

/// Parallel fold: maps every item and reduces the results with `combine`
/// (which must be associative and commutative). Returns `None` on empty
/// input.
pub fn par_map_reduce<T, U, F, C>(items: &[T], cfg: &ParConfig, f: F, combine: C) -> Option<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
    C: Fn(U, U) -> U,
{
    par_map(items, cfg, f).into_iter().reduce(combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(&[] as &[i32], &ParConfig::default(), |_, x| *x);
        assert!(out.is_empty());
        let out: Vec<i32> = par_map_dynamic(&[] as &[i32], &ParConfig::default(), |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let cfg = ParConfig::with_threads(threads);
            assert_eq!(par_map(&items, &cfg, |_, x| x * x), expect);
            assert_eq!(par_map_dynamic(&items, &cfg, |_, x| x * x), expect);
        }
    }

    #[test]
    fn indices_match_positions() {
        let items = vec![10u64, 20, 30, 40, 50];
        let cfg = ParConfig::with_threads(2);
        let out = par_map(&items, &cfg, |i, x| (i, *x));
        for (pos, (i, x)) in out.iter().enumerate() {
            assert_eq!(pos, *i);
            assert_eq!(items[pos], *x);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Per-index "RNG": the result depends only on the index, so any
        // thread count must produce identical output.
        let items: Vec<usize> = (0..777).collect();
        let f = |i: usize, _: &usize| {
            let mut z = i as u64 ^ 0xDEAD_BEEF;
            z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^ (z >> 31)
        };
        let seq = par_map(&items, &ParConfig::with_threads(1), f);
        for threads in [2, 4, 7] {
            assert_eq!(par_map(&items, &ParConfig::with_threads(threads), f), seq);
            assert_eq!(
                par_map_dynamic(&items, &ParConfig::with_threads(threads), f),
                seq
            );
        }
    }

    #[test]
    fn dynamic_handles_skewed_costs() {
        // Items near the front are much more expensive; the dynamic queue
        // must still return correct, ordered results.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_dynamic(&items, &ParConfig::with_threads(4), |i, _| {
            let spins = if i < 4 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(k);
            }
            let _ = acc;
            i as u64
        });
        assert_eq!(out, (0..64).map(|i| i as u64).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_finds_minimum() {
        let items: Vec<f64> = vec![5.0, 2.0, 9.0, 2.5];
        let min = par_map_reduce(&items, &ParConfig::with_threads(2), |_, x| *x, f64::min);
        assert_eq!(min, Some(2.0));
        let none: Option<f64> =
            par_map_reduce(&[] as &[f64], &ParConfig::default(), |_, x| *x, f64::min);
        assert_eq!(none, None);
    }

    #[test]
    fn sequential_fallback_below_threshold() {
        let cfg = ParConfig {
            threads: Some(8),
            sequential_below: 100,
        };
        let items: Vec<i32> = (0..50).collect();
        assert_eq!(
            par_map(&items, &cfg, |_, x| x + 1),
            (1..51).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stateful_drivers_match_sequential_map() {
        // Per-worker scratch state must not leak into results: a reused
        // buffer produces the same output as the stateless drivers for any
        // thread count.
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let init = || Vec::<u64>::new();
        let f = |buf: &mut Vec<u64>, _i: usize, x: &u64| {
            buf.clear();
            buf.push(*x * 3);
            buf[0] + 1
        };
        for threads in [1, 2, 3, 8] {
            let cfg = ParConfig::with_threads(threads);
            assert_eq!(par_map_with(&items, &cfg, init, f), expect);
            assert_eq!(par_map_dynamic_with(&items, &cfg, init, f), expect);
        }
    }

    #[test]
    fn stateful_init_runs_at_most_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..256).collect();
        let inits = AtomicUsize::new(0);
        let out = par_map_dynamic_with(
            &items,
            &ParConfig::with_threads(4),
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i, _| i,
        );
        assert_eq!(out, items);
        assert!(inits.load(Ordering::Relaxed) <= 4, "state not reused");
    }

    #[test]
    fn instrumented_run_records_worker_metrics() {
        fepia_obs::set_enabled(true);
        let items: Vec<u64> = (0..256).collect();
        let out = par_map_dynamic(&items, &ParConfig::with_threads(4), |_, x| x + 1);
        fepia_obs::set_enabled(false);
        assert_eq!(out, (1..257).collect::<Vec<_>>());
        let snap = fepia_obs::global().snapshot();
        assert!(snap.counter("par.dynamic.items").unwrap_or(0) >= 256);
    }

    #[test]
    fn catch_driver_contains_persistent_panics() {
        let items: Vec<i32> = (0..100).collect();
        for threads in [1, 4] {
            let out = par_map_dynamic_catch_with(
                &items,
                &ParConfig::with_threads(threads),
                &CatchConfig::default(),
                || (),
                |(), i, x| {
                    if i == 57 {
                        panic!("poisoned item {i}");
                    }
                    *x * 2
                },
            );
            assert_eq!(out.len(), 100);
            for (i, r) in out.iter().enumerate() {
                if i == 57 {
                    let Err(TaskError::Panicked { attempts, message }) = r else {
                        panic!("item 57 must fail, got {r:?}");
                    };
                    assert_eq!(*attempts, 2);
                    assert!(message.contains("poisoned item 57"));
                } else {
                    assert_eq!(*r, Ok(items[i] * 2));
                }
            }
        }
    }

    #[test]
    fn catch_driver_redispatch_recovers_transient_panics() {
        // A task that panics only on its first attempt must succeed on
        // re-dispatch.
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..64).collect();
        let tries = AtomicUsize::new(0);
        let out = par_map_dynamic_catch_with(
            &items,
            &ParConfig::with_threads(4),
            &CatchConfig { max_attempts: 3 },
            || (),
            |(), i, x| {
                if i == 13 && tries.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("transient");
                }
                *x + 1
            },
        );
        assert_eq!(out[13], Ok(14));
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn catch_driver_heals_worker_state_after_panic() {
        // The worker scratch must be re-initialized after a panic: a state
        // corrupted mid-task must never leak into later items.
        let items: Vec<usize> = (0..200).collect();
        let out = par_map_dynamic_catch_with(
            &items,
            &ParConfig::with_threads(2),
            &CatchConfig { max_attempts: 1 },
            || 0u64, // healthy state is 0
            |state, i, x| {
                assert_eq!(*state, 0, "corrupt state leaked into item {i}");
                if i == 99 {
                    *state = 777; // corrupt, then die
                    panic!("corrupting panic");
                }
                *x as u64
            },
        );
        assert!(matches!(out[99], Err(TaskError::Panicked { .. })));
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 199);
    }

    #[test]
    fn catch_driver_matches_plain_driver_when_nothing_panics() {
        let items: Vec<u64> = (0..300).collect();
        let plain = par_map_dynamic(&items, &ParConfig::with_threads(3), |_, x| x * 7);
        let caught = par_map_dynamic_catch_with(
            &items,
            &ParConfig::with_threads(3),
            &CatchConfig::default(),
            || (),
            |(), _, x| x * 7,
        );
        assert_eq!(
            caught.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            plain
        );
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<i32> = (0..100).collect();
        let _ = par_map(&items, &ParConfig::with_threads(4), |i, _| {
            if i == 57 {
                panic!("injected failure");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        ParConfig::with_threads(0);
    }
}
