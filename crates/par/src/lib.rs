//! `fepia-par` — deterministic parallelism substrate.
//!
//! The paper's experiments evaluate 1000 random mappings per system; each
//! evaluation is independent, so the sweeps are embarrassingly parallel.
//! This crate provides the small amount of machinery the harness needs,
//! built directly on `std::thread::scope` (no global thread pool, no
//! work-stealing runtime — the work units are coarse):
//!
//! * [`par_map`] — static chunking; lowest overhead when work items are
//!   uniform (e.g. makespan evaluation).
//! * [`par_map_dynamic`] — an atomic work queue; better when item cost is
//!   skewed (e.g. the numeric robustness solver converges in a varying
//!   number of iterations).
//!
//! Both are **deterministic**: results are returned in input order and each
//! closure receives its item index, so callers that derive per-item RNGs
//! (see `fepia_stats::rng_for`) get bitwise-identical results for any thread
//! count, including 1.
//!
//! # Observability
//!
//! When `fepia-obs` is enabled, the drivers record per-worker items
//! processed, busy vs. idle nanoseconds, and collect-lock contention into
//! the global metrics registry (`par.*`). Instrumentation only observes —
//! results are bitwise identical whether or not it is on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for the parallel drivers.
#[derive(Clone, Copy, Debug)]
pub struct ParConfig {
    /// Worker threads; `None` uses [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Below this many items, run sequentially (thread spawn not worth it).
    pub sequential_below: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: None,
            sequential_below: 32,
        }
    }
}

impl ParConfig {
    /// A config pinned to exactly `n` threads.
    pub fn with_threads(n: usize) -> Self {
        assert!(n > 0, "thread count must be positive");
        ParConfig {
            threads: Some(n),
            sequential_below: 0,
        }
    }

    fn effective_threads(&self, items: usize) -> usize {
        let hw = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        hw.max(1).min(items.max(1))
    }
}

/// Per-worker accounting, recorded into the global registry when obs is on.
struct WorkerStats {
    observe: bool,
    items: u64,
    busy_ns: f64,
    started: Option<Instant>,
}

impl WorkerStats {
    fn begin(observe: bool) -> Self {
        WorkerStats {
            observe,
            items: 0,
            busy_ns: 0.0,
            started: observe.then(Instant::now),
        }
    }

    /// Times one work item; `run` is always executed, timing is optional.
    fn item<U>(&mut self, run: impl FnOnce() -> U) -> U {
        self.items += 1;
        if self.observe {
            let t0 = Instant::now();
            let out = run();
            self.busy_ns += t0.elapsed().as_nanos() as f64;
            out
        } else {
            run()
        }
    }

    /// Flushes this worker's tallies (`driver` is `"static"`/`"dynamic"`).
    fn finish(self, driver: &str) {
        if let Some(started) = self.started {
            let wall_ns = started.elapsed().as_nanos() as f64;
            let reg = fepia_obs::global();
            reg.counter(&format!("par.{driver}.items")).add(self.items);
            reg.histogram(&format!("par.{driver}.items_per_worker"))
                .record(self.items as f64);
            reg.histogram(&format!("par.{driver}.worker.busy_ns"))
                .record(self.busy_ns);
            reg.histogram(&format!("par.{driver}.worker.idle_ns"))
                .record((wall_ns - self.busy_ns).max(0.0));
        }
    }
}

/// Applies `f(index, &item)` to every item, in parallel, returning results in
/// input order. Static contiguous chunking.
///
/// Panics in `f` propagate to the caller (via `std::thread::scope`).
pub fn par_map<T, U, F>(items: &[T], cfg: &ParConfig, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(items, cfg, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker scratch state: `init()` runs once on each
/// worker thread and the resulting state is threaded through every item that
/// worker processes (`f(&mut state, index, &item)`).
///
/// This is the batch driver used by compiled analysis plans: each worker
/// builds one reusable evaluation workspace instead of allocating per item.
/// Determinism is unchanged — results depend only on `(index, item)`, never
/// on which worker ran them, so any state must be pure scratch.
pub fn par_map_with<T, U, S, I, F>(items: &[T], cfg: &ParConfig, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cfg.effective_threads(n);
    if threads == 1 || n < cfg.sequential_below {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    let observe = fepia_obs::enabled();
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        // Hand each worker a disjoint &mut of the output: safe, lock-free.
        for (w, out_chunk) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let init = &init;
            let base = w * chunk;
            let items = &items[base..base + out_chunk.len()];
            s.spawn(move || {
                let mut stats = WorkerStats::begin(observe);
                let mut state = init();
                for (off, (slot, item)) in out_chunk.iter_mut().zip(items.iter()).enumerate() {
                    *slot = Some(stats.item(|| f(&mut state, base + off, item)));
                }
                stats.finish("static");
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("chunk worker skipped a slot"))
        .collect()
}

/// Like [`par_map`], but items are claimed one at a time from an atomic
/// counter, so skewed per-item costs balance across workers. Results are
/// still returned in input order.
pub fn par_map_dynamic<T, U, F>(items: &[T], cfg: &ParConfig, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_dynamic_with(items, cfg, || (), |(), i, t| f(i, t))
}

/// [`par_map_dynamic`] with per-worker scratch state (see [`par_map_with`]).
pub fn par_map_dynamic_with<T, U, S, I, F>(items: &[T], cfg: &ParConfig, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cfg.effective_threads(n);
    if threads == 1 || n < cfg.sequential_below {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    let observe = fepia_obs::enabled();
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let collected = &collected;
            let f = &f;
            let init = &init;
            s.spawn(move || {
                let mut stats = WorkerStats::begin(observe);
                let mut state = init();
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, stats.item(|| f(&mut state, i, &items[i]))));
                }
                // The collect lock is the only shared mutable state; when obs
                // is on, record whether this worker had to wait for it.
                if observe {
                    let t0 = Instant::now();
                    let mut guard = match collected.try_lock() {
                        Ok(g) => g,
                        Err(_) => {
                            fepia_obs::global()
                                .counter("par.dynamic.collect_contended")
                                .inc();
                            collected.lock().expect("collect lock poisoned")
                        }
                    };
                    guard.extend(local);
                    drop(guard);
                    fepia_obs::global()
                        .histogram("par.dynamic.collect_wait_ns")
                        .record(t0.elapsed().as_nanos() as f64);
                } else {
                    collected
                        .lock()
                        .expect("collect lock poisoned")
                        .extend(local);
                }
                stats.finish("dynamic");
            });
        }
    });

    let mut pairs = collected.into_inner().expect("collect lock poisoned");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), n);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// Parallel fold: maps every item and reduces the results with `combine`
/// (which must be associative and commutative). Returns `None` on empty
/// input.
pub fn par_map_reduce<T, U, F, C>(items: &[T], cfg: &ParConfig, f: F, combine: C) -> Option<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
    C: Fn(U, U) -> U,
{
    par_map(items, cfg, f).into_iter().reduce(combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(&[] as &[i32], &ParConfig::default(), |_, x| *x);
        assert!(out.is_empty());
        let out: Vec<i32> = par_map_dynamic(&[] as &[i32], &ParConfig::default(), |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let cfg = ParConfig::with_threads(threads);
            assert_eq!(par_map(&items, &cfg, |_, x| x * x), expect);
            assert_eq!(par_map_dynamic(&items, &cfg, |_, x| x * x), expect);
        }
    }

    #[test]
    fn indices_match_positions() {
        let items = vec![10u64, 20, 30, 40, 50];
        let cfg = ParConfig::with_threads(2);
        let out = par_map(&items, &cfg, |i, x| (i, *x));
        for (pos, (i, x)) in out.iter().enumerate() {
            assert_eq!(pos, *i);
            assert_eq!(items[pos], *x);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Per-index "RNG": the result depends only on the index, so any
        // thread count must produce identical output.
        let items: Vec<usize> = (0..777).collect();
        let f = |i: usize, _: &usize| {
            let mut z = i as u64 ^ 0xDEAD_BEEF;
            z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^ (z >> 31)
        };
        let seq = par_map(&items, &ParConfig::with_threads(1), f);
        for threads in [2, 4, 7] {
            assert_eq!(par_map(&items, &ParConfig::with_threads(threads), f), seq);
            assert_eq!(
                par_map_dynamic(&items, &ParConfig::with_threads(threads), f),
                seq
            );
        }
    }

    #[test]
    fn dynamic_handles_skewed_costs() {
        // Items near the front are much more expensive; the dynamic queue
        // must still return correct, ordered results.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_dynamic(&items, &ParConfig::with_threads(4), |i, _| {
            let spins = if i < 4 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(k);
            }
            let _ = acc;
            i as u64
        });
        assert_eq!(out, (0..64).map(|i| i as u64).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_finds_minimum() {
        let items: Vec<f64> = vec![5.0, 2.0, 9.0, 2.5];
        let min = par_map_reduce(&items, &ParConfig::with_threads(2), |_, x| *x, f64::min);
        assert_eq!(min, Some(2.0));
        let none: Option<f64> =
            par_map_reduce(&[] as &[f64], &ParConfig::default(), |_, x| *x, f64::min);
        assert_eq!(none, None);
    }

    #[test]
    fn sequential_fallback_below_threshold() {
        let cfg = ParConfig {
            threads: Some(8),
            sequential_below: 100,
        };
        let items: Vec<i32> = (0..50).collect();
        assert_eq!(
            par_map(&items, &cfg, |_, x| x + 1),
            (1..51).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stateful_drivers_match_sequential_map() {
        // Per-worker scratch state must not leak into results: a reused
        // buffer produces the same output as the stateless drivers for any
        // thread count.
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let init = || Vec::<u64>::new();
        let f = |buf: &mut Vec<u64>, _i: usize, x: &u64| {
            buf.clear();
            buf.push(*x * 3);
            buf[0] + 1
        };
        for threads in [1, 2, 3, 8] {
            let cfg = ParConfig::with_threads(threads);
            assert_eq!(par_map_with(&items, &cfg, init, f), expect);
            assert_eq!(par_map_dynamic_with(&items, &cfg, init, f), expect);
        }
    }

    #[test]
    fn stateful_init_runs_at_most_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..256).collect();
        let inits = AtomicUsize::new(0);
        let out = par_map_dynamic_with(
            &items,
            &ParConfig::with_threads(4),
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, i, _| i,
        );
        assert_eq!(out, items);
        assert!(inits.load(Ordering::Relaxed) <= 4, "state not reused");
    }

    #[test]
    fn instrumented_run_records_worker_metrics() {
        fepia_obs::set_enabled(true);
        let items: Vec<u64> = (0..256).collect();
        let out = par_map_dynamic(&items, &ParConfig::with_threads(4), |_, x| x + 1);
        fepia_obs::set_enabled(false);
        assert_eq!(out, (1..257).collect::<Vec<_>>());
        let snap = fepia_obs::global().snapshot();
        assert!(snap.counter("par.dynamic.items").unwrap_or(0) >= 256);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let items: Vec<i32> = (0..100).collect();
        let _ = par_map(&items, &ParConfig::with_threads(4), |i, _| {
            if i == 57 {
                panic!("injected failure");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        ParConfig::with_threads(0);
    }
}
