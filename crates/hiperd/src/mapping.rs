//! Application-to-machine assignments with multitasking.
//!
//! "Each machine is capable of multitasking, executing the applications
//! mapped to it in a round robin fashion" (§3.2). Following the paper's
//! Table 2, the effective computation-time function of an application on a
//! machine running `n ≥ 2` applications is its complexity function scaled
//! by the **multitasking factor** `1.3·n(m_j)`; a machine running a single
//! application applies no factor.

use crate::loadfn::LoadFn;
use crate::model::HiperdSystem;
use rand::Rng;

/// The multitasking factor `1.3·n` for `n ≥ 2`, else 1.
pub fn multitask_factor(n: usize) -> f64 {
    if n >= 2 {
        1.3 * n as f64
    } else {
        1.0
    }
}

/// An assignment of HiPer-D applications to machines.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HiperdMapping {
    assignment: Vec<usize>,
    machines: usize,
}

impl HiperdMapping {
    /// Creates a mapping.
    ///
    /// # Panics
    /// Panics on an empty assignment, zero machines, or out-of-range
    /// entries.
    pub fn new(assignment: Vec<usize>, machines: usize) -> Self {
        assert!(
            !assignment.is_empty(),
            "mapping needs at least one application"
        );
        assert!(machines > 0, "mapping needs at least one machine");
        assert!(
            assignment.iter().all(|&j| j < machines),
            "machine index out of range"
        );
        HiperdMapping {
            assignment,
            machines,
        }
    }

    /// A uniformly random mapping (the §4.3 experiment generator).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, apps: usize, machines: usize) -> Self {
        assert!(apps > 0 && machines > 0, "empty mapping");
        HiperdMapping {
            assignment: (0..apps).map(|_| rng.gen_range(0..machines)).collect(),
            machines,
        }
    }

    /// The assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The machine application `app` runs on.
    pub fn machine_of(&self, app: usize) -> usize {
        self.assignment[app]
    }

    /// Number of applications.
    pub fn apps(&self) -> usize {
        self.assignment.len()
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Re-assigns one application (used by the local-search heuristics).
    ///
    /// # Panics
    /// Panics on an out-of-range machine index.
    pub fn reassign(&mut self, app: usize, machine: usize) {
        assert!(machine < self.machines, "machine index out of range");
        self.assignment[app] = machine;
    }

    /// `n(m_j)` for every machine.
    pub fn occupancy(&self) -> Vec<usize> {
        let mut n = vec![0usize; self.machines];
        for &j in &self.assignment {
            n[j] += 1;
        }
        n
    }

    /// The effective computation-time function `T_i^c(λ)` of application
    /// `app` under this mapping: the complexity function on its assigned
    /// machine, scaled by the multitasking factor of that machine.
    ///
    /// # Panics
    /// Panics on shape mismatch with `sys`.
    pub fn effective_comp(&self, sys: &HiperdSystem, app: usize) -> LoadFn {
        assert_eq!(sys.n_apps, self.apps(), "system/mapping app mismatch");
        assert_eq!(
            sys.n_machines, self.machines,
            "system/mapping machine mismatch"
        );
        let j = self.assignment[app];
        let n = self.assignment.iter().filter(|&&m| m == j).count();
        sys.comp[app][j].scaled(multitask_factor(n))
    }

    /// All effective computation functions, indexed by application.
    pub fn effective_comps(&self, sys: &HiperdSystem) -> Vec<LoadFn> {
        let occ = self.occupancy();
        (0..self.apps())
            .map(|i| {
                let j = self.assignment[i];
                sys.comp[i][j].scaled(multitask_factor(occ[j]))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::tiny_system;
    use fepia_optim::VecN;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn multitask_factor_table2_form() {
        assert_eq!(multitask_factor(0), 1.0);
        assert_eq!(multitask_factor(1), 1.0);
        // Table 2's factors: 2.60, 3.90, 5.20, 6.50, 7.80 for n = 2..6.
        for (n, expect) in [(2, 2.6), (3, 3.9), (4, 5.2), (5, 6.5), (6, 7.8)] {
            assert!(
                (multitask_factor(n) - expect).abs() < 1e-12,
                "n = {n}: {} vs {expect}",
                multitask_factor(n)
            );
        }
    }

    #[test]
    fn effective_comp_applies_factor() {
        let sys = tiny_system();
        // a0, a1 → m0 (n=2 → ×2.6); a2 → m1 (alone → ×1).
        let m = HiperdMapping::new(vec![0, 0, 1], 2);
        let lambda = VecN::from([100.0, 50.0]);
        // a0 on m0: base 2λ₀ = 200, ×2.6.
        assert!((m.effective_comp(&sys, 0).eval(&lambda) - 520.0).abs() < 1e-9);
        // a2 on m1: base 2λ₁ = 100, alone.
        assert!((m.effective_comp(&sys, 2).eval(&lambda) - 100.0).abs() < 1e-9);
        let all = m.effective_comps(&sys);
        for (i, f) in all.iter().enumerate() {
            assert_eq!(*f, m.effective_comp(&sys, i));
        }
    }

    #[test]
    fn random_is_seeded() {
        let a = HiperdMapping::random(&mut StdRng::seed_from_u64(3), 20, 5);
        let b = HiperdMapping::random(&mut StdRng::seed_from_u64(3), 20, 5);
        assert_eq!(a, b);
        assert_eq!(a.occupancy().iter().sum::<usize>(), 20);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_assignment() {
        HiperdMapping::new(vec![0, 5], 2);
    }
}
