//! `fepia-hiperd` — the paper's §3.2 system: a HiPer-D-like distributed
//! real-time environment.
//!
//! The model (developed in the paper's reference \[2\] and summarized in
//! §3.2): heterogeneous sensors produce periodic data streams that flow
//! through a DAG of continuously-executing applications to actuators.
//! Machines multitask (round-robin), so an application's computation time
//! scales with the occupancy of its machine. Two QoS families constrain the
//! system:
//!
//! * **throughput** — every application (and data transfer) in a path must
//!   process faster than the driving sensor produces:
//!   `T(λ) ≤ 1/R(aᵢ)`;
//! * **latency** — each path's end-to-end time must satisfy
//!   `L_k(λ) ≤ L_k^max` (Eq. 8).
//!
//! The perturbation parameter is the **sensor load vector** `λ` (objects
//! per data set); the robustness metric (Eqs. 10–11) is the largest
//! Euclidean load increase, in any direction, that no constraint survives
//! being crossed — floored, because loads are integral.
//!
//! Modules: [`loadfn`] (convex computation/communication-time functions),
//! [`model`] (sensors/apps/actuators/edges/system), [`dag`] (graph
//! queries), [`path`] (trigger/update path enumeration), [`mapping`]
//! (assignments + the `1.3·n(m_j)` multitasking factor), [`slack`] (the
//! §4.3 comparison measure), [`robustness`] (Eqs. 10–11 via `fepia-core`),
//! [`gen`] (the calibrated random generator behind the §4.3 experiments).

pub mod dag;
pub mod gen;
pub mod heuristics;
pub mod loadfn;
pub mod mapping;
pub mod model;
pub mod path;
pub mod robustness;
pub mod slack;

pub use gen::{generate_system, GenParams};
pub use heuristics::{all_hiperd_heuristics, HiperdHeuristic};
pub use loadfn::{LoadFn, LoadFnError, Shape};
pub use mapping::HiperdMapping;
pub use model::{Edge, HiperdSystem, Node, Sensor};
pub use path::{Path, Terminal};
pub use robustness::{
    compile_load_analysis, load_robustness, CompiledLoadAnalysis, HiperdRobustness,
};
pub use slack::system_slack;
