//! QoS constraints and the load-robustness metric (Eqs. 9–11).
//!
//! For a mapped system, the feature set `Φ` of Eq. 9 contains the
//! computation time of every application, the communication time of every
//! transfer, and the latency of every path; the boundary relationships are
//! `T_i^c(λ) = 1/R(a_i)`, `T_ip^n(λ) = 1/R(a_i)` and `L_k(λ) = L_k^max`.
//! This module builds that feature set as a [`ConstraintSet`] and runs the
//! generic FePIA analysis of `fepia-core` over the (discrete) load vector
//! `λ`, producing the metric of Eq. 11 — "the largest increase in load in
//! any direction from the assumed value that does not cause a latency or
//! throughput violation for any application or path" — floored because
//! loads are integral.

use crate::loadfn::LoadFn;
use crate::mapping::HiperdMapping;
use crate::model::{HiperdSystem, Node};
use crate::path::{app_rates, enumerate_paths, Path};
use fepia_core::{
    AnalysisPlan, CoreError, FeatureSpec, FepiaAnalysis, Impact, Perturbation, PlanEvaluation,
    PlanVerdict, PlanWorkspace, RadiusOptions, ResiliencePolicy, RobustnessReport, Tolerance,
};
use fepia_optim::VecN;
use std::sync::Arc;

/// One QoS constraint: `value(λ) = Σ terms ≤ bound`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Human-readable identity, e.g. `"throughput a_3"` or `"latency P_7"`.
    pub name: String,
    /// The QoS bound (`1/R` or `L_k^max`).
    pub bound: f64,
    /// Additive terms (a single effective computation function for
    /// throughput constraints; all path terms for latency constraints).
    pub terms: Vec<LoadFn>,
}

impl Constraint {
    /// Evaluates the constrained quantity at `lambda`.
    pub fn value(&self, lambda: &VecN) -> f64 {
        self.terms.iter().map(|t| t.eval(lambda)).sum()
    }

    /// The fractional value of §4.3: `value / bound`.
    pub fn fraction(&self, lambda: &VecN) -> f64 {
        self.value(lambda) / self.bound
    }
}

/// The full constraint set of a mapped system (the concrete Φ of Eq. 9).
#[derive(Clone, Debug)]
pub struct ConstraintSet {
    /// All constraints, throughput first, then communication, then latency.
    pub constraints: Vec<Constraint>,
}

/// Builds the constraint set for `mapping`, reusing pre-enumerated `paths`
/// (enumeration is mapping-independent, so sweeps hoist it).
///
/// Identically-zero communication functions (the §4.3 setting) produce
/// constraints that can never bind (value ≡ 0, infinite radius) and are
/// omitted.
pub fn build_constraints(
    sys: &HiperdSystem,
    mapping: &HiperdMapping,
    paths: &[Path],
) -> ConstraintSet {
    let rates = app_rates(sys, paths);
    let eff = mapping.effective_comps(sys);
    let mut constraints = Vec::new();

    // Throughput: computation of every on-path application.
    for (i, rate) in rates.iter().enumerate() {
        if let Some(r) = rate {
            constraints.push(Constraint {
                name: format!("throughput a_{i}"),
                bound: 1.0 / r,
                terms: vec![eff[i].clone()],
            });
        }
    }

    // Throughput: communication of every application-to-application
    // transfer with a non-zero communication function.
    for e in &sys.edges {
        if let (Node::App(i), Node::App(p)) = (e.from, e.to) {
            if !e.comm.is_zero() {
                if let Some(r) = rates[i] {
                    constraints.push(Constraint {
                        name: format!("comm a_{i}→a_{p}"),
                        bound: 1.0 / r,
                        terms: vec![e.comm.clone()],
                    });
                }
            }
        }
    }

    // Latency per path (Eq. 8): computation of every path application plus
    // every traversed transfer (sensor and actuator communications
    // included).
    for (k, path) in paths.iter().enumerate() {
        let mut terms: Vec<LoadFn> = path.apps.iter().map(|&i| eff[i].clone()).collect();
        for &e in &path.edges {
            if !sys.edges[e].comm.is_zero() {
                terms.push(sys.edges[e].comm.clone());
            }
        }
        constraints.push(Constraint {
            name: format!("latency P_{k}"),
            bound: sys.latency_limits[k],
            terms,
        });
    }

    ConstraintSet { constraints }
}

/// [`Impact`] adapter for a sum of load functions.
struct ConstraintImpact {
    terms: Vec<LoadFn>,
    dim: usize,
}

impl Impact for ConstraintImpact {
    fn eval(&self, lambda: &VecN) -> f64 {
        self.terms.iter().map(|t| t.eval(lambda)).sum()
    }

    fn gradient(&self, lambda: &VecN) -> Option<VecN> {
        let mut g = VecN::zeros(self.dim);
        for t in &self.terms {
            g += &t.gradient(lambda);
        }
        Some(g)
    }

    fn as_affine(&self) -> Option<(VecN, f64)> {
        let mut a = VecN::zeros(self.dim);
        let mut c = 0.0;
        for t in &self.terms {
            let (ta, tc) = t.as_affine()?;
            a += &ta;
            c += tc;
        }
        Some((a, c))
    }

    fn expected_dim(&self) -> Option<usize> {
        Some(self.dim)
    }
}

/// The outcome of the §3.2 robustness analysis for one mapping.
#[derive(Clone, Debug)]
pub struct HiperdRobustness {
    /// The raw metric `ρ_μ(Φ, λ)` of Eq. 11 (Euclidean objects/data-set).
    pub metric: f64,
    /// The floored metric (loads are integral; §3.2).
    pub floored: f64,
    /// Name of the binding constraint.
    pub binding: String,
    /// The boundary load vector `λ*` at which the binding constraint is
    /// reached (the paper's Table 2 reports these), when available.
    pub lambda_star: Option<VecN>,
    /// The full per-feature report from `fepia-core`.
    pub report: RobustnessReport,
}

impl HiperdRobustness {
    /// The unit direction of load increase that reaches a QoS boundary
    /// soonest — `(λ* − λ_orig)/ρ`. Operators watching live sensor loads
    /// can project drift onto this direction to see how fast the guarantee
    /// is being consumed. `None` when the metric is zero, infinite, or no
    /// boundary witness is available.
    pub fn most_dangerous_direction(&self, lambda_orig: &[f64]) -> Option<VecN> {
        let star = self.lambda_star.as_ref()?;
        if !(self.metric.is_finite() && self.metric > 0.0) {
            return None;
        }
        let delta = star.add_scaled(-1.0, &VecN::new(lambda_orig.to_vec()));
        delta.normalized()
    }
}

/// Runs the full Eq. 10/11 analysis: enumerate paths, build Φ, compute every
/// robustness radius, take the minimum, floor it.
pub fn load_robustness(
    sys: &HiperdSystem,
    mapping: &HiperdMapping,
    opts: &RadiusOptions,
) -> Result<HiperdRobustness, CoreError> {
    let paths = enumerate_paths(sys);
    load_robustness_with_paths(sys, mapping, &paths, opts)
}

/// As [`load_robustness`], with pre-enumerated paths (for sweeps). A thin
/// wrapper over [`compile_load_analysis`] + [`CompiledLoadAnalysis::evaluate`]
/// — one-shot callers pay one compile, sweep callers should compile once and
/// evaluate many times.
pub fn load_robustness_with_paths(
    sys: &HiperdSystem,
    mapping: &HiperdMapping,
    paths: &[Path],
    opts: &RadiusOptions,
) -> Result<HiperdRobustness, CoreError> {
    compile_load_analysis(sys, mapping, paths, opts)?.evaluate()
}

/// The §3.2 analysis compiled once for a mapped system: the constraint set
/// is resolved into a `fepia-core` [`AnalysisPlan`] (affine constraints
/// packed into one block, nonlinear ones solver-backed), ready to evaluate
/// at `λ_orig` or any other load vector without rebuilding Φ.
#[derive(Clone)]
pub struct CompiledLoadAnalysis {
    plan: Arc<AnalysisPlan>,
    lambda_orig: VecN,
}

/// Builds and compiles the Eq. 9 constraint set for `mapping` under `opts`.
pub fn compile_load_analysis(
    sys: &HiperdSystem,
    mapping: &HiperdMapping,
    paths: &[Path],
    opts: &RadiusOptions,
) -> Result<CompiledLoadAnalysis, CoreError> {
    let set = build_constraints(sys, mapping, paths);
    let dim = sys.n_sensors();
    let lambda_orig = VecN::new(sys.lambda_orig.clone());

    let mut analysis =
        FepiaAnalysis::new(Perturbation::discrete("sensor load λ", lambda_orig.clone()));
    for c in set.constraints {
        analysis.add_feature_boxed(
            FeatureSpec::new(c.name, Tolerance::upper(c.bound)),
            Box::new(ConstraintImpact {
                terms: c.terms,
                dim,
            }),
        );
    }
    let plan = analysis.compile(opts)?;
    Ok(CompiledLoadAnalysis { plan, lambda_orig })
}

impl CompiledLoadAnalysis {
    /// The underlying compiled plan (shareable across threads).
    pub fn plan(&self) -> &Arc<AnalysisPlan> {
        &self.plan
    }

    /// The assumed load vector `λ_orig` the plan was compiled against.
    pub fn lambda_orig(&self) -> &VecN {
        &self.lambda_orig
    }

    /// Full Eq. 10/11 analysis at `λ_orig` — identical numbers to the legacy
    /// [`load_robustness_with_paths`].
    pub fn evaluate(&self) -> Result<HiperdRobustness, CoreError> {
        self.evaluate_at(&self.lambda_orig)
    }

    /// Full analysis at an arbitrary load vector (what-if probes).
    pub fn evaluate_at(&self, lambda: &VecN) -> Result<HiperdRobustness, CoreError> {
        let report = self.plan.evaluate_report(lambda)?;
        let binding = report.binding_feature();
        Ok(HiperdRobustness {
            metric: report.metric,
            floored: report.effective_metric(),
            binding: binding.name.clone(),
            lambda_star: binding.result.boundary_point.clone(),
            report,
        })
    }

    /// Metric-only fast path with caller-provided scratch (for sweeps that
    /// evaluate many mappings or load vectors on worker threads).
    pub fn evaluate_metric_with(
        &self,
        lambda: &VecN,
        ws: &mut PlanWorkspace,
    ) -> Result<PlanEvaluation, CoreError> {
        self.plan.evaluate_with(lambda, ws)
    }

    /// Fault-tolerant analysis at `λ_orig`: every constraint gets a typed
    /// verdict instead of the first failure aborting the call. Degraded
    /// constraint sweeps still rank mappings via the metric interval.
    pub fn evaluate_verdict(&self, policy: &ResiliencePolicy) -> PlanVerdict {
        self.plan.evaluate_verdict(&self.lambda_orig, policy)
    }

    /// [`Self::evaluate_verdict`] at an arbitrary load vector, with
    /// caller-provided scratch for sweep workers.
    pub fn evaluate_verdict_with(
        &self,
        lambda: &VecN,
        ws: &mut PlanWorkspace,
        policy: &ResiliencePolicy,
    ) -> PlanVerdict {
        self.plan.evaluate_verdict_with(lambda, ws, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::tiny_system;

    /// a0,a1 → m0 (factor 2.6), a2 → m1 (alone). With λ = (100, 50):
    /// T_0 = 2.6·2λ₀ = 520, T_1 = 2.6·(λ₀+λ₁) = 390, T_2 = 2λ₁ = 100.
    fn mapped_tiny() -> (crate::model::HiperdSystem, HiperdMapping) {
        (tiny_system(), HiperdMapping::new(vec![0, 0, 1], 2))
    }

    #[test]
    fn constraint_set_contents() {
        let (sys, m) = mapped_tiny();
        let paths = enumerate_paths(&sys);
        let set = build_constraints(&sys, &m, &paths);
        // 3 throughput (all apps on paths) + 0 comm (all zero) + 2 latency.
        assert_eq!(set.constraints.len(), 5);
        let names: Vec<&str> = set.constraints.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"throughput a_0"));
        assert!(names.contains(&"latency P_0"));
        assert!(!names.iter().any(|n| n.starts_with("comm")));
    }

    #[test]
    fn constraint_values_hand_checked() {
        let (sys, m) = mapped_tiny();
        let paths = enumerate_paths(&sys);
        let set = build_constraints(&sys, &m, &paths);
        let lambda = VecN::from([100.0, 50.0]);
        let by_name = |n: &str| {
            set.constraints
                .iter()
                .find(|c| c.name == n)
                .unwrap_or_else(|| panic!("missing constraint {n}"))
        };
        assert!((by_name("throughput a_0").value(&lambda) - 520.0).abs() < 1e-9);
        assert!((by_name("throughput a_1").value(&lambda) - 390.0).abs() < 1e-9);
        assert!((by_name("throughput a_2").value(&lambda) - 100.0).abs() < 1e-9);
        // Trigger path P_0 = {a0, a1}: latency 520 + 390 = 910.
        assert!((by_name("latency P_0").value(&lambda) - 910.0).abs() < 1e-9);
        // Update path P_1 = {a2}: latency 100.
        assert!((by_name("latency P_1").value(&lambda) - 100.0).abs() < 1e-9);
        // Bounds: 1/R(a_0) = 1000, L_0^max = 2000.
        assert_eq!(by_name("throughput a_0").bound, 1_000.0);
        assert_eq!(by_name("latency P_0").bound, 2_000.0);
        assert!((by_name("throughput a_0").fraction(&lambda) - 0.52).abs() < 1e-12);
    }

    #[test]
    fn robustness_binding_is_hand_computable() {
        // Radii (hyperplane distances, λ_orig = (100, 50)):
        //   a_0: (1000−520)/‖(5.2,0)‖ = 480/5.2 ≈ 92.31
        //   a_1: (1000−390)/‖(2.6,2.6)‖ = 610/3.677 ≈ 165.9
        //   a_2: (2000−100)/‖(0,2)‖ = 950
        //   P_0: (2000−910)/‖(7.8,2.6)‖ = 1090/8.222 ≈ 132.6
        //   P_1: (2500−100)/‖(0,2)‖ = 1200
        // Binding: throughput a_0 at ≈ 92.31.
        let (sys, m) = mapped_tiny();
        let rob = load_robustness(&sys, &m, &RadiusOptions::default()).unwrap();
        assert!(
            (rob.metric - 480.0 / 5.2).abs() < 1e-9,
            "metric {}",
            rob.metric
        );
        assert_eq!(rob.binding, "throughput a_0");
        assert_eq!(rob.floored, (480.0f64 / 5.2).floor());
        // λ* moves only along sensor 0 (a_0 reads only sensor 0).
        let star = rob.lambda_star.unwrap();
        assert!((star[0] - (100.0 + 480.0 / 5.2)).abs() < 1e-9);
        assert!((star[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_mapping_is_more_robust_here() {
        // Spreading apps over machines (lower multitask factors) must give
        // a strictly larger metric in this system.
        let sys = tiny_system();
        let packed = HiperdMapping::new(vec![0, 0, 0], 2);
        let spread = HiperdMapping::new(vec![0, 1, 0], 2);
        let opts = RadiusOptions::default();
        let r_packed = load_robustness(&sys, &packed, &opts).unwrap().metric;
        let r_spread = load_robustness(&sys, &spread, &opts).unwrap().metric;
        assert!(
            r_spread > r_packed,
            "spread {r_spread} should beat packed {r_packed}"
        );
    }

    #[test]
    fn nonlinear_functions_use_numeric_path() {
        use crate::loadfn::{LoadFn, Shape};
        let mut sys = tiny_system();
        // Make a_2's function quadratic on machine 1: T = (2λ₁)²·0.02.
        sys.comp[2][1] = LoadFn::new(vec![0.0, 2.0], Shape::Power(2.0), 0.02);
        let m = HiperdMapping::new(vec![0, 0, 1], 2);
        let rob = load_robustness(&sys, &m, &RadiusOptions::default()).unwrap();
        // T_2(λ) = 0.02·(2λ₁)² = 200 at λ₁=50; bound 1/R(a_2) = 2000:
        // boundary at λ₁ = √(2000/0.08) = √25000 ≈ 158.1 ⇒ radius ≈ 108.1.
        // Other constraints (above) are all ≥ 92.3; a_0 still binds.
        assert_eq!(rob.binding, "throughput a_0");
        let t2 = rob
            .report
            .radii
            .iter()
            .find(|r| r.name == "throughput a_2")
            .unwrap();
        let expected = (2_000.0f64 / 0.08).sqrt() - 50.0;
        assert!(
            (t2.result.radius - expected).abs() < 1e-3,
            "numeric radius {} vs analytic {expected}",
            t2.result.radius
        );
    }

    #[test]
    fn most_dangerous_direction_points_at_the_boundary() {
        let (sys, m) = mapped_tiny();
        let rob = load_robustness(&sys, &m, &RadiusOptions::default()).unwrap();
        let dir = rob.most_dangerous_direction(&sys.lambda_orig).unwrap();
        assert!((dir.norm_l2() - 1.0).abs() < 1e-12);
        // Binding constraint reads only sensor 0 (see the hand-computed
        // test above): the direction is the +λ₀ axis.
        assert!((dir[0] - 1.0).abs() < 1e-9);
        assert!(dir[1].abs() < 1e-9);
        // Walking ρ along it lands exactly on λ*.
        let walked = VecN::new(sys.lambda_orig.clone()).add_scaled(rob.metric, &dir);
        assert!(walked.distance_l2(rob.lambda_star.as_ref().unwrap()) < 1e-9);
    }

    #[test]
    fn nonzero_comm_creates_comm_constraints_and_extends_latency() {
        use crate::loadfn::LoadFn;
        // Give the a0→a1 transfer a real communication function.
        let mut sys = tiny_system();
        sys.edges[1].comm = LoadFn::linear(vec![0.5, 0.0], 1.0); // 0.5λ₀
        let m = HiperdMapping::new(vec![0, 0, 1], 2);
        let paths = enumerate_paths(&sys);
        let set = build_constraints(&sys, &m, &paths);
        let lambda = VecN::from([100.0, 50.0]);

        // A comm throughput constraint now exists, bounded by the
        // producer's rate (a_0 is driven by s0, 1/R = 1000).
        let comm = set
            .constraints
            .iter()
            .find(|c| c.name == "comm a_0→a_1")
            .expect("comm constraint present");
        assert_eq!(comm.bound, 1_000.0);
        assert!((comm.value(&lambda) - 50.0).abs() < 1e-12);

        // The trigger path's latency includes the transfer time:
        // previously 910 (computation only), now 910 + 50.
        let p0 = set
            .constraints
            .iter()
            .find(|c| c.name == "latency P_0")
            .expect("latency constraint present");
        assert!((p0.value(&lambda) - 960.0).abs() < 1e-9);

        // Comm constraints participate in the metric: shrink the comm
        // bound far enough (huge comm coefficient) and it must bind.
        sys.edges[1].comm = LoadFn::linear(vec![9.0, 0.0], 1.0); // 900 at λ₀=100
        let rob = load_robustness(&sys, &m, &RadiusOptions::default()).unwrap();
        assert_eq!(rob.binding, "comm a_0→a_1");
        // Radius: (1000 − 900)/‖(9, 0)‖ = 100/9.
        assert!((rob.metric - 100.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn compiled_analysis_matches_one_shot_bitwise() {
        let (sys, m) = mapped_tiny();
        let paths = enumerate_paths(&sys);
        let opts = RadiusOptions::default();
        let compiled = compile_load_analysis(&sys, &m, &paths, &opts).unwrap();
        let one_shot = load_robustness_with_paths(&sys, &m, &paths, &opts).unwrap();
        // Same plan evaluated at λ_orig and at other load vectors.
        let at_orig = compiled.evaluate().unwrap();
        assert_eq!(at_orig.metric.to_bits(), one_shot.metric.to_bits());
        assert_eq!(at_orig.floored.to_bits(), one_shot.floored.to_bits());
        assert_eq!(at_orig.binding, one_shot.binding);
        let mut ws = compiled.plan().workspace();
        let lambda = VecN::from([120.0, 60.0]);
        let probe = compiled.evaluate_metric_with(&lambda, &mut ws).unwrap();
        let full = compiled.evaluate_at(&lambda).unwrap();
        assert_eq!(probe.metric.to_bits(), full.metric.to_bits());
        // Repeated metric evaluations reuse the workspace without drift.
        let again = compiled.evaluate_metric_with(&lambda, &mut ws).unwrap();
        assert_eq!(probe.metric.to_bits(), again.metric.to_bits());
    }

    #[test]
    fn verdict_path_matches_exact_analysis() {
        let (sys, m) = mapped_tiny();
        let paths = enumerate_paths(&sys);
        let opts = RadiusOptions::default();
        let compiled = compile_load_analysis(&sys, &m, &paths, &opts).unwrap();
        let exact = compiled.evaluate().unwrap();
        let verdict = compiled.evaluate_verdict(&ResiliencePolicy::default());
        assert!(verdict.is_exact());
        assert_eq!(verdict.metric_lo.to_bits(), exact.metric.to_bits());
        assert_eq!(verdict.metric_hi.to_bits(), exact.metric.to_bits());
        assert_eq!(verdict.radii.len(), exact.report.radii.len());
    }

    #[test]
    fn verdict_classifies_poisoned_load_vector() {
        use fepia_core::{FailReason, RadiusVerdict, VerdictKind};
        let (sys, m) = mapped_tiny();
        let paths = enumerate_paths(&sys);
        let compiled = compile_load_analysis(&sys, &m, &paths, &RadiusOptions::default()).unwrap();
        let mut ws = compiled.plan().workspace();
        let bad = VecN::from([100.0, f64::NAN]);
        let verdict = compiled.evaluate_verdict_with(&bad, &mut ws, &ResiliencePolicy::default());
        assert_eq!(verdict.kind, VerdictKind::Failed);
        assert!(matches!(
            verdict.radii[0],
            RadiusVerdict::Failed(FailReason::NonFiniteInput { index: 1 })
        ));
        // The workspace survives for the next (clean) evaluation.
        let clean = compiled.evaluate_verdict_with(
            compiled.lambda_orig(),
            &mut ws,
            &ResiliencePolicy::default(),
        );
        assert!(clean.is_exact());
    }

    #[test]
    fn metric_is_min_over_radii() {
        let (sys, m) = mapped_tiny();
        let rob = load_robustness(&sys, &m, &RadiusOptions::default()).unwrap();
        let min = rob
            .report
            .radii
            .iter()
            .map(|r| r.result.radius)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, rob.metric);
    }
}
