//! Path enumeration.
//!
//! "A *path* is a chain of producer-consumer pairs that starts at a sensor
//! (the *driving sensor*) and ends at an actuator (if it is a 'trigger
//! path') or at a multiple-input application (if it is an 'update path')."
//! (§3.2). An application may be on multiple paths.
//!
//! One modeling decision is needed that the paper leaves to its reference
//! \[2\]: which stream *continues through* a multiple-input application. We
//! designate the earliest-indexed incoming edge of each multi-input
//! application as its **trigger input**; a path arriving on the trigger
//! input flows through (so downstream applications stay covered by paths),
//! while paths arriving on any other input terminate there as update paths.
//! This matches the HiPer-D modeling style (each fusion application has one
//! triggering stream and ancillary update streams) and guarantees that
//! every application reachable from a sensor lies on at least one path.

use crate::model::{HiperdSystem, Node};

/// How a path ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// Trigger path: ends at an actuator.
    Actuator(usize),
    /// Update path: ends when its data enters a multiple-input application
    /// on a non-trigger input (that application's computation is *not* part
    /// of this path).
    UpdateApp(usize),
    /// The chain dead-ends at an application with no consumers (only occurs
    /// in hand-built, incomplete graphs; the generator never produces it).
    DeadEnd,
}

/// One path `P_k`.
#[derive(Clone, Debug, PartialEq)]
pub struct Path {
    /// Index of the driving sensor.
    pub sensor: usize,
    /// The applications on the path, in flow order (the paper's `P_k`).
    pub apps: Vec<usize>,
    /// Indices (into `system.edges`) of every transfer traversed, including
    /// the sensor→first-app and last-app→terminal edges.
    pub edges: Vec<usize>,
    /// How the path ends.
    pub terminal: Terminal,
}

impl Path {
    /// True for trigger paths (sensor → … → actuator).
    pub fn is_trigger(&self) -> bool {
        matches!(self.terminal, Terminal::Actuator(_))
    }
}

/// For each multi-input application, the edge index of its trigger input
/// (the smallest-index incoming edge).
fn trigger_inputs(sys: &HiperdSystem) -> Vec<Option<usize>> {
    let mut trig = vec![None; sys.n_apps];
    for (k, e) in sys.edges.iter().enumerate() {
        if let Node::App(i) = e.to {
            if trig[i].is_none() {
                trig[i] = Some(k);
            }
        }
    }
    trig
}

/// Enumerates every path, deterministically (sensors in index order, DFS in
/// edge-index order). Worst-case exponential in DAG joins, like any path
/// enumeration; the §4.3-scale systems have ≈19 paths.
pub fn enumerate_paths(sys: &HiperdSystem) -> Vec<Path> {
    let trig = trigger_inputs(sys);
    let mut paths = Vec::new();

    // DFS stack frame: (current app, apps so far, edges so far, sensor).
    for z in 0..sys.n_sensors() {
        for (k0, e0) in sys.edges_from(Node::Sensor(z)) {
            let Node::App(first) = e0.to else { continue };
            dfs(
                sys,
                &trig,
                z,
                first,
                k0,
                &mut Vec::new(),
                &mut Vec::new(),
                &mut paths,
            );
        }
    }
    paths
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    sys: &HiperdSystem,
    trig: &[Option<usize>],
    sensor: usize,
    app: usize,
    via_edge: usize,
    apps: &mut Vec<usize>,
    edges: &mut Vec<usize>,
    out: &mut Vec<Path>,
) {
    edges.push(via_edge);
    // Arriving at a multi-input application on a non-trigger input ends the
    // path *before* the application's computation.
    if sys.in_degree(app) >= 2 && trig[app] != Some(via_edge) {
        out.push(Path {
            sensor,
            apps: apps.clone(),
            edges: edges.clone(),
            terminal: Terminal::UpdateApp(app),
        });
        edges.pop();
        return;
    }
    apps.push(app);
    let outgoing = sys.edges_from(Node::App(app));
    if outgoing.is_empty() {
        out.push(Path {
            sensor,
            apps: apps.clone(),
            edges: edges.clone(),
            terminal: Terminal::DeadEnd,
        });
    }
    for (k, e) in outgoing {
        match e.to {
            Node::Actuator(t) => {
                let mut path_edges = edges.clone();
                path_edges.push(k);
                out.push(Path {
                    sensor,
                    apps: apps.clone(),
                    edges: path_edges,
                    terminal: Terminal::Actuator(t),
                });
            }
            Node::App(next) => {
                dfs(sys, trig, sensor, next, k, apps, edges, out);
            }
            Node::Sensor(_) => unreachable!("validated systems have no edges into sensors"),
        }
    }
    apps.pop();
    edges.pop();
}

/// `R(a_i)` for every application: the tightest (largest) driving-sensor
/// rate over the paths containing `a_i`; `None` for applications on no path.
pub fn app_rates(sys: &HiperdSystem, paths: &[Path]) -> Vec<Option<f64>> {
    let mut rates: Vec<Option<f64>> = vec![None; sys.n_apps];
    for p in paths {
        let r = sys.sensors[p.sensor].rate;
        for &i in &p.apps {
            rates[i] = Some(rates[i].map_or(r, |cur: f64| cur.max(r)));
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::tiny_system;

    #[test]
    fn tiny_system_has_two_paths() {
        let sys = tiny_system();
        let paths = enumerate_paths(&sys);
        assert_eq!(paths.len(), 2);

        // Trigger path: s0 → a0 → a1 → act0 (a1's trigger input is edge 1,
        // the first incoming edge in index order).
        let trigger = paths.iter().find(|p| p.is_trigger()).unwrap();
        assert_eq!(trigger.sensor, 0);
        assert_eq!(trigger.apps, vec![0, 1]);
        assert_eq!(trigger.terminal, Terminal::Actuator(0));
        assert_eq!(trigger.edges, vec![0, 1, 2]);

        // Update path: s1 → a2 →(a1) — ends at the multi-input app.
        let update = paths.iter().find(|p| !p.is_trigger()).unwrap();
        assert_eq!(update.sensor, 1);
        assert_eq!(update.apps, vec![2]);
        assert_eq!(update.terminal, Terminal::UpdateApp(1));
        assert_eq!(update.edges, vec![3, 4]);
    }

    #[test]
    fn app_rates_use_tightest_driver() {
        let sys = tiny_system();
        let paths = enumerate_paths(&sys);
        let rates = app_rates(&sys, &paths);
        // a0, a1 on the s0 path (rate 1e-3); a2 on the s1 path (5e-4).
        assert_eq!(rates[0], Some(1e-3));
        assert_eq!(rates[1], Some(1e-3));
        assert_eq!(rates[2], Some(5e-4));
    }

    #[test]
    fn deterministic_enumeration() {
        let sys = tiny_system();
        assert_eq!(enumerate_paths(&sys), enumerate_paths(&sys));
    }

    #[test]
    fn dead_end_reported() {
        let mut sys = tiny_system();
        // Remove a1 → act0: the trigger path now dead-ends at a1.
        sys.edges.remove(2);
        let paths = enumerate_paths(&sys);
        assert!(paths.iter().any(|p| p.terminal == Terminal::DeadEnd));
    }

    #[test]
    fn fanout_multiplies_paths() {
        use crate::loadfn::LoadFn;
        use crate::model::{Edge, Node};
        let mut sys = tiny_system();
        // a0 also feeds a new actuator directly: one more trigger path.
        sys.n_actuators = 2;
        sys.edges.push(Edge {
            from: Node::App(0),
            to: Node::Actuator(1),
            comm: LoadFn::zero(2),
        });
        sys.latency_limits.push(1_000.0);
        let paths = enumerate_paths(&sys);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths.iter().filter(|p| p.is_trigger()).count(), 2);
    }
}
