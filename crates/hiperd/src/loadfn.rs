//! Computation/communication-time functions of the sensor load.
//!
//! §3.2 assumes "the dependence of `T_i^c` and `T_ip^n` on `λ` is known (or
//! can be estimated)" and notes the analysis is convex whenever those
//! functions are convex, listing `e^{px}`, `x^p` (p ≥ 1) and `x log x` as
//! common convex complexity functions. A [`LoadFn`] is
//!
//! ```text
//! T(λ) = scale · g( coeffs · λ )
//! ```
//!
//! a convex increasing shape `g` applied to a non-negative linear aggregate
//! of the sensor loads — exactly the family the paper's experiments draw
//! from (§4.3 uses the linear case `Σ_z b_ijz·λ_z`). Composition with the
//! non-negative linear map keeps every shape convex in `λ`, and gradients
//! stay analytic.

use fepia_optim::VecN;
use std::fmt;

/// Typed construction failure for [`LoadFn::try_new`].
#[derive(Clone, Debug, PartialEq)]
pub enum LoadFnError {
    /// A coefficient is negative, NaN, or infinite.
    InvalidCoefficient {
        /// Index of the offending coefficient.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The scale is negative, NaN, or infinite.
    InvalidScale {
        /// The offending value.
        value: f64,
    },
    /// A shape parameter is out of its convexity range.
    InvalidShape {
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for LoadFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadFnError::InvalidCoefficient { index, value } => write!(
                f,
                "load coefficients must be non-negative and finite: coeffs[{index}] = {value}"
            ),
            LoadFnError::InvalidScale { value } => {
                write!(f, "scale must be non-negative and finite, got {value}")
            }
            LoadFnError::InvalidShape { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for LoadFnError {}

/// The scalar shape `g(u)` applied to the load aggregate `u = coeffs·λ ≥ 0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Shape {
    /// `g(u) = u` — the paper's §4.3 experimental setting.
    Linear,
    /// `g(u) = u^p`, `p ≥ 1` (convex on `u ≥ 0`).
    Power(f64),
    /// `g(u) = e^{q·u} − 1`, `q > 0` (convex, `g(0) = 0`).
    Exp(f64),
    /// `g(u) = u·ln(1 + u)` (convex and increasing on `u ≥ 0`; the `1 + u`
    /// shift keeps it defined and zero at `u = 0`).
    XLogX,
}

impl Shape {
    fn eval(&self, u: f64) -> f64 {
        match *self {
            Shape::Linear => u,
            Shape::Power(p) => u.powf(p),
            Shape::Exp(q) => (q * u).exp() - 1.0,
            Shape::XLogX => u * (1.0 + u).ln(),
        }
    }

    fn derivative(&self, u: f64) -> f64 {
        match *self {
            Shape::Linear => 1.0,
            Shape::Power(p) => p * u.powf(p - 1.0),
            Shape::Exp(q) => q * (q * u).exp(),
            Shape::XLogX => (1.0 + u).ln() + u / (1.0 + u),
        }
    }

    fn validate(&self) -> Result<(), LoadFnError> {
        let message = match *self {
            Shape::Power(p) if !(p >= 1.0 && p.is_finite()) => {
                format!("power shape needs p ≥ 1, got {p}")
            }
            Shape::Exp(q) if !(q > 0.0 && q.is_finite()) => {
                format!("exp shape needs q > 0, got {q}")
            }
            _ => return Ok(()),
        };
        Err(LoadFnError::InvalidShape { message })
    }
}

/// A time function `T(λ) = scale · g(coeffs·λ)`.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadFn {
    /// Per-sensor coefficients `b_z ≥ 0`; zero where no route exists from
    /// sensor `z`.
    pub coeffs: Vec<f64>,
    /// The convex shape `g`.
    pub shape: Shape,
    /// Positive multiplier (the §4.3 experiments put the multitasking
    /// factor here when a mapping is applied).
    pub scale: f64,
}

impl LoadFn {
    /// Creates a load function.
    ///
    /// # Panics
    /// Panics on negative/non-finite coefficients or scale, or invalid shape
    /// parameters; see [`LoadFn::try_new`] for a fallible variant.
    pub fn new(coeffs: Vec<f64>, shape: Shape, scale: f64) -> Self {
        Self::try_new(coeffs, shape, scale).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`LoadFn::new`]: rejects negative or non-finite coefficients
    /// and scale, and out-of-range shape parameters, with a typed
    /// [`LoadFnError`].
    pub fn try_new(coeffs: Vec<f64>, shape: Shape, scale: f64) -> Result<Self, LoadFnError> {
        if let Some(index) = coeffs.iter().position(|&b| !(b >= 0.0 && b.is_finite())) {
            return Err(LoadFnError::InvalidCoefficient {
                value: coeffs[index],
                index,
            });
        }
        if !(scale >= 0.0 && scale.is_finite()) {
            return Err(LoadFnError::InvalidScale { value: scale });
        }
        shape.validate()?;
        Ok(LoadFn {
            coeffs,
            shape,
            scale,
        })
    }

    /// The §4.3 linear form `scale · Σ_z b_z λ_z`.
    pub fn linear(coeffs: Vec<f64>, scale: f64) -> Self {
        LoadFn::new(coeffs, Shape::Linear, scale)
    }

    /// The identically-zero function (e.g. the §4.3 communication times,
    /// which "were all set to zero").
    pub fn zero(dim: usize) -> Self {
        LoadFn::linear(vec![0.0; dim], 0.0)
    }

    /// Number of sensors the function reads.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// True when the function is identically zero.
    pub fn is_zero(&self) -> bool {
        self.scale == 0.0 || self.coeffs.iter().all(|&b| b == 0.0)
    }

    /// Evaluates `T(λ)`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn eval(&self, lambda: &VecN) -> f64 {
        assert_eq!(lambda.dim(), self.coeffs.len(), "load dimension mismatch");
        let u: f64 = self
            .coeffs
            .iter()
            .zip(lambda.iter())
            .map(|(b, l)| b * l)
            .sum();
        self.scale * self.shape.eval(u)
    }

    /// The gradient `∇T(λ) = scale · g'(coeffs·λ) · coeffs`.
    pub fn gradient(&self, lambda: &VecN) -> VecN {
        assert_eq!(lambda.dim(), self.coeffs.len(), "load dimension mismatch");
        let u: f64 = self
            .coeffs
            .iter()
            .zip(lambda.iter())
            .map(|(b, l)| b * l)
            .sum();
        let d = self.scale * self.shape.derivative(u);
        VecN::new(self.coeffs.iter().map(|b| d * b).collect())
    }

    /// The affine representation `(a, c)` with `T(λ) = a·λ + c`, when the
    /// shape is linear.
    pub fn as_affine(&self) -> Option<(VecN, f64)> {
        match self.shape {
            Shape::Linear => Some((
                VecN::new(self.coeffs.iter().map(|b| self.scale * b).collect()),
                0.0,
            )),
            _ => None,
        }
    }

    /// Returns this function with its scale multiplied by `factor` (how the
    /// multitasking factor is applied).
    pub fn scaled(&self, factor: f64) -> LoadFn {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        LoadFn {
            coeffs: self.coeffs.clone(),
            shape: self.shape,
            scale: self.scale * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table2_style_linear_function() {
        // Table 2's a_20 on mapping A: 6.50·(3λ₁ + 14λ₂ + 18λ₃).
        let f = LoadFn::linear(vec![3.0, 14.0, 18.0], 6.5);
        let lambda = VecN::from([962.0, 380.0, 240.0]);
        let expected = 6.5 * (3.0 * 962.0 + 14.0 * 380.0 + 18.0 * 240.0);
        assert!((f.eval(&lambda) - expected).abs() < 1e-9);
        let (a, c) = f.as_affine().unwrap();
        assert_eq!(c, 0.0);
        assert!((a[0] - 19.5).abs() < 1e-12);
    }

    #[test]
    fn zero_function() {
        let z = LoadFn::zero(3);
        assert!(z.is_zero());
        assert_eq!(z.eval(&VecN::from([10.0, 20.0, 30.0])), 0.0);
        assert_eq!(z.dim(), 3);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let lambda = VecN::from([5.0, 2.0]);
        for shape in [
            Shape::Linear,
            Shape::Power(2.0),
            Shape::Exp(0.01),
            Shape::XLogX,
        ] {
            let f = LoadFn::new(vec![0.5, 1.5], shape, 2.0);
            let g = f.gradient(&lambda);
            for r in 0..2 {
                let h = 1e-6;
                let mut up = lambda.clone();
                up[r] += h;
                let mut dn = lambda.clone();
                dn[r] -= h;
                let fd = (f.eval(&up) - f.eval(&dn)) / (2.0 * h);
                assert!(
                    (g[r] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "{shape:?} component {r}: analytic {} vs fd {}",
                    g[r],
                    fd
                );
            }
        }
    }

    #[test]
    fn shapes_are_zero_at_zero_load() {
        let origin = VecN::zeros(2);
        for shape in [
            Shape::Linear,
            Shape::Power(2.0),
            Shape::Exp(0.5),
            Shape::XLogX,
        ] {
            let f = LoadFn::new(vec![1.0, 1.0], shape, 3.0);
            assert_eq!(f.eval(&origin), 0.0, "{shape:?} not zero at origin");
        }
    }

    #[test]
    fn nonlinear_has_no_affine_form() {
        assert!(LoadFn::new(vec![1.0], Shape::Power(2.0), 1.0)
            .as_affine()
            .is_none());
        assert!(LoadFn::new(vec![1.0], Shape::Exp(1.0), 1.0)
            .as_affine()
            .is_none());
    }

    #[test]
    fn scaled_multiplies_scale() {
        let f = LoadFn::linear(vec![2.0], 1.0).scaled(5.2);
        assert_eq!(f.eval(&VecN::from([3.0])), 5.2 * 6.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_coefficients() {
        LoadFn::linear(vec![-1.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "p ≥ 1")]
    fn rejects_concave_power() {
        LoadFn::new(vec![1.0], Shape::Power(0.5), 1.0);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert!(matches!(
            LoadFn::try_new(vec![1.0, f64::NAN], Shape::Linear, 1.0),
            Err(LoadFnError::InvalidCoefficient { index: 1, .. })
        ));
        assert!(matches!(
            LoadFn::try_new(vec![1.0], Shape::Linear, f64::INFINITY),
            Err(LoadFnError::InvalidScale { .. })
        ));
        assert!(matches!(
            LoadFn::try_new(vec![1.0], Shape::Exp(-2.0), 1.0),
            Err(LoadFnError::InvalidShape { .. })
        ));
        assert!(matches!(
            LoadFn::try_new(vec![1.0], Shape::Power(f64::NAN), 1.0),
            Err(LoadFnError::InvalidShape { .. })
        ));
        assert!(LoadFn::try_new(vec![1.0], Shape::XLogX, 2.0).is_ok());
    }

    proptest! {
        /// Midpoint convexity along random segments in the non-negative
        /// orthant, for every shape.
        #[test]
        fn convexity(
            a in prop::collection::vec(0.0..50.0f64, 3),
            b in prop::collection::vec(0.0..50.0f64, 3),
            coeffs in prop::collection::vec(0.0..5.0f64, 3),
            shape_idx in 0usize..4,
        ) {
            let shape = [Shape::Linear, Shape::Power(1.7), Shape::Exp(0.05), Shape::XLogX][shape_idx];
            let f = LoadFn::new(coeffs, shape, 1.3);
            let va = VecN::new(a);
            let vb = VecN::new(b);
            let mid = (&va + &vb).scaled(0.5);
            let lhs = f.eval(&mid);
            let rhs = 0.5 * (f.eval(&va) + f.eval(&vb));
            prop_assert!(lhs <= rhs + 1e-6 * (1.0 + rhs.abs()),
                "convexity violated for {shape:?}: f(mid)={lhs} > avg={rhs}");
        }

        /// Monotone non-decreasing in every load component.
        #[test]
        fn monotonicity(
            base in prop::collection::vec(0.0..100.0f64, 2),
            bump in 0.0..50.0f64,
            comp in 0usize..2,
            shape_idx in 0usize..4,
        ) {
            let shape = [Shape::Linear, Shape::Power(2.0), Shape::Exp(0.02), Shape::XLogX][shape_idx];
            let f = LoadFn::new(vec![0.7, 1.2], shape, 2.0);
            let lo = VecN::new(base);
            let mut hi = lo.clone();
            hi[comp] += bump;
            prop_assert!(f.eval(&hi) + 1e-9 >= f.eval(&lo));
        }
    }
}
