//! Mapping heuristics for the HiPer-D system.
//!
//! The paper's companion work (its reference \[2\], *Greedy heuristics for
//! resource allocation in dynamic distributed real-time heterogeneous
//! computing systems*) maps exactly this system with greedy heuristics;
//! §1's motivating problem is choosing mappings that maximize robustness.
//! This module provides:
//!
//! * [`RandomHiperd`] — the §4.3 experiment generator;
//! * [`RoundRobinHiperd`] — occupancy-balanced, function-oblivious;
//! * [`MinOccupancy`] — greedy occupancy balancing (minimizes the
//!   multitasking factor growth);
//! * [`SlackGreedy`] — greedy maximization of the worst partial throughput
//!   slack;
//! * [`RobustGreedy`] — greedy maximization of the worst partial
//!   throughput robustness radius (the Eq. 10a distances);
//! * [`RobustLocalSearch`] — hill-climbing on the full Eq. 11 metric from
//!   a greedy start (most expensive, best metric).

use crate::mapping::{multitask_factor, HiperdMapping};
use crate::model::HiperdSystem;
use crate::path::{app_rates, enumerate_paths};
use crate::robustness::load_robustness_with_paths;
use fepia_core::RadiusOptions;
use fepia_optim::VecN;
use rand::{Rng, RngCore};

/// A static HiPer-D mapping heuristic.
pub trait HiperdHeuristic {
    /// Short stable name for reports and benches.
    fn name(&self) -> &'static str;

    /// Produces a mapping for the system.
    fn map(&self, sys: &HiperdSystem, rng: &mut dyn RngCore) -> HiperdMapping;
}

/// Uniform random assignment (the paper's §4.3 sweep generator).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomHiperd;

impl HiperdHeuristic for RandomHiperd {
    fn name(&self) -> &'static str {
        "random"
    }

    fn map(&self, sys: &HiperdSystem, rng: &mut dyn RngCore) -> HiperdMapping {
        HiperdMapping::new(
            (0..sys.n_apps)
                .map(|_| rng.gen_range(0..sys.n_machines))
                .collect(),
            sys.n_machines,
        )
    }
}

/// Cyclic assignment `a_i → m_{i mod |M|}`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinHiperd;

impl HiperdHeuristic for RoundRobinHiperd {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn map(&self, sys: &HiperdSystem, _rng: &mut dyn RngCore) -> HiperdMapping {
        HiperdMapping::new(
            (0..sys.n_apps).map(|i| i % sys.n_machines).collect(),
            sys.n_machines,
        )
    }
}

/// Greedy occupancy balancing: each application goes to the currently
/// least-occupied machine (ties → lowest index). Minimizes the largest
/// multitasking factor, ignoring the functions themselves.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinOccupancy;

impl HiperdHeuristic for MinOccupancy {
    fn name(&self) -> &'static str {
        "min-occupancy"
    }

    fn map(&self, sys: &HiperdSystem, _rng: &mut dyn RngCore) -> HiperdMapping {
        let mut occ = vec![0usize; sys.n_machines];
        let mut assignment = Vec::with_capacity(sys.n_apps);
        for _ in 0..sys.n_apps {
            let j = occ
                .iter()
                .enumerate()
                .min_by_key(|&(_, &n)| n)
                .map(|(j, _)| j)
                .expect("at least one machine");
            occ[j] += 1;
            assignment.push(j);
        }
        HiperdMapping::new(assignment, sys.n_machines)
    }
}

/// Shared greedy skeleton: applications are committed in decreasing order
/// of their cheapest-machine computation value at `λ_orig`; each goes to
/// the machine maximizing `score` over the partial assignment.
fn greedy_by_score<S>(sys: &HiperdSystem, score: S) -> HiperdMapping
where
    // score(sys, partial assignment (usize::MAX = unassigned), occupancy,
    // rates, λ_orig) → larger is better.
    S: Fn(&HiperdSystem, &[usize], &[usize], &[Option<f64>], &VecN) -> f64,
{
    let lambda = VecN::new(sys.lambda_orig.clone());
    let paths = enumerate_paths(sys);
    let rates = app_rates(sys, &paths);

    // Order: heaviest applications first.
    let weight = |i: usize| {
        (0..sys.n_machines)
            .map(|j| sys.comp[i][j].eval(&lambda))
            .fold(f64::INFINITY, f64::min)
    };
    let mut order: Vec<usize> = (0..sys.n_apps).collect();
    order.sort_by(|&a, &b| weight(b).partial_cmp(&weight(a)).expect("no NaN"));

    let mut assignment = vec![usize::MAX; sys.n_apps];
    let mut occ = vec![0usize; sys.n_machines];
    for &i in &order {
        let mut best = (0usize, f64::NEG_INFINITY);
        for j in 0..sys.n_machines {
            assignment[i] = j;
            occ[j] += 1;
            let s = score(sys, &assignment, &occ, &rates, &lambda);
            occ[j] -= 1;
            if s > best.1 {
                best = (j, s);
            }
        }
        assignment[i] = best.0;
        occ[best.0] += 1;
    }
    HiperdMapping::new(assignment, sys.n_machines)
}

/// Worst throughput slack over the assigned applications of a partial
/// assignment.
fn partial_worst_slack(
    sys: &HiperdSystem,
    assignment: &[usize],
    occ: &[usize],
    rates: &[Option<f64>],
    lambda: &VecN,
) -> f64 {
    let mut worst = f64::INFINITY;
    for (i, &j) in assignment.iter().enumerate() {
        if j == usize::MAX {
            continue;
        }
        let Some(rate) = rates[i] else { continue };
        let t = sys.comp[i][j].eval(lambda) * multitask_factor(occ[j]);
        worst = worst.min(1.0 - t * rate);
    }
    worst
}

/// Worst throughput robustness radius (hyperplane distance) over the
/// assigned applications of a partial assignment.
fn partial_worst_radius(
    sys: &HiperdSystem,
    assignment: &[usize],
    occ: &[usize],
    rates: &[Option<f64>],
    lambda: &VecN,
) -> f64 {
    let mut worst = f64::INFINITY;
    for (i, &j) in assignment.iter().enumerate() {
        if j == usize::MAX {
            continue;
        }
        let Some(rate) = rates[i] else { continue };
        let f = sys.comp[i][j].scaled(multitask_factor(occ[j]));
        let value = f.eval(lambda);
        let gnorm = f.gradient(lambda).norm_l2();
        let radius = if gnorm <= f64::EPSILON {
            f64::INFINITY
        } else {
            (1.0 / rate - value) / gnorm
        };
        worst = worst.min(radius);
    }
    worst
}

/// Greedy maximization of the worst partial throughput **slack**.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlackGreedy;

impl HiperdHeuristic for SlackGreedy {
    fn name(&self) -> &'static str {
        "slack-greedy"
    }

    fn map(&self, sys: &HiperdSystem, _rng: &mut dyn RngCore) -> HiperdMapping {
        greedy_by_score(sys, partial_worst_slack)
    }
}

/// Greedy maximization of the worst partial throughput **robustness
/// radius** — the Eq. 10a distances, the quantity the paper argues should
/// drive mapping decisions.
#[derive(Clone, Copy, Debug, Default)]
pub struct RobustGreedy;

impl HiperdHeuristic for RobustGreedy {
    fn name(&self) -> &'static str {
        "robust-greedy"
    }

    fn map(&self, sys: &HiperdSystem, _rng: &mut dyn RngCore) -> HiperdMapping {
        greedy_by_score(sys, partial_worst_radius)
    }
}

/// Hill climbing on the full Eq. 11 metric: starts from [`RobustGreedy`],
/// then repeatedly applies the single reassignment that most improves
/// `ρ_μ(Φ, λ)` until no move helps or the iteration budget is spent.
#[derive(Clone, Copy, Debug)]
pub struct RobustLocalSearch {
    /// Maximum accepted moves.
    pub max_moves: usize,
}

impl Default for RobustLocalSearch {
    fn default() -> Self {
        RobustLocalSearch { max_moves: 20 }
    }
}

impl HiperdHeuristic for RobustLocalSearch {
    fn name(&self) -> &'static str {
        "robust-local-search"
    }

    fn map(&self, sys: &HiperdSystem, rng: &mut dyn RngCore) -> HiperdMapping {
        let paths = enumerate_paths(sys);
        let opts = RadiusOptions::default();
        let metric = |m: &HiperdMapping| {
            load_robustness_with_paths(sys, m, &paths, &opts)
                .map(|r| r.metric)
                .unwrap_or(0.0)
        };
        let mut current = RobustGreedy.map(sys, rng);
        let mut cur_metric = metric(&current);
        for _ in 0..self.max_moves {
            let mut best: Option<(usize, usize, f64)> = None;
            for app in 0..sys.n_apps {
                let old = current.machine_of(app);
                for j in 0..sys.n_machines {
                    if j == old {
                        continue;
                    }
                    let mut cand = current.clone();
                    cand.reassign(app, j);
                    let m = metric(&cand);
                    if m > cur_metric && best.as_ref().is_none_or(|&(_, _, bm)| m > bm) {
                        best = Some((app, j, m));
                    }
                }
            }
            let Some((app, j, m)) = best else { break };
            current.reassign(app, j);
            cur_metric = m;
        }
        current
    }
}

/// Every heuristic in this module, boxed, for sweep experiments.
pub fn all_hiperd_heuristics() -> Vec<Box<dyn HiperdHeuristic>> {
    vec![
        Box::new(RandomHiperd),
        Box::new(RoundRobinHiperd),
        Box::new(MinOccupancy),
        Box::new(SlackGreedy),
        Box::new(RobustGreedy),
        Box::new(RobustLocalSearch::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_system, GenParams};
    use crate::slack::system_slack;
    use fepia_stats::rng_for;

    fn system(seed: u64) -> HiperdSystem {
        generate_system(&mut rng_for(seed, 0), &GenParams::paper_section_4_3())
    }

    fn metric(sys: &HiperdSystem, m: &HiperdMapping) -> f64 {
        crate::robustness::load_robustness(sys, m, &RadiusOptions::default())
            .unwrap()
            .metric
    }

    #[test]
    fn all_heuristics_produce_valid_mappings() {
        let sys = system(1);
        for h in all_hiperd_heuristics() {
            let m = h.map(&sys, &mut rng_for(1, 9));
            assert_eq!(m.apps(), sys.n_apps, "{}", h.name());
            assert!(m.assignment().iter().all(|&j| j < sys.n_machines));
        }
    }

    #[test]
    fn min_occupancy_balances() {
        let sys = system(2);
        let m = MinOccupancy.map(&sys, &mut rng_for(0, 0));
        let occ = m.occupancy();
        let (lo, hi) = (occ.iter().min().unwrap(), occ.iter().max().unwrap());
        assert!(hi - lo <= 1, "unbalanced occupancy {occ:?}");
    }

    #[test]
    fn robust_greedy_beats_mean_random() {
        for seed in [3u64, 4] {
            let sys = system(seed);
            let greedy = metric(&sys, &RobustGreedy.map(&sys, &mut rng_for(seed, 0)));
            let randoms: Vec<f64> = (0..15)
                .map(|k| metric(&sys, &RandomHiperd.map(&sys, &mut rng_for(seed, 10 + k))))
                .collect();
            let mean = randoms.iter().sum::<f64>() / randoms.len() as f64;
            assert!(
                greedy > mean,
                "seed {seed}: robust-greedy {greedy} ≤ mean random {mean}"
            );
        }
    }

    #[test]
    fn local_search_never_hurts_greedy() {
        let sys = system(5);
        let g = metric(&sys, &RobustGreedy.map(&sys, &mut rng_for(5, 0)));
        let ls = metric(
            &sys,
            &RobustLocalSearch { max_moves: 5 }.map(&sys, &mut rng_for(5, 0)),
        );
        assert!(ls >= g - 1e-9, "local search {ls} worse than its start {g}");
    }

    #[test]
    fn slack_greedy_gets_good_slack() {
        let sys = system(6);
        let sg = system_slack(&sys, &SlackGreedy.map(&sys, &mut rng_for(6, 0)));
        let randoms: Vec<f64> = (0..15)
            .map(|k| system_slack(&sys, &RandomHiperd.map(&sys, &mut rng_for(6, 20 + k))))
            .collect();
        let mean = randoms.iter().sum::<f64>() / randoms.len() as f64;
        assert!(sg > mean, "slack-greedy {sg} ≤ mean random {mean}");
    }

    #[test]
    fn heuristic_names_unique() {
        let hs = all_hiperd_heuristics();
        let mut names: Vec<&str> = hs.iter().map(|h| h.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), hs.len());
    }
}
