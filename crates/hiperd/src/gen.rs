//! Random HiPer-D system generation, calibrated to §4.3.
//!
//! The paper's experiment: "19 paths, where the end-to-end latency
//! constraints of the paths were uniformly sampled from the range
//! [750, 1250]. The system had three sensors (with rates 4×10⁻⁵, 3×10⁻⁵,
//! and 8×10⁻⁶), and three actuators. … `T_ij^c(λ)` was assumed to be of the
//! form `Σ b_ijz λ_z`, where `b_ijz = 0` if there is no route from the z-th
//! sensor to application `a_i`. Otherwise, `b_ijz` was sampled from a Gamma
//! distribution with a mean of 10 and task and machine heterogeneity values
//! of 0.7 each." Initial loads (Table 2): λ_orig = (962, 380, 240).
//!
//! Two things are unpublished and must be synthesized (see `DESIGN.md`):
//!
//! * **the DAG topology** (Fig. 2 is only a picture) — we grow a random
//!   layered DAG and retry until the enumerated path count matches the
//!   target (19);
//! * **a consistent scaling** — the paper's published constants are not
//!   mutually consistent (e.g. Table 2's `6.50(26λ₁)` at `λ₁ = 962` exceeds
//!   every throughput bound while its slack is positive), so after sampling
//!   we **calibrate**: a single global factor scales all computation
//!   coefficients so the median binding throughput fraction over random
//!   mappings hits `target_throughput_fraction`, and the latency limits are
//!   `U[0.75, 1.25] ×` a scale chosen so the median worst-path latency
//!   fraction hits `target_latency_fraction`. This preserves all the
//!   *relative* structure (heterogeneity, rates, loads, ±25% latency
//!   spread) while making the experiment feasible, as the authors' system
//!   evidently was.

use crate::loadfn::LoadFn;
use crate::mapping::HiperdMapping;
use crate::model::{Edge, HiperdSystem, Node, Sensor};
use crate::path::enumerate_paths;
use crate::robustness::build_constraints;
use fepia_optim::VecN;
use fepia_stats::{summary::median, Gamma};
use rand::Rng;

/// Parameters for [`generate_system`].
#[derive(Clone, Debug, PartialEq)]
pub struct GenParams {
    /// Sensor rates (`4e-5, 3e-5, 8e-6` in the paper).
    pub sensor_rates: Vec<f64>,
    /// Initial loads `λ_orig` (`962, 380, 240` in Table 2).
    pub lambda_orig: Vec<f64>,
    /// Number of applications (20).
    pub apps: usize,
    /// Number of actuators (3).
    pub actuators: usize,
    /// Number of machines (5).
    pub machines: usize,
    /// Target number of enumerated paths (19).
    pub target_paths: usize,
    /// Mean of the Gamma coefficient distribution before calibration (10).
    pub coeff_mean: f64,
    /// Task heterogeneity of the coefficients (0.7).
    pub task_heterogeneity: f64,
    /// Machine heterogeneity of the coefficients (0.7).
    pub machine_heterogeneity: f64,
    /// Probability that a new application takes a second input (creating a
    /// multiple-input application and hence an update path).
    pub join_probability: f64,
    /// Probability that a producer stays available for further consumers
    /// after being consumed once (fan-out, multiplying trigger paths).
    pub fanout_probability: f64,
    /// Calibration target for the median binding throughput fraction.
    pub target_throughput_fraction: f64,
    /// Calibration target for the median worst-path latency fraction.
    pub target_latency_fraction: f64,
    /// Random mappings used by the calibration step.
    pub calibration_mappings: usize,
    /// DAG regeneration attempts before accepting the closest path count.
    pub max_attempts: usize,
}

impl GenParams {
    /// The paper's §4.3 experimental setting.
    pub fn paper_section_4_3() -> Self {
        GenParams {
            sensor_rates: vec![4e-5, 3e-5, 8e-6],
            lambda_orig: vec![962.0, 380.0, 240.0],
            apps: 20,
            actuators: 3,
            machines: 5,
            target_paths: 19,
            coeff_mean: 10.0,
            task_heterogeneity: 0.7,
            machine_heterogeneity: 0.7,
            join_probability: 0.25,
            fanout_probability: 0.35,
            target_throughput_fraction: 0.40,
            target_latency_fraction: 0.40,
            calibration_mappings: 64,
            max_attempts: 400,
        }
    }
}

/// Grows one random DAG: sensors feed source applications, later
/// applications consume from the open-output pool (sometimes two producers
/// → a join), producers sometimes stay open (fan-out), and every remaining
/// open application output is wired to a random actuator.
fn grow_dag<R: Rng + ?Sized>(rng: &mut R, p: &GenParams) -> Vec<Edge> {
    let s = p.sensor_rates.len();
    let zero = LoadFn::zero(s);
    let mut edges = Vec::new();
    // The open pool: nodes still looking for (more) consumers.
    let mut open: Vec<Node> = (0..s).map(Node::Sensor).collect();

    for i in 0..p.apps {
        // First parent: uniformly from the open pool (never empty: a
        // consumed producer is removed only after its consumer was added).
        let k = rng.gen_range(0..open.len());
        let parent = open[k];
        let keep = matches!(parent, Node::Sensor(_)) && open.len() <= s
            || rng.gen_range(0.0..1.0f64) < p.fanout_probability;
        if !keep {
            open.swap_remove(k);
        }
        edges.push(Edge {
            from: parent,
            to: Node::App(i),
            comm: zero.clone(),
        });
        // Optional second parent (join → multi-input application).
        if !open.is_empty() && rng.gen_range(0.0..1.0f64) < p.join_probability {
            let k2 = rng.gen_range(0..open.len());
            let parent2 = open[k2];
            if parent2 != parent && parent2 != Node::App(i) {
                if rng.gen_range(0.0..1.0f64) >= p.fanout_probability {
                    open.swap_remove(k2);
                }
                edges.push(Edge {
                    from: parent2,
                    to: Node::App(i),
                    comm: zero.clone(),
                });
            }
        }
        open.push(Node::App(i));
    }
    // Terminate every dangling application output at an actuator.
    for node in open {
        if let Node::App(i) = node {
            edges.push(Edge {
                from: Node::App(i),
                to: Node::Actuator(rng.gen_range(0..p.actuators)),
                comm: zero.clone(),
            });
        }
    }
    edges
}

/// Samples the CVB coefficient tensor `b_ijz` (zero off-route).
fn sample_coefficients<R: Rng + ?Sized>(
    rng: &mut R,
    p: &GenParams,
    routes: &[Vec<bool>],
) -> Vec<Vec<LoadFn>> {
    let s = p.sensor_rates.len();
    let task_gamma = Gamma::from_mean_heterogeneity(p.coeff_mean, p.task_heterogeneity);
    (0..p.apps)
        .map(|i| {
            // Per-(app, sensor) task value, shared across machines (CVB).
            let q: Vec<f64> = (0..s)
                .map(|z| {
                    if routes[i][z] {
                        task_gamma.sample(rng)
                    } else {
                        0.0
                    }
                })
                .collect();
            (0..p.machines)
                .map(|_| {
                    let coeffs: Vec<f64> = (0..s)
                        .map(|z| {
                            if routes[i][z] {
                                Gamma::from_mean_heterogeneity(q[z], p.machine_heterogeneity)
                                    .sample(rng)
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    LoadFn::linear(coeffs, 1.0)
                })
                .collect()
        })
        .collect()
}

/// Generates a complete, calibrated system. Deterministic given `rng`.
///
/// # Panics
/// Panics on degenerate parameters (no sensors/apps/machines, rates and
/// loads of different lengths, fractions outside (0, 1)).
pub fn generate_system<R: Rng + ?Sized>(rng: &mut R, p: &GenParams) -> HiperdSystem {
    assert_eq!(
        p.sensor_rates.len(),
        p.lambda_orig.len(),
        "one initial load per sensor"
    );
    assert!(!p.sensor_rates.is_empty() && p.apps > 0 && p.machines > 0);
    assert!(p.actuators > 0, "need at least one actuator");
    assert!(
        (0.0..1.0).contains(&p.target_throughput_fraction) && p.target_throughput_fraction > 0.0,
        "throughput fraction target must lie in (0, 1)"
    );
    assert!(
        (0.0..1.0).contains(&p.target_latency_fraction) && p.target_latency_fraction > 0.0,
        "latency fraction target must lie in (0, 1)"
    );

    // --- Topology: retry until the path count hits the target. ---
    let mut best: Option<(usize, Vec<Edge>)> = None;
    for _ in 0..p.max_attempts.max(1) {
        let edges = grow_dag(rng, p);
        let probe = HiperdSystem {
            sensors: p
                .sensor_rates
                .iter()
                .enumerate()
                .map(|(z, &r)| Sensor::new(format!("s{z}"), r))
                .collect(),
            n_apps: p.apps,
            n_actuators: p.actuators,
            n_machines: p.machines,
            edges,
            comp: vec![vec![LoadFn::zero(p.sensor_rates.len()); p.machines]; p.apps],
            latency_limits: Vec::new(),
            lambda_orig: p.lambda_orig.clone(),
        };
        let count = enumerate_paths(&probe).len();
        let gap = count.abs_diff(p.target_paths);
        if best.as_ref().is_none_or(|(g, _)| gap < *g) {
            let better = (gap, probe.edges);
            best = Some(better);
        }
        if gap == 0 {
            break;
        }
    }
    let (_, edges) = best.expect("at least one attempt");

    let mut sys = HiperdSystem {
        sensors: p
            .sensor_rates
            .iter()
            .enumerate()
            .map(|(z, &r)| Sensor::new(format!("s{z}"), r))
            .collect(),
        n_apps: p.apps,
        n_actuators: p.actuators,
        n_machines: p.machines,
        edges,
        comp: Vec::new(),
        latency_limits: Vec::new(),
        lambda_orig: p.lambda_orig.clone(),
    };

    // --- Coefficients on the realized routes. ---
    sys.comp = vec![vec![LoadFn::zero(p.sensor_rates.len()); p.machines]; p.apps];
    let routes = crate::dag::sensor_routes(&sys);
    sys.comp = sample_coefficients(rng, p, &routes);

    // --- Calibration over random mappings. ---
    let paths = enumerate_paths(&sys);
    sys.latency_limits = vec![f64::INFINITY; paths.len()];
    let lambda = VecN::new(sys.lambda_orig.clone());
    let mut worst_tp = Vec::with_capacity(p.calibration_mappings);
    let mut worst_lat = Vec::with_capacity(p.calibration_mappings);
    for _ in 0..p.calibration_mappings.max(1) {
        let m = HiperdMapping::random(rng, p.apps, p.machines);
        let set = build_constraints(&sys, &m, &paths);
        let mut tp_max: f64 = 0.0;
        let mut lat_max: f64 = 0.0;
        for c in &set.constraints {
            let v = c.value(&lambda);
            if c.name.starts_with("throughput") {
                tp_max = tp_max.max(v / c.bound);
            } else if c.name.starts_with("latency") {
                lat_max = lat_max.max(v); // bounds still unset; raw value
            }
        }
        worst_tp.push(tp_max);
        worst_lat.push(lat_max);
    }
    // Scale every coefficient so the median binding throughput fraction
    // lands on target.
    let tp_median = median(&worst_tp).max(f64::MIN_POSITIVE);
    let coeff_scale = p.target_throughput_fraction / tp_median;
    for row in &mut sys.comp {
        for f in row {
            *f = f.scaled(coeff_scale);
        }
    }
    // Latency limits: U[0.75, 1.25] × scale, with the scale placing the
    // median worst-path latency at the target fraction.
    let lat_median = median(&worst_lat).max(f64::MIN_POSITIVE) * coeff_scale;
    let lat_scale = lat_median / p.target_latency_fraction;
    sys.latency_limits = (0..paths.len())
        .map(|_| rng.gen_range(0.75..1.25) * lat_scale)
        .collect();

    sys.validate()
        .expect("generated system is structurally valid");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slack::system_slack_with_paths;
    use fepia_stats::rng_for;

    fn paper_system(seed: u64) -> HiperdSystem {
        generate_system(&mut rng_for(seed, 0), &GenParams::paper_section_4_3())
    }

    #[test]
    fn hits_target_path_count() {
        for seed in 0..5u64 {
            let sys = paper_system(seed);
            let n = enumerate_paths(&sys).len();
            assert!(n.abs_diff(19) <= 2, "seed {seed}: {n} paths, wanted ≈ 19");
        }
    }

    #[test]
    fn structure_matches_section_4_3() {
        let sys = paper_system(1);
        assert_eq!(sys.n_sensors(), 3);
        assert_eq!(sys.n_apps, 20);
        assert_eq!(sys.n_actuators, 3);
        assert_eq!(sys.n_machines, 5);
        assert_eq!(sys.lambda_orig, vec![962.0, 380.0, 240.0]);
        assert_eq!(sys.sensors[0].rate, 4e-5);
        // Latency limits span ±25% of their scale, like U[750, 1250].
        let lo = sys
            .latency_limits
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = sys.latency_limits.iter().cloned().fold(0.0, f64::max);
        assert!(hi / lo < 1.25 / 0.75 + 1e-9);
    }

    #[test]
    fn off_route_coefficients_are_zero() {
        let sys = paper_system(2);
        let routes = crate::dag::sensor_routes(&sys);
        for (i, route) in routes.iter().enumerate() {
            for j in 0..sys.n_machines {
                for (z, &routed) in route.iter().enumerate() {
                    if !routed {
                        assert_eq!(
                            sys.comp[i][j].coeffs[z], 0.0,
                            "b[{i}][{j}][{z}] nonzero without a route"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_app_lies_on_a_path() {
        let sys = paper_system(3);
        let paths = enumerate_paths(&sys);
        let mut covered = vec![false; sys.n_apps];
        for p in &paths {
            for &i in &p.apps {
                covered[i] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "some application lies on no path: {covered:?}"
        );
        assert!(paths
            .iter()
            .all(|p| p.terminal != crate::path::Terminal::DeadEnd));
    }

    #[test]
    fn calibration_makes_most_mappings_feasible() {
        // After calibration the Fig. 4 sweep must see mostly positive slack
        // (the paper's slack axis spans ≈ [0.2, 0.65]).
        let sys = paper_system(4);
        let paths = enumerate_paths(&sys);
        let mut rng = rng_for(4, 1);
        let positive = (0..200)
            .filter(|_| {
                let m = HiperdMapping::random(&mut rng, sys.n_apps, sys.n_machines);
                system_slack_with_paths(&sys, &m, &paths) > 0.0
            })
            .count();
        assert!(
            positive >= 120,
            "only {positive}/200 random mappings feasible after calibration"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = paper_system(7);
        let b = paper_system(7);
        assert_eq!(a, b);
    }
}
