//! System-wide percentage slack (§4.3).
//!
//! "Let the fractional value of a given QoS attribute be the value of the
//! attribute as a percentage of the maximum allowed value. Then the
//! percentage slack for a given QoS attribute is the fractional value
//! subtracted from 1. The system-wide percentage slack is the minimum value
//! of percentage slack taken over all QoS constraints."
//!
//! The experiments show slack is **not** a reliable proxy for robustness —
//! reproducing that comparison is the whole point of Fig. 4 / Table 2.

use crate::mapping::HiperdMapping;
use crate::model::HiperdSystem;
use crate::path::{enumerate_paths, Path};
use crate::robustness::build_constraints;
use fepia_optim::VecN;

/// The system-wide percentage slack of a mapped system at its initial load
/// `λ_orig`: `min over constraints of (1 − value/bound)`. Negative when
/// some constraint is already violated.
pub fn system_slack(sys: &HiperdSystem, mapping: &HiperdMapping) -> f64 {
    let paths = enumerate_paths(sys);
    system_slack_with_paths(sys, mapping, &paths)
}

/// As [`system_slack`], with pre-enumerated paths (for sweeps).
pub fn system_slack_with_paths(sys: &HiperdSystem, mapping: &HiperdMapping, paths: &[Path]) -> f64 {
    let set = build_constraints(sys, mapping, paths);
    let lambda = VecN::new(sys.lambda_orig.clone());
    set.constraints
        .iter()
        .map(|c| 1.0 - c.fraction(&lambda))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::test_support::tiny_system;

    #[test]
    fn slack_hand_computed() {
        // From the constraint values in robustness.rs tests:
        //   a_0: 520/1000 → slack 0.48   (minimum)
        //   a_1: 390/1000 → 0.61
        //   a_2: 100/2000 → 0.95
        //   P_0: 910/2000 → 0.545
        //   P_1: 100/2500 → 0.96
        let sys = tiny_system();
        let m = HiperdMapping::new(vec![0, 0, 1], 2);
        assert!((system_slack(&sys, &m) - 0.48).abs() < 1e-12);
    }

    #[test]
    fn violated_system_has_negative_slack() {
        let mut sys = tiny_system();
        sys.lambda_orig = vec![1_000.0, 50.0]; // a_0: 2.6·2·1000 = 5200 > 1000
        let m = HiperdMapping::new(vec![0, 0, 1], 2);
        assert!(system_slack(&sys, &m) < 0.0);
    }

    #[test]
    fn lighter_load_increases_slack() {
        let sys = tiny_system();
        let m = HiperdMapping::new(vec![0, 0, 1], 2);
        let base = system_slack(&sys, &m);
        let mut lighter = sys.clone();
        lighter.lambda_orig = vec![50.0, 25.0];
        assert!(system_slack(&lighter, &m) > base);
    }

    #[test]
    fn slack_with_paths_matches() {
        let sys = tiny_system();
        let m = HiperdMapping::new(vec![0, 1, 1], 2);
        let paths = enumerate_paths(&sys);
        assert_eq!(
            system_slack(&sys, &m),
            system_slack_with_paths(&sys, &m, &paths)
        );
    }
}
