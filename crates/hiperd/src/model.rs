//! The HiPer-D system model: sensors, applications, actuators, transfers.

use crate::loadfn::LoadFn;

/// A sensor: "produces data periodically at a certain rate". `rate` is the
/// maximum periodic output data rate; `1/rate` is the throughput bound for
/// everything in paths it drives.
#[derive(Clone, Debug, PartialEq)]
pub struct Sensor {
    /// Display name.
    pub name: String,
    /// Output data rate (the §4.3 experiment uses 4×10⁻⁵, 3×10⁻⁵, 8×10⁻⁶).
    pub rate: f64,
}

impl Sensor {
    /// Creates a sensor with a positive rate.
    pub fn new(name: impl Into<String>, rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "sensor rate must be positive"
        );
        Sensor {
            name: name.into(),
            rate,
        }
    }
}

/// A vertex of the HiPer-D graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// The `z`-th sensor (diamond in the paper's Fig. 2).
    Sensor(usize),
    /// The `i`-th application (circle).
    App(usize),
    /// The `t`-th actuator (rectangle).
    Actuator(usize),
}

/// A directed data transfer with its communication-time function
/// `T_ip^n(λ)` (identically zero in the §4.3 experiments).
#[derive(Clone, Debug, PartialEq)]
pub struct Edge {
    /// Producer endpoint.
    pub from: Node,
    /// Consumer endpoint.
    pub to: Node,
    /// Communication-time function of the load vector.
    pub comm: LoadFn,
}

/// The full system: the DAG of Fig. 2 plus per-(app, machine) computation
/// time functions, sensor rates, initial loads and per-path latency bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct HiperdSystem {
    /// The sensors (with their rates).
    pub sensors: Vec<Sensor>,
    /// Number of applications `|A|`.
    pub n_apps: usize,
    /// Number of actuators.
    pub n_actuators: usize,
    /// Number of machines `|M|`.
    pub n_machines: usize,
    /// All data transfers.
    pub edges: Vec<Edge>,
    /// `comp[i][j]` — computation-time function `T_ij^c(λ)` of application
    /// `a_i` on machine `m_j`, **before** the multitasking factor.
    pub comp: Vec<Vec<LoadFn>>,
    /// `L_k^max` per enumerated path (aligned with
    /// [`crate::path::enumerate_paths`] order).
    pub latency_limits: Vec<f64>,
    /// The initial load vector `λ_orig` (objects per data set).
    pub lambda_orig: Vec<f64>,
}

impl HiperdSystem {
    /// Number of sensors (= the dimension of `λ`).
    pub fn n_sensors(&self) -> usize {
        self.sensors.len()
    }

    /// Validates structural consistency; returns a description of the first
    /// problem found. Called by the generator and recommended after manual
    /// construction.
    pub fn validate(&self) -> Result<(), String> {
        let s = self.n_sensors();
        if s == 0 {
            return Err("system has no sensors".into());
        }
        if self.n_apps == 0 {
            return Err("system has no applications".into());
        }
        if self.n_machines == 0 {
            return Err("system has no machines".into());
        }
        if self.lambda_orig.len() != s {
            return Err(format!(
                "lambda_orig has {} entries for {s} sensors",
                self.lambda_orig.len()
            ));
        }
        if self.lambda_orig.iter().any(|&l| l < 0.0 || !l.is_finite()) {
            return Err("negative or non-finite initial load".into());
        }
        if self.comp.len() != self.n_apps {
            return Err(format!(
                "comp has {} rows for {} applications",
                self.comp.len(),
                self.n_apps
            ));
        }
        for (i, row) in self.comp.iter().enumerate() {
            if row.len() != self.n_machines {
                return Err(format!("comp row {i} has {} machines", row.len()));
            }
            for (j, f) in row.iter().enumerate() {
                if f.dim() != s {
                    return Err(format!("comp[{i}][{j}] has dimension {}", f.dim()));
                }
            }
        }
        for (k, e) in self.edges.iter().enumerate() {
            let ok_from = match e.from {
                Node::Sensor(z) => z < s,
                Node::App(i) => i < self.n_apps,
                Node::Actuator(_) => false, // actuators never produce
            };
            let ok_to = match e.to {
                Node::Sensor(_) => false, // sensors never consume
                Node::App(i) => i < self.n_apps,
                Node::Actuator(t) => t < self.n_actuators,
            };
            if !ok_from || !ok_to {
                return Err(format!(
                    "edge {k} has invalid endpoints {:?}→{:?}",
                    e.from, e.to
                ));
            }
            if e.comm.dim() != s {
                return Err(format!(
                    "edge {k} comm function has dimension {}",
                    e.comm.dim()
                ));
            }
        }
        crate::dag::check_acyclic(self)?;
        Ok(())
    }

    /// The successor applications `D(a_i)` of application `i`.
    pub fn successors(&self, app: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|e| match (e.from, e.to) {
                (Node::App(i), Node::App(p)) if i == app => Some(p),
                _ => None,
            })
            .collect()
    }

    /// Edges out of `node`, as `(edge index, &Edge)`.
    pub fn edges_from(&self, node: Node) -> Vec<(usize, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == node)
            .collect()
    }

    /// In-degree of application `i` (sensor + application inputs). An
    /// application with in-degree ≥ 2 is a "multiple-input application" —
    /// an update-path terminal.
    pub fn in_degree(&self, app: usize) -> usize {
        self.edges.iter().filter(|e| e.to == Node::App(app)).count()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::loadfn::LoadFn;

    /// The miniature system used across this crate's unit tests:
    ///
    /// ```text
    /// s0 → a0 → a1 → act0        (trigger path for s0)
    /// s1 → a2 ──┘                (a1 has in-degree 2 → update terminal)
    /// ```
    ///
    /// 2 sensors, 3 apps, 1 actuator, 2 machines; linear computation
    /// functions; zero communication times.
    pub fn tiny_system() -> HiperdSystem {
        let zero = LoadFn::zero(2);
        let sys = HiperdSystem {
            sensors: vec![Sensor::new("s0", 1e-3), Sensor::new("s1", 5e-4)],
            n_apps: 3,
            n_actuators: 1,
            n_machines: 2,
            edges: vec![
                Edge {
                    from: Node::Sensor(0),
                    to: Node::App(0),
                    comm: zero.clone(),
                },
                Edge {
                    from: Node::App(0),
                    to: Node::App(1),
                    comm: zero.clone(),
                },
                Edge {
                    from: Node::App(1),
                    to: Node::Actuator(0),
                    comm: zero.clone(),
                },
                Edge {
                    from: Node::Sensor(1),
                    to: Node::App(2),
                    comm: zero.clone(),
                },
                Edge {
                    from: Node::App(2),
                    to: Node::App(1),
                    comm: zero,
                },
            ],
            comp: vec![
                // a0 reads sensor 0 only.
                vec![
                    LoadFn::linear(vec![2.0, 0.0], 1.0),
                    LoadFn::linear(vec![3.0, 0.0], 1.0),
                ],
                // a1 reads both sensors (it joins the streams).
                vec![
                    LoadFn::linear(vec![1.0, 1.0], 1.0),
                    LoadFn::linear(vec![2.0, 2.0], 1.0),
                ],
                // a2 reads sensor 1 only.
                vec![
                    LoadFn::linear(vec![0.0, 4.0], 1.0),
                    LoadFn::linear(vec![0.0, 2.0], 1.0),
                ],
            ],
            latency_limits: vec![2_000.0, 2_500.0],
            lambda_orig: vec![100.0, 50.0],
        };
        sys.validate().expect("tiny system is valid");
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::tiny_system;
    use super::*;

    #[test]
    fn tiny_system_validates() {
        let sys = tiny_system();
        assert_eq!(sys.n_sensors(), 2);
        assert_eq!(sys.n_apps, 3);
    }

    #[test]
    fn successors_are_application_only() {
        let sys = tiny_system();
        assert_eq!(sys.successors(0), vec![1]);
        assert_eq!(sys.successors(1), Vec::<usize>::new()); // a1 → actuator only
        assert_eq!(sys.successors(2), vec![1]);
    }

    #[test]
    fn in_degree_counts_all_inputs() {
        let sys = tiny_system();
        assert_eq!(sys.in_degree(0), 1);
        assert_eq!(sys.in_degree(1), 2); // multi-input application
        assert_eq!(sys.in_degree(2), 1);
    }

    #[test]
    fn edges_from_filters() {
        let sys = tiny_system();
        assert_eq!(sys.edges_from(Node::Sensor(0)).len(), 1);
        assert_eq!(sys.edges_from(Node::App(1)).len(), 1);
        assert_eq!(sys.edges_from(Node::Actuator(0)).len(), 0);
    }

    #[test]
    fn validation_rejects_bad_lambda() {
        let mut sys = tiny_system();
        sys.lambda_orig = vec![1.0];
        assert!(sys.validate().unwrap_err().contains("lambda_orig"));
    }

    #[test]
    fn validation_rejects_actuator_producer() {
        let mut sys = tiny_system();
        sys.edges.push(Edge {
            from: Node::Actuator(0),
            to: Node::App(0),
            comm: LoadFn::zero(2),
        });
        assert!(sys.validate().unwrap_err().contains("invalid endpoints"));
    }

    #[test]
    fn validation_rejects_wrong_comp_dimension() {
        let mut sys = tiny_system();
        sys.comp[0][0] = LoadFn::linear(vec![1.0], 1.0);
        assert!(sys.validate().unwrap_err().contains("dimension"));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn sensor_rate_validated() {
        Sensor::new("bad", 0.0);
    }
}
