//! Graph queries over the HiPer-D DAG.

use crate::model::{HiperdSystem, Node};

/// Checks that the application-to-application edges form a DAG (Kahn's
/// algorithm over application vertices; sensor and actuator endpoints cannot
/// participate in cycles by construction).
pub fn check_acyclic(sys: &HiperdSystem) -> Result<(), String> {
    let n = sys.n_apps;
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &sys.edges {
        if let (Node::App(i), Node::App(p)) = (e.from, e.to) {
            adj[i].push(p);
            indeg[p] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(i) = queue.pop() {
        seen += 1;
        for &p in &adj[i] {
            indeg[p] -= 1;
            if indeg[p] == 0 {
                queue.push(p);
            }
        }
    }
    if seen == n {
        Ok(())
    } else {
        Err("application graph contains a cycle".into())
    }
}

/// A topological order of the applications (predecessors first).
///
/// # Panics
/// Panics if the graph is cyclic (callers validate first).
pub fn topological_order(sys: &HiperdSystem) -> Vec<usize> {
    let n = sys.n_apps;
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &sys.edges {
        if let (Node::App(i), Node::App(p)) = (e.from, e.to) {
            adj[i].push(p);
            indeg[p] += 1;
        }
    }
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &p in &adj[i] {
            indeg[p] -= 1;
            if indeg[p] == 0 {
                queue.push_back(p);
            }
        }
    }
    assert_eq!(order.len(), n, "cyclic application graph");
    order
}

/// For each application, the set of sensors with a route to it (as a boolean
/// mask). "b_ijz = 0 if there is no route from the z-th sensor to
/// application a_i" (§4.3) — the generator uses this to zero coefficients.
pub fn sensor_routes(sys: &HiperdSystem) -> Vec<Vec<bool>> {
    let n = sys.n_apps;
    let s = sys.n_sensors();
    let mut reach = vec![vec![false; s]; n];
    // Seed: direct sensor→app edges.
    for e in &sys.edges {
        if let (Node::Sensor(z), Node::App(i)) = (e.from, e.to) {
            reach[i][z] = true;
        }
    }
    // Propagate along application edges in topological order.
    for i in topological_order(sys) {
        for p in sys.successors(i) {
            let from = reach[i].clone();
            for (slot, src) in reach[p].iter_mut().zip(from) {
                *slot |= src;
            }
        }
    }
    reach
}

/// Applications with no incoming application edge and at least one sensor
/// input ("source" applications, fed directly by sensors).
pub fn source_apps(sys: &HiperdSystem) -> Vec<usize> {
    (0..sys.n_apps)
        .filter(|&i| {
            let mut has_sensor = false;
            let mut has_app = false;
            for e in &sys.edges {
                match (e.from, e.to) {
                    (Node::Sensor(_), Node::App(p)) if p == i => has_sensor = true,
                    (Node::App(_), Node::App(p)) if p == i => has_app = true,
                    _ => {}
                }
            }
            has_sensor && !has_app
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadfn::LoadFn;
    use crate::model::test_support::tiny_system;
    use crate::model::Edge;

    #[test]
    fn tiny_system_is_acyclic() {
        assert!(check_acyclic(&tiny_system()).is_ok());
    }

    #[test]
    fn cycle_detected() {
        let mut sys = tiny_system();
        // a1 → a0 closes the cycle a0 → a1 → a0.
        sys.edges.push(Edge {
            from: Node::App(1),
            to: Node::App(0),
            comm: LoadFn::zero(2),
        });
        assert!(check_acyclic(&sys).is_err());
        assert!(sys.validate().is_err());
    }

    #[test]
    fn topological_order_respects_edges() {
        let sys = tiny_system();
        let order = topological_order(&sys);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1)); // a0 → a1
        assert!(pos(2) < pos(1)); // a2 → a1
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn sensor_routes_propagate() {
        let sys = tiny_system();
        let routes = sensor_routes(&sys);
        assert_eq!(routes[0], vec![true, false]); // a0 ← s0 only
        assert_eq!(routes[2], vec![false, true]); // a2 ← s1 only
        assert_eq!(routes[1], vec![true, true]); // a1 joins both
    }

    #[test]
    fn source_apps_found() {
        let sys = tiny_system();
        assert_eq!(source_apps(&sys), vec![0, 2]);
    }
}
