//! Chart theme: a validated light-mode palette.
//!
//! Values are the reference data-viz palette (categorical slots in the
//! CVD-safe fixed order, ink text tokens, recessive structure colors).
//! Series hues are assigned by slot order and never cycled.

/// Chart surface (background).
pub const SURFACE: &str = "#fcfcfb";
/// Primary ink (titles, axis labels).
pub const TEXT_PRIMARY: &str = "#0b0b0b";
/// Secondary ink (tick labels, captions).
pub const TEXT_SECONDARY: &str = "#52514e";
/// Recessive grid lines.
pub const GRID: &str = "#e8e7e3";
/// Axis lines.
pub const AXIS: &str = "#b5b3ac";

/// The categorical series palette, in fixed assignment order
/// (blue, aqua, yellow, green, violet, red, magenta, orange).
pub const SERIES: [&str; 8] = [
    "#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
];

/// The hue for series slot `i` (folding beyond 8 is the caller's job — the
/// palette is never cycled; this asserts instead).
pub fn series_color(i: usize) -> &'static str {
    assert!(
        i < SERIES.len(),
        "only {} categorical slots; fold extra series instead of cycling hues",
        SERIES.len()
    );
    SERIES[i]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_distinct() {
        let mut s = SERIES.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), SERIES.len());
    }

    #[test]
    fn lookup_in_order() {
        assert_eq!(series_color(0), "#2a78d6");
        assert_eq!(series_color(5), "#e34948");
    }

    #[test]
    #[should_panic(expected = "categorical slots")]
    fn never_cycles() {
        series_color(8);
    }
}
