//! Axis scales and "nice" tick placement.

/// A linear map from a data domain to pixel coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Data domain `(lo, hi)`.
    pub domain: (f64, f64),
    /// Pixel range `(lo, hi)` (may be inverted for y axes).
    pub range: (f64, f64),
}

impl Scale {
    /// Creates a scale; the domain must be non-degenerate.
    pub fn new(domain: (f64, f64), range: (f64, f64)) -> Self {
        assert!(
            domain.1 > domain.0,
            "degenerate scale domain [{}, {}]",
            domain.0,
            domain.1
        );
        Scale { domain, range }
    }

    /// Maps a data value to pixels.
    pub fn map(&self, x: f64) -> f64 {
        let t = (x - self.domain.0) / (self.domain.1 - self.domain.0);
        self.range.0 + t * (self.range.1 - self.range.0)
    }
}

/// Expands a raw data extent into a "nice" domain with a small margin and
/// returns it with tick positions: at most `max_ticks` ticks at a 1/2/5×10ᵏ
/// step.
pub fn nice_domain(lo: f64, hi: f64, max_ticks: usize) -> ((f64, f64), Vec<f64>) {
    assert!(max_ticks >= 2, "need at least two ticks");
    let (lo, hi) = if hi > lo {
        (lo, hi)
    } else {
        (lo - 0.5, lo + 0.5) // degenerate extent: widen symmetrically
    };
    let span = hi - lo;
    let raw_step = span / (max_ticks - 1) as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (lo / step).floor() * step;
    let end = (hi / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= end + step * 1e-9 {
        ticks.push(t);
        t += step;
    }
    ((start, end), ticks)
}

/// Formats a tick label compactly (trims trailing zeros; switches to
/// scientific notation for very large/small magnitudes).
pub fn tick_label(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        return format!("{v:.1e}");
    }
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_linearly() {
        let s = Scale::new((0.0, 10.0), (100.0, 200.0));
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 200.0);
        assert_eq!(s.map(5.0), 150.0);
    }

    #[test]
    fn inverted_range_for_y_axes() {
        let s = Scale::new((0.0, 1.0), (300.0, 0.0));
        assert_eq!(s.map(0.0), 300.0);
        assert_eq!(s.map(1.0), 0.0);
    }

    #[test]
    fn nice_domain_covers_extent() {
        let ((lo, hi), ticks) = nice_domain(3.2, 97.5, 6);
        assert!(lo <= 3.2 && hi >= 97.5);
        assert!(ticks.len() >= 2 && ticks.len() <= 8);
        // 1/2/5 steps: consecutive differences all equal
        let step = ticks[1] - ticks[0];
        for w in ticks.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-9);
        }
    }

    #[test]
    fn nice_domain_handles_degenerate_extent() {
        let ((lo, hi), ticks) = nice_domain(5.0, 5.0, 5);
        assert!(lo < 5.0 && hi > 5.0);
        assert!(!ticks.is_empty());
    }

    #[test]
    fn tick_labels() {
        assert_eq!(tick_label(0.0), "0");
        assert_eq!(tick_label(2.5), "2.5");
        assert_eq!(tick_label(100.0), "100");
        assert_eq!(tick_label(2e7), "2.0e7");
        assert_eq!(tick_label(1e-5), "1.0e-5");
    }

    #[test]
    #[should_panic(expected = "degenerate scale domain")]
    fn scale_rejects_empty_domain() {
        Scale::new((1.0, 1.0), (0.0, 10.0));
    }
}
