//! Minimal SVG document writer.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes text content for XML.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Text anchoring for [`SvgDoc::text`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Anchor {
    /// Left-aligned at the given x.
    Start,
    /// Centered on the given x.
    Middle,
    /// Right-aligned at the given x.
    End,
}

impl Anchor {
    fn attr(self) -> &'static str {
        match self {
            Anchor::Start => "start",
            Anchor::Middle => "middle",
            Anchor::End => "end",
        }
    }
}

/// An SVG document under construction.
#[derive(Clone, Debug)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

impl SvgDoc {
    /// Creates an empty document of the given pixel size, filled with the
    /// given background color.
    pub fn new(width: f64, height: f64, background: &str) -> Self {
        assert!(width > 0.0 && height > 0.0, "non-positive SVG size");
        let mut doc = SvgDoc {
            width,
            height,
            body: String::new(),
        };
        let _ = writeln!(
            doc.body,
            r#"<rect x="0" y="0" width="{width}" height="{height}" fill="{background}"/>"#
        );
        doc
    }

    /// Document width in pixels.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height in pixels.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Draws a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// Draws a filled circle with an optional 2px surface ring (the mark
    /// spec for overlapping scatter points).
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, ring: Option<&str>) {
        match ring {
            Some(ring) => {
                let _ = writeln!(
                    self.body,
                    r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}" stroke="{ring}" stroke-width="2"/>"#
                );
            }
            None => {
                let _ = writeln!(
                    self.body,
                    r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#
                );
            }
        }
    }

    /// Draws a rectangle (optionally rounded).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, rx: f64) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" rx="{rx}" fill="{fill}"/>"#
        );
    }

    /// Draws an unfilled polygon outline (used for sensor diamonds).
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, stroke: &str) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polygon points="{}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"#,
            pts.join(" ")
        );
    }

    /// Draws a polyline (stroked, unfilled).
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.len() < 2 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}"/>"#,
            pts.join(" ")
        );
    }

    /// Draws text. `size` in px; color should be an ink token, never a
    /// series hue.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, color: &str, anchor: Anchor) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="system-ui, sans-serif" fill="{color}" text-anchor="{}">{}</text>"#,
            anchor.attr(),
            escape(content)
        );
    }

    /// Draws an arrowhead-terminated line (for DAG edges).
    pub fn arrow(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str) {
        self.line(x1, y1, x2, y2, stroke, 1.0);
        // Arrowhead: two short strokes at the destination.
        let dx = x2 - x1;
        let dy = y2 - y1;
        let len = (dx * dx + dy * dy).sqrt();
        if len < 1e-9 {
            return;
        }
        let (ux, uy) = (dx / len, dy / len);
        let (px, py) = (-uy, ux);
        let size = 4.0;
        let bx = x2 - ux * size * 1.8;
        let by = y2 - uy * size * 1.8;
        self.line(x2, y2, bx + px * size, by + py * size, stroke, 1.0);
        self.line(x2, y2, bx - px * size, by - py * size, stroke, 1.0);
    }

    /// Renders the finished document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }

    /// Writes the document to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_document() {
        let mut doc = SvgDoc::new(100.0, 50.0, "#ffffff");
        doc.line(0.0, 0.0, 10.0, 10.0, "#000000", 1.0);
        doc.circle(5.0, 5.0, 2.0, "#ff0000", None);
        doc.circle(6.0, 6.0, 2.0, "#ff0000", Some("#ffffff"));
        doc.rect(1.0, 1.0, 5.0, 5.0, "#00ff00", 2.0);
        doc.text(50.0, 25.0, "hello", 12.0, "#000", Anchor::Middle);
        doc.polyline(&[(0.0, 0.0), (1.0, 1.0)], "#123456", 2.0);
        doc.polygon(&[(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)], "#abc", "#def");
        doc.arrow(0.0, 0.0, 10.0, 0.0, "#999");
        let svg = doc.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("stroke-width=\"2\"")); // ring on second circle
        assert!(svg.contains("hello"));
        assert!(svg.contains("viewBox=\"0 0 100 50\""));
    }

    #[test]
    fn escapes_text() {
        let mut doc = SvgDoc::new(10.0, 10.0, "#fff");
        doc.text(0.0, 0.0, "a < b & \"c\"", 10.0, "#000", Anchor::Start);
        let svg = doc.render();
        assert!(svg.contains("a &lt; b &amp; &quot;c&quot;"));
    }

    #[test]
    fn degenerate_polyline_is_skipped() {
        let mut doc = SvgDoc::new(10.0, 10.0, "#fff");
        doc.polyline(&[(1.0, 1.0)], "#000", 1.0);
        assert!(!doc.render().contains("polyline"));
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn rejects_zero_size() {
        SvgDoc::new(0.0, 10.0, "#fff");
    }

    #[test]
    fn save_writes_file() {
        let mut path = std::env::temp_dir();
        path.push("fepia_plot_svg_test.svg");
        let doc = SvgDoc::new(10.0, 10.0, "#fff");
        doc.save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        let _ = std::fs::remove_file(&path);
    }
}
