//! Scatter / line charts (Figs. 1, 3 and 4).

use crate::axis::{nice_domain, tick_label, Scale};
use crate::svg::{Anchor, SvgDoc};
use crate::theme;

/// How a series is drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Individual points (the 1000-mapping clouds).
    Points,
    /// A connected 2px line (boundary curves, fitted lines).
    Line,
}

/// One named series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` data.
    pub points: Vec<(f64, f64)>,
    /// Points or line.
    pub kind: SeriesKind,
}

impl Series {
    /// A point-cloud series.
    pub fn points(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
            kind: SeriesKind::Points,
        }
    }

    /// A line series.
    pub fn line(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
            kind: SeriesKind::Line,
        }
    }
}

/// A 2-D chart with nice-tick axes, a recessive grid, and a legend when
/// more than one series is present.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Chart title (primary ink).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, in palette-slot order (≤ 8; never cycled).
    pub series: Vec<Series>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (assigned the next palette slot).
    pub fn add(&mut self, series: Series) -> &mut Self {
        assert!(
            self.series.len() < theme::SERIES.len(),
            "at most {} series; fold the rest",
            theme::SERIES.len()
        );
        self.series.push(series);
        self
    }

    /// The joint data extent over all series.
    fn extent(&self) -> ((f64, f64), (f64, f64)) {
        let mut xr = (f64::INFINITY, f64::NEG_INFINITY);
        let mut yr = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for &(x, y) in &s.points {
                xr = (xr.0.min(x), xr.1.max(x));
                yr = (yr.0.min(y), yr.1.max(y));
            }
        }
        (xr, yr)
    }

    /// Renders to SVG.
    ///
    /// # Panics
    /// Panics if no series has any points.
    pub fn render(&self, width: f64, height: f64) -> SvgDoc {
        let (xr, yr) = self.extent();
        assert!(
            xr.0.is_finite() && yr.0.is_finite(),
            "chart has no data points"
        );

        let margin_left = 64.0;
        let margin_right = 24.0;
        let margin_top = 40.0;
        let margin_bottom = 56.0;
        let (xd, xticks) = nice_domain(xr.0, xr.1, 7);
        let (yd, yticks) = nice_domain(yr.0, yr.1, 6);
        let xs = Scale::new(xd, (margin_left, width - margin_right));
        let ys = Scale::new(yd, (height - margin_bottom, margin_top));

        let mut doc = SvgDoc::new(width, height, theme::SURFACE);

        // Grid (recessive) + tick labels (secondary ink).
        for &t in &xticks {
            let x = xs.map(t);
            doc.line(x, margin_top, x, height - margin_bottom, theme::GRID, 1.0);
            doc.text(
                x,
                height - margin_bottom + 16.0,
                &tick_label(t),
                10.0,
                theme::TEXT_SECONDARY,
                Anchor::Middle,
            );
        }
        for &t in &yticks {
            let y = ys.map(t);
            doc.line(margin_left, y, width - margin_right, y, theme::GRID, 1.0);
            doc.text(
                margin_left - 6.0,
                y + 3.0,
                &tick_label(t),
                10.0,
                theme::TEXT_SECONDARY,
                Anchor::End,
            );
        }
        // Axis lines.
        doc.line(
            margin_left,
            height - margin_bottom,
            width - margin_right,
            height - margin_bottom,
            theme::AXIS,
            1.0,
        );
        doc.line(
            margin_left,
            margin_top,
            margin_left,
            height - margin_bottom,
            theme::AXIS,
            1.0,
        );

        // Series marks.
        for (slot, s) in self.series.iter().enumerate() {
            let color = theme::series_color(slot);
            match s.kind {
                SeriesKind::Points => {
                    for &(x, y) in &s.points {
                        doc.circle(xs.map(x), ys.map(y), 2.5, color, None);
                    }
                }
                SeriesKind::Line => {
                    let pts: Vec<(f64, f64)> = s
                        .points
                        .iter()
                        .map(|&(x, y)| (xs.map(x), ys.map(y)))
                        .collect();
                    doc.polyline(&pts, color, 2.0);
                }
            }
        }

        // Titles and axis labels (ink tokens).
        doc.text(
            width / 2.0,
            22.0,
            &self.title,
            14.0,
            theme::TEXT_PRIMARY,
            Anchor::Middle,
        );
        doc.text(
            (margin_left + width - margin_right) / 2.0,
            height - 16.0,
            &self.x_label,
            12.0,
            theme::TEXT_PRIMARY,
            Anchor::Middle,
        );
        // Y label: horizontal at the top-left (no rotation keeps the writer
        // simple and the label legible).
        doc.text(
            8.0,
            margin_top - 10.0,
            &self.y_label,
            12.0,
            theme::TEXT_PRIMARY,
            Anchor::Start,
        );

        // Legend (only with ≥ 2 series — a single series is named by the
        // title).
        if self.series.len() >= 2 {
            let mut ly = margin_top + 6.0;
            let lx = width - margin_right - 150.0;
            for (slot, s) in self.series.iter().enumerate() {
                doc.circle(lx, ly - 3.0, 4.0, theme::series_color(slot), None);
                doc.text(
                    lx + 10.0,
                    ly,
                    &s.name,
                    11.0,
                    theme::TEXT_SECONDARY,
                    Anchor::Start,
                );
                ly += 16.0;
            }
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        let mut c = Chart::new("Robustness vs makespan", "makespan", "robustness");
        c.add(Series::points(
            "mappings",
            vec![(10.0, 1.0), (20.0, 2.0), (30.0, 1.5)],
        ));
        c
    }

    #[test]
    fn renders_points_and_labels() {
        let svg = sample_chart().render(640.0, 480.0).render();
        assert!(svg.contains("<circle"));
        assert!(svg.contains("Robustness vs makespan"));
        assert!(svg.contains("makespan"));
        assert!(svg.contains("robustness"));
    }

    #[test]
    fn single_series_has_no_legend_text() {
        let svg = sample_chart().render(640.0, 480.0).render();
        // The legend would repeat the series name "mappings".
        assert!(!svg.contains(">mappings<"));
    }

    #[test]
    fn two_series_show_legend() {
        let mut c = sample_chart();
        c.add(Series::line("fit", vec![(10.0, 1.0), (30.0, 2.0)]));
        let svg = c.render(640.0, 480.0).render();
        assert!(svg.contains(">mappings<"));
        assert!(svg.contains(">fit<"));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "no data points")]
    fn empty_chart_panics() {
        Chart::new("t", "x", "y").render(100.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn series_slots_capped() {
        let mut c = Chart::new("t", "x", "y");
        for i in 0..9 {
            c.add(Series::points(format!("s{i}"), vec![(0.0, 0.0)]));
        }
    }

    #[test]
    fn constant_y_data_renders() {
        // Degenerate vertical extent must not panic (nice_domain widens it).
        let mut c = Chart::new("t", "x", "y");
        c.add(Series::points("s", vec![(1.0, 5.0), (2.0, 5.0)]));
        let svg = c.render(320.0, 240.0).render();
        assert!(svg.contains("<circle"));
    }
}
