//! `fepia-plot` — self-contained SVG output for the paper's figures.
//!
//! The experiment binaries regenerate the paper's figures as standalone
//! `.svg` files: scatter plots for Figs. 3–4 ([`scatter`]), the boundary
//! curve illustration for Fig. 1 ([`scatter`] line series), and the DAG
//! model drawing for Fig. 2 ([`dagviz`]). No external plotting crates; SVG
//! is written directly ([`svg`]) with nice-tick axes ([`axis`]).
//!
//! Styling follows a validated light-mode chart palette ([`theme`]): thin
//! recessive grid and axes, ink-colored text (never series-colored), series
//! hues assigned in a fixed order.

pub mod axis;
pub mod bars;
pub mod dagviz;
pub mod scatter;
pub mod svg;
pub mod theme;

pub use bars::BarChart;
pub use dagviz::{DagLayer, DagNodeKind, DagPlot};
pub use scatter::{Chart, Series, SeriesKind};
pub use svg::SvgDoc;
