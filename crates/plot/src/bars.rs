//! Bar charts (robustness histograms, per-heuristic comparisons).
//!
//! Marks follow the chart spec: thin bars with a 2px surface gap between
//! neighbors, 4px rounded data-ends, baseline-anchored, value labels in ink.

use crate::axis::{nice_domain, tick_label, Scale};
use crate::svg::{Anchor, SvgDoc};
use crate::theme;

/// A single-series bar chart with categorical x labels.
#[derive(Clone, Debug)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// `(label, value)` pairs, drawn left to right.
    pub bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            bars: Vec::new(),
        }
    }

    /// Adds one bar.
    pub fn add(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        assert!(value.is_finite() && value >= 0.0, "bar values must be ≥ 0");
        self.bars.push((label.into(), value));
        self
    }

    /// Renders to SVG.
    ///
    /// # Panics
    /// Panics when no bars were added.
    pub fn render(&self, width: f64, height: f64) -> SvgDoc {
        assert!(!self.bars.is_empty(), "bar chart has no bars");
        let margin_left = 64.0;
        let margin_right = 24.0;
        let margin_top = 40.0;
        let margin_bottom = 64.0;

        let max = self.bars.iter().map(|b| b.1).fold(0.0, f64::max).max(1e-12);
        let (yd, yticks) = nice_domain(0.0, max, 6);
        let ys = Scale::new(yd, (height - margin_bottom, margin_top));
        let baseline = ys.map(0.0);

        let mut doc = SvgDoc::new(width, height, theme::SURFACE);
        for &t in &yticks {
            let y = ys.map(t);
            doc.line(margin_left, y, width - margin_right, y, theme::GRID, 1.0);
            doc.text(
                margin_left - 6.0,
                y + 3.0,
                &tick_label(t),
                10.0,
                theme::TEXT_SECONDARY,
                Anchor::End,
            );
        }
        doc.line(
            margin_left,
            baseline,
            width - margin_right,
            baseline,
            theme::AXIS,
            1.0,
        );

        let span = width - margin_left - margin_right;
        let slot = span / self.bars.len() as f64;
        // 2px surface gap between adjacent fills.
        let bar_w = (slot - 2.0).clamp(2.0, 64.0);
        for (i, (label, value)) in self.bars.iter().enumerate() {
            let cx = margin_left + (i as f64 + 0.5) * slot;
            let top = ys.map(*value);
            // Baseline-anchored with a 4px rounded data-end.
            doc.rect(
                cx - bar_w / 2.0,
                top,
                bar_w,
                (baseline - top).max(0.0),
                theme::series_color(0),
                4.0,
            );
            doc.text(
                cx,
                height - margin_bottom + 16.0,
                label,
                10.0,
                theme::TEXT_SECONDARY,
                Anchor::Middle,
            );
            // Direct value label (ink, never series-colored).
            doc.text(
                cx,
                top - 5.0,
                &tick_label(*value),
                10.0,
                theme::TEXT_PRIMARY,
                Anchor::Middle,
            );
        }
        doc.text(
            width / 2.0,
            22.0,
            &self.title,
            14.0,
            theme::TEXT_PRIMARY,
            Anchor::Middle,
        );
        doc.text(
            8.0,
            margin_top - 10.0,
            &self.y_label,
            12.0,
            theme::TEXT_PRIMARY,
            Anchor::Start,
        );
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bars_and_labels() {
        let mut c = BarChart::new("heuristic robustness", "ρ (s)");
        c.add("mct", 2.0).add("olb", 5.3).add("robust-greedy", 15.0);
        let svg = c.render(480.0, 320.0).render();
        assert!(svg.contains(">mct<"));
        assert!(svg.contains(">robust-greedy<"));
        assert!(svg.contains(">15<")); // value label
        assert_eq!(svg.matches("rx=\"4\"").count(), 3);
    }

    #[test]
    fn zero_bars_have_zero_height() {
        let mut c = BarChart::new("t", "y");
        c.add("z", 0.0).add("a", 1.0);
        let svg = c.render(200.0, 150.0).render();
        assert!(svg.contains("height=\"0.00\""));
    }

    #[test]
    #[should_panic(expected = "no bars")]
    fn empty_rejected() {
        BarChart::new("t", "y").render(100.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_rejected() {
        BarChart::new("t", "y").add("x", -1.0);
    }
}
