//! Layered DAG rendering (Fig. 2).
//!
//! The paper's Fig. 2 draws sensors as diamonds, applications as circles and
//! actuators as rectangles, with arrows for data transfers. [`DagPlot`]
//! reproduces that: callers supply nodes pre-assigned to layers (the
//! experiment binary computes layers as longest-path depth from the
//! sensors) and the edge list; layout is columnar left-to-right.

use crate::svg::{Anchor, SvgDoc};
use crate::theme;

/// What a DAG node is (selects its glyph, per the paper's Fig. 2 legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagNodeKind {
    /// Diamond.
    Sensor,
    /// Circle.
    App,
    /// Rectangle.
    Actuator,
}

/// One column of the layered drawing.
#[derive(Clone, Debug, Default)]
pub struct DagLayer {
    /// `(label, kind, node id)` triples, drawn top to bottom.
    pub nodes: Vec<(String, DagNodeKind, usize)>,
}

/// A layered DAG drawing.
#[derive(Clone, Debug)]
pub struct DagPlot {
    /// Title.
    pub title: String,
    /// Columns, left to right.
    pub layers: Vec<DagLayer>,
    /// Edges as `(from node id, to node id)`.
    pub edges: Vec<(usize, usize)>,
}

impl DagPlot {
    /// Pixel position of every node id, given the canvas size.
    fn positions(&self, width: f64, height: f64) -> std::collections::HashMap<usize, (f64, f64)> {
        let mut pos = std::collections::HashMap::new();
        let cols = self.layers.len().max(1) as f64;
        for (li, layer) in self.layers.iter().enumerate() {
            let x = (li as f64 + 0.5) / cols * (width - 40.0) + 20.0;
            let rows = layer.nodes.len().max(1) as f64;
            for (ni, &(_, _, id)) in layer.nodes.iter().enumerate() {
                let y = (ni as f64 + 0.5) / rows * (height - 80.0) + 50.0;
                pos.insert(id, (x, y));
            }
        }
        pos
    }

    /// Renders to SVG.
    ///
    /// # Panics
    /// Panics if an edge references a node id missing from every layer.
    pub fn render(&self, width: f64, height: f64) -> SvgDoc {
        let mut doc = SvgDoc::new(width, height, theme::SURFACE);
        let pos = self.positions(width, height);

        // Edges first (under the nodes).
        for &(from, to) in &self.edges {
            let (x1, y1) = pos[&from];
            let (x2, y2) = pos[&to];
            // Pull endpoints toward each other so arrows stop at glyph rims.
            let dx = x2 - x1;
            let dy = y2 - y1;
            let len = (dx * dx + dy * dy).sqrt().max(1e-9);
            let trim = 14.0_f64.min(len / 3.0);
            doc.arrow(
                x1 + dx / len * trim,
                y1 + dy / len * trim,
                x2 - dx / len * trim,
                y2 - dy / len * trim,
                theme::AXIS,
            );
        }

        // Nodes: one categorical hue per kind (identity is also carried by
        // the glyph shape, so color is redundant, not load-bearing).
        for layer in &self.layers {
            for &(ref label, kind, id) in &layer.nodes {
                let (x, y) = pos[&id];
                match kind {
                    DagNodeKind::Sensor => {
                        let r = 11.0;
                        doc.polygon(
                            &[(x, y - r), (x + r, y), (x, y + r), (x - r, y)],
                            theme::series_color(2),
                            theme::TEXT_SECONDARY,
                        );
                    }
                    DagNodeKind::App => {
                        doc.circle(x, y, 11.0, theme::series_color(0), Some(theme::SURFACE));
                    }
                    DagNodeKind::Actuator => {
                        doc.rect(x - 11.0, y - 9.0, 22.0, 18.0, theme::series_color(1), 3.0);
                    }
                }
                doc.text(
                    x,
                    y + 24.0,
                    label,
                    9.0,
                    theme::TEXT_SECONDARY,
                    Anchor::Middle,
                );
            }
        }

        doc.text(
            width / 2.0,
            22.0,
            &self.title,
            14.0,
            theme::TEXT_PRIMARY,
            Anchor::Middle,
        );
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dag() -> DagPlot {
        DagPlot {
            title: "DAG model".into(),
            layers: vec![
                DagLayer {
                    nodes: vec![("s0".into(), DagNodeKind::Sensor, 0)],
                },
                DagLayer {
                    nodes: vec![
                        ("a0".into(), DagNodeKind::App, 1),
                        ("a1".into(), DagNodeKind::App, 2),
                    ],
                },
                DagLayer {
                    nodes: vec![("act0".into(), DagNodeKind::Actuator, 3)],
                },
            ],
            edges: vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        }
    }

    #[test]
    fn renders_all_glyph_kinds() {
        let svg = tiny_dag().render(640.0, 480.0).render();
        assert!(svg.contains("<polygon")); // sensor diamond
        assert!(svg.contains("<circle")); // app
        assert!(svg.contains("<rect x=")); // actuator (beyond background)
        assert!(svg.contains("DAG model"));
        assert!(svg.contains(">a1<"));
    }

    #[test]
    fn edge_count_matches() {
        let svg = tiny_dag().render(640.0, 480.0).render();
        // Each arrow is 3 line elements; plus 2 per... count <line occurrences:
        // 4 edges × 3 lines = 12.
        assert_eq!(svg.matches("<line").count(), 12);
    }

    #[test]
    #[should_panic]
    fn dangling_edge_panics() {
        let mut dag = tiny_dag();
        dag.edges.push((0, 99));
        let _ = dag.render(100.0, 100.0);
    }
}
